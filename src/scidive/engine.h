// ScidiveEngine: the assembled IDS of Figure 2/3. One instance sits at a
// vantage point (an endpoint tap in the paper's experiments), receives raw
// packets, and drives Distiller -> TrailManager -> EventGenerator ->
// RuleMatchingEngine -> Alerts.
//
// Every engine carries an obs::MetricsRegistry instrumenting the whole
// pipeline: packet/event/alert counters, per-stage latency histograms,
// per-rule counters and state gauges, and component-stat mirrors synced at
// snapshot time. Instruments are interned once at construction; recording
// on the packet path is plain cell arithmetic, so the zero-allocation hot
// path stays zero-allocation with metrics enabled.
#pragma once

#include <chrono>
#include <memory>
#include <set>
#include <vector>

#include "capture/packet_source.h"
#include "netsim/network.h"
#include "obs/alert_ledger.h"
#include "obs/metrics.h"
#include "scidive/distiller.h"
#include "scidive/enforce.h"
#include "scidive/event_generator.h"
#include "scidive/rule.h"
#include "scidive/rules.h"
#include "scidive/trail_manager.h"
#include "scidive/verdict.h"

namespace scidive::core {

struct EngineObsConfig {
  /// Wall-clock the pipeline stages into the per-stage latency histograms
  /// and the processing_ns total. Costs a few steady_clock reads per packet;
  /// disable for byte-deterministic metric exposition (golden tests do).
  bool time_stages = true;
  /// AlertSink retention bound (alerts beyond it are dropped and counted).
  size_t alert_capacity = AlertSink::kDefaultCapacity;
  /// AlertLedger retention bound (audit records beyond it are counted).
  size_t ledger_capacity = 65536;
};

struct FastpathConfig {
  /// The established-flow fast path: a flow-keyed microstate cache that
  /// lets steady in-order RTP for sessions no rule is watching bypass
  /// footprint construction, event generation and rule dispatch entirely.
  /// Detection output is byte-identical on or off — any deviation (SSRC
  /// change, out-of-window sequence jump, rule interest, monitor armed,
  /// enforcement state change, migration, binding change) falls back to the
  /// full pipeline with the cached microstate written back first.
  bool enabled = true;
};

struct EngineConfig {
  DistillerConfig distiller;
  EventGeneratorConfig events;
  RulesConfig rules;
  EngineObsConfig obs;
  FastpathConfig fastpath;
  /// Endpoint-based deployment (Figure 3/4): when non-empty, only packets
  /// to or from these addresses are inspected — "although the prototype IDS
  /// can also see the traffic of Client B and the SIP Proxy, it does not
  /// look into this traffic".
  std::set<pkt::Ipv4Address> home_addresses;
  size_t max_footprints_per_trail = 4096;
  /// Deliver each event only to the rules whose subscriptions() mask covers
  /// its type (the engine keeps a per-type subscriber index). Off = the
  /// historical broadcast loop; kept as a knob so bench_efficiency can
  /// measure what the index saves.
  bool subscription_dispatch = true;
  /// Prevention layer (off by default: pure detection, byte-identical
  /// behavior and metrics to the pre-verdict engine). Passive and inline
  /// compute identical per-packet decisions; only enforcement points
  /// outside the engine treat them differently.
  EnforceConfig enforce;
};

/// Aggregate pipeline counters. Since the observability subsystem landed
/// this is a *view* over the engine's MetricsRegistry — stats() builds it
/// from the registry cells, so there is exactly one source of truth.
struct EngineStats {
  uint64_t packets_seen = 0;
  uint64_t packets_filtered = 0;   // outside the home scope
  uint64_t packets_inspected = 0;
  uint64_t events = 0;
  uint64_t alerts = 0;
  /// Wall-clock nanoseconds spent inside the IDS pipeline (real CPU cost of
  /// detection; the simulation clock is unrelated). Zero when
  /// EngineObsConfig::time_stages is off.
  uint64_t processing_ns = 0;
};

class ScidiveEngine {
 public:
  ScidiveEngine() : ScidiveEngine(EngineConfig{}) {}
  explicit ScidiveEngine(EngineConfig config);

  /// Feed one captured packet (fragment-level; reassembly is internal).
  /// Returns the enforcement decision for the packet: always kPass when the
  /// prevention layer is off; otherwise the max over pre-existing blocks,
  /// armed rate limits, and verdicts the packet's own processing emitted.
  /// Detection is never gated on the decision — a dropped packet was still
  /// fully inspected, which is what keeps alert parity across modes.
  VerdictAction on_packet(const pkt::Packet& packet);

  /// A tap suitable for netsim::Network::add_tap.
  netsim::PacketTap tap() {
    return [this](const pkt::Packet& packet) { on_packet(packet); };
  }

  /// Drive loop over a capture source: pull packets until the source is
  /// exhausted (pcap EOF, generator cap, or a stopped live source). Returns
  /// the number of packets fed. Deterministic for deterministic sources:
  /// the engine state afterward is a pure function of the packet sequence.
  uint64_t run(capture::PacketSource& source) {
    pkt::Packet packet;
    uint64_t fed = 0;
    while (source.next(&packet)) {
      on_packet(packet);
      ++fed;
    }
    return fed;
  }

  /// Install an additional rule (the ruleset defaults to the paper's).
  void add_rule(RulePtr rule);
  /// Drop all rules (for baseline configurations in the benches).
  void clear_rules();
  /// Atomically replace the whole ruleset (hot reload). Instruments for the
  /// new rules are interned against the same registry, so a rule keeping its
  /// name keeps its counters across the swap.
  void set_rules(std::vector<RulePtr> rules);
  size_t rule_count() const { return rules_.size(); }

  /// Observe every generated event (experiments measure detection delay
  /// from the value carried on kRtpAfterBye/kRtpAfterReinvite events).
  void set_event_callback(std::function<void(const Event&)> cb) {
    event_callback_ = std::move(cb);
  }

  AlertSink& alerts() { return sink_; }
  const AlertSink& alerts() const { return sink_; }

  VerdictSink& verdicts() { return verdicts_; }
  const VerdictSink& verdicts() const { return verdicts_; }

  /// The prevention stores (nullptr when EnforceConfig::mode is kOff).
  Enforcer* enforcer() { return enforcer_.get(); }
  const Enforcer* enforcer() const { return enforcer_.get(); }
  EnforcementMode enforcement_mode() const { return config_.enforce.mode; }

  /// Non-mutating decision for a raw datagram by source address alone —
  /// the hook external enforcement points (router filter, proxy screen)
  /// use without access to distilled identities. kPass when enforcement
  /// is off or the packet has no parseable IPv4 header.
  VerdictAction peek_packet(const pkt::Packet& packet) const;

  /// Per-packet decision totals, indexed by VerdictAction (all zero when
  /// enforcement is off). packets_inspected == sum over actions.
  uint64_t decisions(VerdictAction a) const {
    return packet_verdicts_[static_cast<size_t>(a)] == nullptr
               ? 0
               : packet_verdicts_[static_cast<size_t>(a)]->value();
  }

  /// Registry-backed view (by value; fields as before).
  EngineStats stats() const;

  const Distiller& distiller() const { return distiller_; }
  const TrailManager& trails() const { return trails_; }
  const EventGenerator& events() const { return events_; }

  /// Live established-flow cache entries (observability/test surface).
  size_t fastpath_entries() const { return fastpath_.size(); }
  /// Packets the fast path has bypassed since construction.
  uint64_t fastpath_bypassed() const { return bypassed_total_; }

  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::AlertLedger& ledger() const { return ledger_; }

  /// Deterministic snapshot of every instrument. Refreshes the component
  /// stat mirrors (distiller/trails/event-generator/rule-state gauges)
  /// first, which is why it is non-const.
  obs::Snapshot metrics_snapshot();

  /// Housekeeping: expire idle trails/session state older than cutoff.
  void expire_idle(SimTime cutoff);

  // --- Session migration (sharded-engine rebalance) ---------------------
  /// One session's complete engine-side state: trails (with their arena),
  /// event-generator aggregation state, and any per-rule session state,
  /// keyed by rule name so the matching rule instance on the destination
  /// engine adopts it.
  struct SessionTransfer {
    SessionId id;
    TrailManager::ExtractedSession trails;
    std::optional<EventGenerator::SessionState> events;
    std::vector<std::pair<std::string, std::unique_ptr<Rule::SessionState>>> rule_states;
    bool valid = false;
  };

  bool has_session(const SessionId& session) const { return trails_.has_session(session); }
  /// Detach everything this engine knows about `session`. Invalid (and the
  /// engine unchanged) when the session does not exist here.
  SessionTransfer extract_session(const SessionId& session);
  /// Adopt a transfer produced by another engine with the same ruleset.
  /// Precondition: !has_session(transfer.id). Creation counters are NOT
  /// incremented — across a sharded engine the session was created once.
  void install_session(SessionTransfer&& transfer);

 private:
  /// Interned once per rule at registration; indexed parallel to rules_.
  struct RuleInstruments {
    obs::Counter* events_seen = nullptr;
    obs::Counter* alerts = nullptr;
    obs::Gauge* state_entries = nullptr;
  };

  void intern_pipeline_instruments();
  RuleInstruments intern_rule_instruments(const Rule& rule);
  void rebuild_subscriber_index();
  /// Mirror the component-kept stats into registry cells (snapshot path).
  void sync_component_stats();

  // --- Established-flow fast path ---------------------------------------
  /// One cached flow, keyed in fastpath_ by the packed destination
  /// endpoint. Holds everything a steady in-order RTP packet needs: the
  /// identity to verify (src, ssrc), the microstate to advance (sequence
  /// window, the authoritative jitter estimator copy) and the accounting to
  /// defer (trail handle, session symbol, bypassed count). While cached,
  /// the entry's copies are authoritative; invalidation writes them back
  /// before the slow path touches the same state.
  struct FastFlow {
    pkt::Endpoint src;
    pkt::Endpoint dst;
    uint32_t ssrc = 0;
    uint16_t last_seq = 0;
    bool bound = false;         // routed via an SDP binding (stats mirror)
    bool jitter_armed = false;  // the one-shot jitter alarm can still fire
    Trail* trail = nullptr;
    Symbol sym = kInvalidSymbol;
    rtp::RtpStreamStats stats;
    uint64_t enforce_gen = 0;
    uint64_t bypassed = 0;  // packets bypassed since the last writeback
    SimTime last_time = 0;
  };

  static uint64_t pack_flow_endpoint(const pkt::Endpoint& ep) {
    return static_cast<uint64_t>(ep.addr.value()) << 16 | ep.port;
  }

  /// Engine-level switch: configured on, no installed rule interested in
  /// steady-state media, and the per-packet-event ablation off.
  bool fastpath_on() const {
    return config_.fastpath.enabled && fastpath_rules_ok_ &&
           !config_.events.emit_per_packet_events;
  }
  /// Try to bypass one packet. Returns true when it was fully handled.
  bool fastpath_try(const pkt::Packet& packet);
  /// Cache the flow of a just-processed, event-free RTP packet when every
  /// eligibility gate passes.
  void fastpath_maybe_cache(Trail& trail, const Footprint& fp, const RtpFootprint& rtp,
                            uint64_t src_k, uint64_t sess_k);
  /// Slow-path RTP for a cached dst or src races the cached microstate:
  /// write back and drop the entry before event generation runs.
  void fastpath_probe_slow_rtp(const Footprint& fp);
  /// Flush the advanced microstate back into the trail and the event
  /// generator's session state.
  void fastpath_writeback(FastFlow& flow);
  /// Writeback + erase of one entry (both indexes).
  void fastpath_invalidate(FastFlow& flow);
  /// Writeback + erase of every entry; resyncs the generation watermarks.
  void fastpath_flush();

  EngineConfig config_;
  obs::MetricsRegistry registry_;
  Distiller distiller_;
  TrailManager trails_;
  EventGenerator events_;
  std::vector<RulePtr> rules_;
  std::vector<RuleInstruments> rule_inst_;
  /// Per-EventType list of rule indices subscribed to it.
  std::vector<uint32_t> subscribers_[kEventTypeCount];
  std::function<void(const Event&)> event_callback_;
  AlertSink sink_;
  VerdictSink verdicts_;
  std::unique_ptr<Enforcer> enforcer_;
  obs::AlertLedger ledger_;
  std::vector<Event> scratch_events_;

  // Established-flow fast path state.
  FlatMap<uint64_t, FastFlow> fastpath_;        // packed dst -> flow
  FlatMap<uint64_t, uint64_t> fastpath_src_;    // packed src -> packed dst
  bool fastpath_rules_ok_ = false;  // no rule wants steady-state media
  uint64_t fp_media_gen_ = 0;       // trail-manager binding generation seen
  uint64_t fp_watch_gen_ = 0;       // event-generator monitor generation seen
  /// Work the bypass skipped, added to the component-stat mirrors at sync
  /// time so the pipeline counters read the same with the fast path on or
  /// off (every bypassed packet *was* distilled/routed/processed, as far as
  /// the totals are concerned — just not per packet).
  uint64_t bypassed_total_ = 0;
  uint64_t bypassed_bound_ = 0;
  uint64_t bypassed_unbound_ = 0;

  // Hot-path instruments (registry-owned cells).
  obs::Counter* packets_seen_ = nullptr;
  obs::Counter* packets_filtered_ = nullptr;
  obs::Counter* packets_inspected_ = nullptr;
  obs::Counter* events_total_ = nullptr;
  obs::Counter* processing_ns_ = nullptr;
  /// Per-action decision counters; interned only when enforcement is on,
  /// so detection-only engines expose no prevention cells.
  obs::Counter* packet_verdicts_[kVerdictActionCount] = {};
  obs::Counter* event_type_counters_[kEventTypeCount] = {};
  obs::Histogram* stage_distill_ = nullptr;
  obs::Histogram* stage_route_ = nullptr;
  obs::Histogram* stage_events_ = nullptr;
  obs::Histogram* stage_rules_ = nullptr;
  /// Fast-path instruments; registered only when the fast path is
  /// configured on, so disabled engines expose no extra lines.
  obs::Counter* fastpath_hits_ = nullptr;
  obs::Counter* fastpath_misses_ = nullptr;
  obs::Counter* fastpath_invalidations_ = nullptr;

  // Snapshot-synced mirrors (see sync_component_stats()).
  obs::Counter* alerts_total_ = nullptr;
  obs::Counter* alerts_dropped_ = nullptr;
  obs::Gauge* alerts_retained_ = nullptr;
  obs::Counter* ledger_recorded_ = nullptr;
  obs::Counter* ledger_dropped_ = nullptr;
  obs::Gauge* ledger_size_ = nullptr;
};

}  // namespace scidive::core
