// ScidiveEngine: the assembled IDS of Figure 2/3. One instance sits at a
// vantage point (an endpoint tap in the paper's experiments), receives raw
// packets, and drives Distiller -> TrailManager -> EventGenerator ->
// RuleMatchingEngine -> Alerts.
//
// Every engine carries an obs::MetricsRegistry instrumenting the whole
// pipeline: packet/event/alert counters, per-stage latency histograms,
// per-rule counters and state gauges, and component-stat mirrors synced at
// snapshot time. Instruments are interned once at construction; recording
// on the packet path is plain cell arithmetic, so the zero-allocation hot
// path stays zero-allocation with metrics enabled.
#pragma once

#include <chrono>
#include <memory>
#include <set>
#include <vector>

#include "capture/packet_source.h"
#include "netsim/network.h"
#include "obs/alert_ledger.h"
#include "obs/metrics.h"
#include "scidive/distiller.h"
#include "scidive/enforce.h"
#include "scidive/event_generator.h"
#include "scidive/rule.h"
#include "scidive/rules.h"
#include "scidive/trail_manager.h"
#include "scidive/verdict.h"

namespace scidive::core {

struct EngineObsConfig {
  /// Wall-clock the pipeline stages into the per-stage latency histograms
  /// and the processing_ns total. Costs a few steady_clock reads per packet;
  /// disable for byte-deterministic metric exposition (golden tests do).
  bool time_stages = true;
  /// AlertSink retention bound (alerts beyond it are dropped and counted).
  size_t alert_capacity = AlertSink::kDefaultCapacity;
  /// AlertLedger retention bound (audit records beyond it are counted).
  size_t ledger_capacity = 65536;
};

struct EngineConfig {
  DistillerConfig distiller;
  EventGeneratorConfig events;
  RulesConfig rules;
  EngineObsConfig obs;
  /// Endpoint-based deployment (Figure 3/4): when non-empty, only packets
  /// to or from these addresses are inspected — "although the prototype IDS
  /// can also see the traffic of Client B and the SIP Proxy, it does not
  /// look into this traffic".
  std::set<pkt::Ipv4Address> home_addresses;
  size_t max_footprints_per_trail = 4096;
  /// Deliver each event only to the rules whose subscriptions() mask covers
  /// its type (the engine keeps a per-type subscriber index). Off = the
  /// historical broadcast loop; kept as a knob so bench_efficiency can
  /// measure what the index saves.
  bool subscription_dispatch = true;
  /// Prevention layer (off by default: pure detection, byte-identical
  /// behavior and metrics to the pre-verdict engine). Passive and inline
  /// compute identical per-packet decisions; only enforcement points
  /// outside the engine treat them differently.
  EnforceConfig enforce;
};

/// Aggregate pipeline counters. Since the observability subsystem landed
/// this is a *view* over the engine's MetricsRegistry — stats() builds it
/// from the registry cells, so there is exactly one source of truth.
struct EngineStats {
  uint64_t packets_seen = 0;
  uint64_t packets_filtered = 0;   // outside the home scope
  uint64_t packets_inspected = 0;
  uint64_t events = 0;
  uint64_t alerts = 0;
  /// Wall-clock nanoseconds spent inside the IDS pipeline (real CPU cost of
  /// detection; the simulation clock is unrelated). Zero when
  /// EngineObsConfig::time_stages is off.
  uint64_t processing_ns = 0;
};

class ScidiveEngine {
 public:
  ScidiveEngine() : ScidiveEngine(EngineConfig{}) {}
  explicit ScidiveEngine(EngineConfig config);

  /// Feed one captured packet (fragment-level; reassembly is internal).
  /// Returns the enforcement decision for the packet: always kPass when the
  /// prevention layer is off; otherwise the max over pre-existing blocks,
  /// armed rate limits, and verdicts the packet's own processing emitted.
  /// Detection is never gated on the decision — a dropped packet was still
  /// fully inspected, which is what keeps alert parity across modes.
  VerdictAction on_packet(const pkt::Packet& packet);

  /// A tap suitable for netsim::Network::add_tap.
  netsim::PacketTap tap() {
    return [this](const pkt::Packet& packet) { on_packet(packet); };
  }

  /// Drive loop over a capture source: pull packets until the source is
  /// exhausted (pcap EOF, generator cap, or a stopped live source). Returns
  /// the number of packets fed. Deterministic for deterministic sources:
  /// the engine state afterward is a pure function of the packet sequence.
  uint64_t run(capture::PacketSource& source) {
    pkt::Packet packet;
    uint64_t fed = 0;
    while (source.next(&packet)) {
      on_packet(packet);
      ++fed;
    }
    return fed;
  }

  /// Install an additional rule (the ruleset defaults to the paper's).
  void add_rule(RulePtr rule);
  /// Drop all rules (for baseline configurations in the benches).
  void clear_rules();
  /// Atomically replace the whole ruleset (hot reload). Instruments for the
  /// new rules are interned against the same registry, so a rule keeping its
  /// name keeps its counters across the swap.
  void set_rules(std::vector<RulePtr> rules);
  size_t rule_count() const { return rules_.size(); }

  /// Observe every generated event (experiments measure detection delay
  /// from the value carried on kRtpAfterBye/kRtpAfterReinvite events).
  void set_event_callback(std::function<void(const Event&)> cb) {
    event_callback_ = std::move(cb);
  }

  AlertSink& alerts() { return sink_; }
  const AlertSink& alerts() const { return sink_; }

  VerdictSink& verdicts() { return verdicts_; }
  const VerdictSink& verdicts() const { return verdicts_; }

  /// The prevention stores (nullptr when EnforceConfig::mode is kOff).
  Enforcer* enforcer() { return enforcer_.get(); }
  const Enforcer* enforcer() const { return enforcer_.get(); }
  EnforcementMode enforcement_mode() const { return config_.enforce.mode; }

  /// Non-mutating decision for a raw datagram by source address alone —
  /// the hook external enforcement points (router filter, proxy screen)
  /// use without access to distilled identities. kPass when enforcement
  /// is off or the packet has no parseable IPv4 header.
  VerdictAction peek_packet(const pkt::Packet& packet) const;

  /// Per-packet decision totals, indexed by VerdictAction (all zero when
  /// enforcement is off). packets_inspected == sum over actions.
  uint64_t decisions(VerdictAction a) const {
    return packet_verdicts_[static_cast<size_t>(a)] == nullptr
               ? 0
               : packet_verdicts_[static_cast<size_t>(a)]->value();
  }

  /// Registry-backed view (by value; fields as before).
  EngineStats stats() const;

  const Distiller& distiller() const { return distiller_; }
  const TrailManager& trails() const { return trails_; }
  const EventGenerator& events() const { return events_; }

  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::AlertLedger& ledger() const { return ledger_; }

  /// Deterministic snapshot of every instrument. Refreshes the component
  /// stat mirrors (distiller/trails/event-generator/rule-state gauges)
  /// first, which is why it is non-const.
  obs::Snapshot metrics_snapshot();

  /// Housekeeping: expire idle trails/session state older than cutoff.
  void expire_idle(SimTime cutoff);

  // --- Session migration (sharded-engine rebalance) ---------------------
  /// One session's complete engine-side state: trails (with their arena),
  /// event-generator aggregation state, and any per-rule session state,
  /// keyed by rule name so the matching rule instance on the destination
  /// engine adopts it.
  struct SessionTransfer {
    SessionId id;
    TrailManager::ExtractedSession trails;
    std::optional<EventGenerator::SessionState> events;
    std::vector<std::pair<std::string, std::unique_ptr<Rule::SessionState>>> rule_states;
    bool valid = false;
  };

  bool has_session(const SessionId& session) const { return trails_.has_session(session); }
  /// Detach everything this engine knows about `session`. Invalid (and the
  /// engine unchanged) when the session does not exist here.
  SessionTransfer extract_session(const SessionId& session);
  /// Adopt a transfer produced by another engine with the same ruleset.
  /// Precondition: !has_session(transfer.id). Creation counters are NOT
  /// incremented — across a sharded engine the session was created once.
  void install_session(SessionTransfer&& transfer);

 private:
  /// Interned once per rule at registration; indexed parallel to rules_.
  struct RuleInstruments {
    obs::Counter* events_seen = nullptr;
    obs::Counter* alerts = nullptr;
    obs::Gauge* state_entries = nullptr;
  };

  void intern_pipeline_instruments();
  RuleInstruments intern_rule_instruments(const Rule& rule);
  void rebuild_subscriber_index();
  /// Mirror the component-kept stats into registry cells (snapshot path).
  void sync_component_stats();

  EngineConfig config_;
  obs::MetricsRegistry registry_;
  Distiller distiller_;
  TrailManager trails_;
  EventGenerator events_;
  std::vector<RulePtr> rules_;
  std::vector<RuleInstruments> rule_inst_;
  /// Per-EventType list of rule indices subscribed to it.
  std::vector<uint32_t> subscribers_[kEventTypeCount];
  std::function<void(const Event&)> event_callback_;
  AlertSink sink_;
  VerdictSink verdicts_;
  std::unique_ptr<Enforcer> enforcer_;
  obs::AlertLedger ledger_;
  std::vector<Event> scratch_events_;

  // Hot-path instruments (registry-owned cells).
  obs::Counter* packets_seen_ = nullptr;
  obs::Counter* packets_filtered_ = nullptr;
  obs::Counter* packets_inspected_ = nullptr;
  obs::Counter* events_total_ = nullptr;
  obs::Counter* processing_ns_ = nullptr;
  /// Per-action decision counters; interned only when enforcement is on,
  /// so detection-only engines expose no prevention cells.
  obs::Counter* packet_verdicts_[kVerdictActionCount] = {};
  obs::Counter* event_type_counters_[kEventTypeCount] = {};
  obs::Histogram* stage_distill_ = nullptr;
  obs::Histogram* stage_route_ = nullptr;
  obs::Histogram* stage_events_ = nullptr;
  obs::Histogram* stage_rules_ = nullptr;

  // Snapshot-synced mirrors (see sync_component_stats()).
  obs::Counter* alerts_total_ = nullptr;
  obs::Counter* alerts_dropped_ = nullptr;
  obs::Gauge* alerts_retained_ = nullptr;
  obs::Counter* ledger_recorded_ = nullptr;
  obs::Counter* ledger_dropped_ = nullptr;
  obs::Gauge* ledger_size_ = nullptr;
};

}  // namespace scidive::core
