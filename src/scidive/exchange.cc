#include "scidive/exchange.h"

#include "common/strings.h"

namespace scidive::core {

namespace {

constexpr struct {
  EventType type;
  int id;
} kWireIds[] = {
    {EventType::kSipInviteSeen, 1},
    {EventType::kSipReinviteSeen, 2},
    {EventType::kSipSessionEstablished, 3},
    {EventType::kSipByeSeen, 4},
    {EventType::kSipMalformed, 5},
    {EventType::kSip4xxSeen, 6},
    {EventType::kSipRegisterSeen, 7},
    {EventType::kSipAuthChallenge, 8},
    {EventType::kSipAuthFailure, 9},
    {EventType::kImMessageSeen, 10},
    {EventType::kRtpStreamStarted, 11},
    {EventType::kRtpSeqJump, 12},
    {EventType::kRtpUnexpectedSource, 13},
    {EventType::kRtpAfterBye, 14},
    {EventType::kRtpAfterReinvite, 15},
    {EventType::kRtpJitter, 16},
    {EventType::kNonRtpOnMediaPort, 17},
    {EventType::kAccStartSeen, 18},
    {EventType::kAccUnmatched, 19},
    {EventType::kAccBilledPartyAbsent, 20},
    {EventType::kImMessageSent, 21},
    {EventType::kRtpPacketSeen, 22},
    {EventType::kRtcpByeSeen, 23},
    {EventType::kRtpAfterRtcpBye, 24},
};

}  // namespace

int event_type_wire_id(EventType type) {
  for (const auto& entry : kWireIds) {
    if (entry.type == type) return entry.id;
  }
  return 0;
}

Result<EventType> event_type_from_wire_id(int id) {
  for (const auto& entry : kWireIds) {
    if (entry.id == id) return entry.type;
  }
  return Error{Errc::kUnsupported, "unknown event wire id"};
}

std::string serialize_event(std::string_view node_name, const Event& event) {
  std::string detail = event.detail;
  for (char& c : detail) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return str::format("SEP1\t%.*s\t%d\t%s\t%lld\t%s\t%s\t%lld\t%s",
                     static_cast<int>(node_name.size()), node_name.data(),
                     event_type_wire_id(event.type), event.session.c_str(),
                     static_cast<long long>(event.time), event.aor.c_str(),
                     event.endpoint.to_string().c_str(), static_cast<long long>(event.value),
                     detail.c_str());
}

Result<RemoteEvent> parse_event(std::string_view line) {
  if (line.size() > kMaxSepLineBytes)
    return Error{Errc::kMalformed, "SEP line exceeds size cap"};
  // Strip line endings only — a full trim() would eat the trailing tab of
  // an empty detail field and shift the field count.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.remove_suffix(1);
  auto fields = str::split(line, '\t');
  // Exactly nine: serialize_event() sanitizes tabs out of the detail field,
  // so extra separators mean a peer speaking something else — reject rather
  // than guess at field boundaries.
  if (fields.size() != 9) return Error{Errc::kMalformed, "SEP line needs 9 fields"};
  if (fields[0] != "SEP1") return Error{Errc::kUnsupported, "not SEP1"};

  RemoteEvent out;
  out.from_node = std::string(fields[1]);
  if (out.from_node.empty()) return Error{Errc::kMalformed, "empty node name"};

  auto type_id = str::parse_u32(fields[2]);
  if (!type_id) return Error{Errc::kMalformed, "bad event type id"};
  auto type = event_type_from_wire_id(static_cast<int>(*type_id));
  if (!type) return type.error();
  out.event.type = type.value();

  out.event.session = std::string(fields[3]);
  auto time = str::parse_u64(fields[4]);
  if (!time) return Error{Errc::kMalformed, "bad time"};
  out.event.time = static_cast<SimTime>(*time);
  out.event.aor = std::string(fields[5]);

  // addr:port
  auto colon = str::split_once(fields[6], ':');
  if (!colon) return Error{Errc::kMalformed, "bad endpoint"};
  auto addr = pkt::Ipv4Address::parse(colon->first);
  auto port = str::parse_u16(colon->second);
  if (!addr || !port) return Error{Errc::kMalformed, "bad endpoint addr/port"};
  out.event.endpoint = pkt::Endpoint{*addr, *port};

  auto value = str::parse_u64(fields[7]);
  if (!value) {
    // Negative values (e.g. backward seq jumps) serialize with '-'.
    if (!fields[7].empty() && fields[7][0] == '-') {
      auto magnitude = str::parse_u64(fields[7].substr(1));
      if (!magnitude) return Error{Errc::kMalformed, "bad value"};
      out.event.value = -static_cast<int64_t>(*magnitude);
    } else {
      return Error{Errc::kMalformed, "bad value"};
    }
  } else {
    out.event.value = static_cast<int64_t>(*value);
  }

  out.event.detail = std::string(fields[8]);
  return out;
}

}  // namespace scidive::core
