// The Rule abstraction. Rules are driven by Events (the efficient path) and
// may additionally inspect Trails directly through the context (the paper's
// "crude information directly from the Trails" path, §3.1). Stateful rules
// keep their own per-session state; cross-protocol rules simply subscribe
// to events originating from different protocol trails of one session.
#pragma once

#include <memory>
#include <string_view>

#include "scidive/alert.h"
#include "scidive/event.h"
#include "scidive/trail_manager.h"

namespace scidive::core {

/// Everything a rule may touch while matching.
class RuleContext {
 public:
  RuleContext(const TrailManager& trails, AlertSink& sink) : trails_(trails), sink_(sink) {}

  /// Query access to all trails (cross-protocol, direct inspection).
  const TrailManager& trails() const { return trails_; }

  void raise(std::string rule, Severity severity, const Event& cause, std::string message) {
    sink_.raise(Alert{std::move(rule), severity, cause.session, cause.time,
                      std::move(message)});
  }

 private:
  const TrailManager& trails_;
  AlertSink& sink_;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual void on_event(const Event& event, RuleContext& ctx) = 0;
};

using RulePtr = std::unique_ptr<Rule>;

}  // namespace scidive::core
