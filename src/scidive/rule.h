// The Rule abstraction. Rules are driven by Events (the efficient path) and
// may additionally inspect Trails directly through the context (the paper's
// "crude information directly from the Trails" path, §3.1). Stateful rules
// keep their own per-session state; cross-protocol rules simply subscribe
// to events originating from different protocol trails of one session.
#pragma once

#include <memory>
#include <string_view>

#include "obs/alert_ledger.h"
#include "scidive/alert.h"
#include "scidive/enforce.h"
#include "scidive/event.h"
#include "scidive/trail_manager.h"
#include "scidive/verdict.h"

namespace scidive::core {

/// Everything a rule may touch while matching.
class RuleContext {
 public:
  RuleContext(const TrailManager& trails, AlertSink& sink, obs::AlertLedger* ledger = nullptr,
              VerdictSink* verdicts = nullptr, Enforcer* enforcer = nullptr)
      : trails_(trails), sink_(sink), ledger_(ledger), verdicts_(verdicts),
        enforcer_(enforcer) {}

  /// Query access to all trails (cross-protocol, direct inspection).
  const TrailManager& trails() const { return trails_; }

  void raise(std::string rule, Severity severity, const Event& cause, std::string message) {
    Alert alert{std::move(rule), severity, cause.session, cause.time, std::move(message)};
    if (ledger_) ledger_->record(alert, cause);
    sink_.raise(std::move(alert));
  }

  /// Emit a prevention verdict targeting the cause's principal/session/
  /// source. A no-op in contexts without a verdict sink (detection-only
  /// engines), so verdict-emitting rules run unchanged everywhere.
  void verdict(std::string rule, VerdictAction action, const Event& cause,
               std::string message) {
    if (verdicts_ == nullptr) return;
    Verdict v{std::move(rule), action,       cause.session, cause.time,
              cause.aor,       cause.endpoint, std::move(message)};
    if (enforcer_ != nullptr) enforcer_->apply(v);
    verdicts_->raise(std::move(v));
  }

 private:
  const TrailManager& trails_;
  AlertSink& sink_;
  obs::AlertLedger* ledger_;
  VerdictSink* verdicts_;
  Enforcer* enforcer_;
};

/// Bitmask over EventType values: which events a rule consumes.
using EventTypeMask = uint64_t;
static_assert(kEventTypeCount <= 64, "EventTypeMask is a 64-bit bitmask");

constexpr EventTypeMask event_mask(EventType t) {
  return EventTypeMask{1} << static_cast<size_t>(t);
}

template <typename... Ts>
constexpr EventTypeMask event_mask(EventType t, Ts... rest) {
  return event_mask(t) | event_mask(rest...);
}

/// Every event type — the conservative default subscription.
constexpr EventTypeMask kAllEventsMask =
    kEventTypeCount == 64 ? ~EventTypeMask{0} : (EventTypeMask{1} << kEventTypeCount) - 1;

class Rule {
 public:
  /// Opaque box for one session's worth of a rule's private state, used by
  /// the sharded engine's rebalancer to move a session between shards. The
  /// concrete type belongs to the rule that produced it; the matching rule
  /// instance on the destination shard (same name, same class) unpacks it.
  struct SessionState {
    virtual ~SessionState() = default;
  };

  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual void on_event(const Event& event, RuleContext& ctx) = 0;
  /// How many per-session (or per-principal) state entries the rule holds
  /// right now — the observability surface for rule memory. Stateless rules
  /// keep the default.
  virtual size_t state_entries() const { return 0; }
  /// The EventTypes this rule consumes. The engine indexes rules by type so
  /// an event only visits its subscribers; the default (everything)
  /// preserves broadcast behavior for rules that do not declare interest.
  virtual EventTypeMask subscriptions() const { return kAllEventsMask; }
  /// Whether the rule needs to observe anomaly-free steady-state media.
  /// The engine's established-flow fast path only bypasses the pipeline for
  /// a flow when no installed rule declares this interest: kRtpPacketSeen is
  /// the one event an in-order, in-window RTP packet can produce, so the
  /// default derives interest from that subscription bit. Rules keeping the
  /// conservative kAllEventsMask are therefore conservatively interested —
  /// narrowing subscriptions() is what opts a rule's sessions into the
  /// bypass.
  virtual bool media_steady_state_interest() const {
    return (subscriptions() & event_mask(EventType::kRtpPacketSeen)) != 0;
  }

  /// Migration hooks. extract_session detaches and returns the rule's
  /// state for `session` (nullptr when it holds none — the default for
  /// stateless and principal-keyed rules, whose state must stay put);
  /// install_session adopts a box produced by the same rule class on
  /// another shard. A rule implementing one must implement both.
  virtual std::unique_ptr<SessionState> extract_session(const SessionId& session) {
    (void)session;
    return nullptr;
  }
  virtual void install_session(const SessionId& session, std::unique_ptr<SessionState> state) {
    (void)session;
    (void)state;
  }
};

using RulePtr = std::unique_ptr<Rule>;

}  // namespace scidive::core
