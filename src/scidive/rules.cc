#include "scidive/rules.h"

#include <bit>

#include "common/strings.h"

namespace scidive::core {

void ByeAttackRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kRtpAfterBye) return;
  ctx.raise(std::string(name()), Severity::kCritical, event,
            str::format("orphan RTP from %s %lld us after a BYE claiming %s hung up — "
                        "forged BYE suspected",
                        event.endpoint.to_string().c_str(),
                        static_cast<long long>(event.value), event.aor.c_str()));
}

void CallHijackRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kRtpAfterReinvite) return;
  ctx.raise(std::string(name()), Severity::kCritical, event,
            str::format("RTP still flowing from %s after a re-INVITE claimed %s moved — "
                        "call hijacking suspected",
                        event.endpoint.to_string().c_str(), event.aor.c_str()));
}

void FakeImRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type == EventType::kSipRegisterSeen) {
    // Mirror the location service: a registrar update is the sanctioned
    // way for a user's address to move.
    if (!event.aor.empty()) {
      registrations_.insert_or_assign(aors_.intern(event.aor),
                                      Registration{event.endpoint.addr, event.time});
    }
    return;
  }
  if (event.type != EventType::kImMessageSeen) return;
  const Symbol aor = aors_.intern(event.aor);
  auto [hist, first] = senders_.try_emplace(aor, SenderHistory{event.endpoint, event.time,
                                                               event.time});
  SenderHistory& h = *hist;
  if (!first && h.last_source.addr != event.endpoint.addr) {
    // Sanctioned move? The claimed user re-registered from this address.
    const Registration* reg = registrations_.find(aor);
    bool registered_here = reg != nullptr && reg->addr == event.endpoint.addr &&
                           event.time - reg->at <= config_.im_registration_window;
    SimDuration since_change = event.time - h.last_change;
    if (!registered_here && since_change < config_.im_mobility_interval) {
      ctx.raise(std::string(name()), Severity::kCritical, event,
                str::format("message claiming %s came from %s but recent messages came "
                            "from %s %.1fs ago — forged instant message suspected",
                            event.aor.c_str(), event.endpoint.to_string().c_str(),
                            h.last_source.to_string().c_str(), to_sec(since_change)));
    }
    h.last_change = event.time;
    h.last_source = event.endpoint;
  }
  h.last_seen = event.time;
}

void RtpAttackRule::on_event(const Event& event, RuleContext& ctx) {
  switch (event.type) {
    case EventType::kRtpSeqJump:
      ctx.raise(std::string(name()), Severity::kCritical, event,
                str::format("sequence number jumped by %lld between consecutive RTP packets "
                            "(bound 100) — media injection suspected",
                            static_cast<long long>(event.value)));
      return;
    case EventType::kRtpUnexpectedSource:
      ctx.raise(std::string(name()), Severity::kWarning, event,
                str::format("RTP from %s which never appeared in this session's signaling",
                            event.endpoint.to_string().c_str()));
      return;
    case EventType::kNonRtpOnMediaPort:
      ctx.raise(std::string(name()), Severity::kWarning, event,
                "undecodable datagram aimed at an active media port");
      return;
    default:
      return;
  }
}

void BillingFraudRule::on_event(const Event& event, RuleContext& ctx) {
  switch (event.type) {
    case EventType::kSipMalformed:
    case EventType::kAccUnmatched:
    case EventType::kAccBilledPartyAbsent:
    case EventType::kRtpUnexpectedSource:
      break;
    default:
      return;
  }
  Evidence& evidence = evidence_[sessions_interned_.intern(event.session)];
  evidence.mask |= 1u << static_cast<uint32_t>(event.type);
  const auto count = static_cast<size_t>(std::popcount(evidence.mask));
  if (static_cast<int>(count) >= config_.billing_min_evidence && !evidence.alerted) {
    evidence.alerted = true;
    // Ascending bit order == ascending EventType order, matching the
    // ordered-set iteration this replaced byte for byte.
    std::string kinds;
    for (uint32_t bit = 0; bit < 32; ++bit) {
      if ((evidence.mask >> bit) & 1u) {
        if (!kinds.empty()) kinds += ", ";
        kinds += event_type_name(static_cast<EventType>(bit));
      }
    }
    ctx.raise(std::string(name()), Severity::kCritical, event,
              str::format("billing fraud suspected: %zu independent conditions violated (%s)",
                          count, kinds.c_str()));
  }
}

void RegisterFloodRule::on_event(const Event& event, RuleContext& ctx) {
  SessionAuthState& state = sessions_[sessions_interned_.intern(event.session)];
  if (event.type == EventType::kSipRegisterSeen) {
    state.last_register_had_auth = (event.value != 0);
    return;
  }
  if (event.type != EventType::kSipAuthChallenge) return;
  if (state.last_register_had_auth) return;  // that's guessing, not flooding

  state.unauth_challenges.push_back(event.time);
  SimTime horizon = event.time - config_.flood_window;
  while (!state.unauth_challenges.empty() && state.unauth_challenges.front() < horizon) {
    state.unauth_challenges.pop_front();
  }
  if (static_cast<int>(state.unauth_challenges.size()) >= config_.flood_threshold &&
      (state.last_alert < 0 || event.time - state.last_alert > config_.flood_window)) {
    state.last_alert = event.time;
    ctx.raise(std::string(name()), Severity::kCritical, event,
              str::format("%zu unauthenticated REGISTER/401 cycles within %.1fs in one "
                          "session — DoS via repeated SIP requests",
                          state.unauth_challenges.size(), to_sec(config_.flood_window)));
  }
}

void PasswordGuessRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kSipAuthFailure) return;
  GuessState& state = sessions_[sessions_interned_.intern(event.session)];
  // detail carries the digest response of the failed attempt; attacks show
  // *different* responses ("requests with different values in the challenge
  // response field", §3.3), while a retransmitted legitimate request repeats
  // the same one.
  if (!event.detail.empty()) state.distinct_responses.insert(event.detail);
  state.failure_times.push_back(event.time);
  SimTime horizon = event.time - config_.guess_window;
  while (!state.failure_times.empty() && state.failure_times.front() < horizon) {
    state.failure_times.pop_front();
  }
  if (!state.alerted &&
      static_cast<int>(state.distinct_responses.size()) >= config_.guess_threshold &&
      static_cast<int>(state.failure_times.size()) >= config_.guess_threshold) {
    state.alerted = true;
    ctx.raise(std::string(name()), Severity::kCritical, event,
              str::format("%zu distinct failed digest responses in one session — "
                          "password brute forcing suspected",
                          state.distinct_responses.size()));
  }
}

void Stateless4xxRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kSip4xxSeen) return;
  recent_4xx_.push_back(event.time);
  SimTime horizon = event.time - config_.stateless_4xx_window;
  while (!recent_4xx_.empty() && recent_4xx_.front() < horizon) recent_4xx_.pop_front();
  if (static_cast<int>(recent_4xx_.size()) >= config_.stateless_4xx_threshold &&
      (last_alert < 0 || event.time - last_alert > config_.stateless_4xx_window)) {
    last_alert = event.time;
    ctx.raise(std::string(name()), Severity::kWarning, event,
              str::format("%zu 4xx responses within %.1fs (any session)",
                          recent_4xx_.size(), to_sec(config_.stateless_4xx_window)));
  }
}

void RtcpByeRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kRtpAfterRtcpBye) return;
  ctx.raise(std::string(name()), Severity::kCritical, event,
            str::format("RTP from %s continued %lld us after its RTCP BYE — forged RTCP "
                        "teardown or spoofed media stream",
                        event.endpoint.to_string().c_str(),
                        static_cast<long long>(event.value)));
}

void DirectTrailScanByeRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kRtpPacketSeen) return;
  // find() (no intern) on the per-packet path: only alerted sessions ever
  // enter the table.
  if (auto sym = sessions_interned_.find(event.session);
      sym && alerted_.contains(*sym)) {
    return;
  }
  const Trail* sip_trail = ctx.trails().find(event.session, Protocol::kSip);
  if (sip_trail == nullptr) return;

  // Pass 1: newest BYE before this packet, within the window.
  const SipFootprint* bye = nullptr;
  SimTime bye_time = 0;
  sip_trail->scan_newest_first([&](const Footprint& fp) {
    const SipFootprint* sip = fp.sip();
    if (sip == nullptr || !sip->is_request || sip->method != "BYE") return false;
    if (fp.time > event.time || event.time - fp.time > window_) return false;
    bye = sip;
    bye_time = fp.time;
    return true;
  });
  if (bye == nullptr) return;

  // Pass 2: the BYE sender's announced media endpoint (their most recent
  // SDP under the same tag). This is the expensive part: another full scan.
  std::optional<pkt::Endpoint> sender_media;
  sip_trail->scan_newest_first([&](const Footprint& fp) {
    const SipFootprint* sip = fp.sip();
    if (sip == nullptr || !sip->sdp_media) return false;
    bool from_sender = (sip->is_request && !bye->from_tag.empty() &&
                        sip->from_tag == bye->from_tag) ||
                       (sip->is_response() && !bye->from_tag.empty() &&
                        sip->to_tag == bye->from_tag);
    if (!from_sender) return false;
    sender_media = sip->sdp_media;
    return true;
  });
  if (!sender_media || event.endpoint != *sender_media) return;

  alerted_.insert(sessions_interned_.intern(event.session));
  ctx.raise(std::string(name()), Severity::kCritical, event,
            str::format("orphan RTP from %s %lld us after BYE (direct trail scan)",
                        event.endpoint.to_string().c_str(),
                        static_cast<long long>(event.time - bye_time)));
}

// --- Session migration ----------------------------------------------------
// Each session-keyed rule boxes its per-session value; the destination
// instance re-interns the id into its own rule-local table. dynamic_cast
// guards against a box reaching the wrong rule class (it cannot under the
// engine's name-matched dispatch, but a wrong-type box must not corrupt
// state — it is silently dropped, same as the no-state case).

namespace {

template <typename T>
struct BoxedState final : Rule::SessionState {
  explicit BoxedState(T v) : value(std::move(v)) {}
  T value;
};

/// Detach `map[session]` (keyed via `interned`) into a box; null when absent.
template <typename T, typename Map>
std::unique_ptr<Rule::SessionState> extract_boxed(const SymbolTable& interned, Map& map,
                                                  const SessionId& session) {
  auto sym = interned.find(session);
  if (!sym) return nullptr;
  T* value = map.find(*sym);
  if (value == nullptr) return nullptr;
  auto box = std::make_unique<BoxedState<T>>(std::move(*value));
  map.erase(*sym);
  return box;
}

template <typename T, typename Map>
void install_boxed(SymbolTable& interned, Map& map, const SessionId& session,
                   std::unique_ptr<Rule::SessionState> state) {
  auto* box = dynamic_cast<BoxedState<T>*>(state.get());
  if (box == nullptr) return;
  map.insert_or_assign(interned.intern(session), std::move(box->value));
}

}  // namespace

std::unique_ptr<Rule::SessionState> BillingFraudRule::extract_session(const SessionId& session) {
  return extract_boxed<Evidence>(sessions_interned_, evidence_, session);
}

void BillingFraudRule::install_session(const SessionId& session,
                                       std::unique_ptr<SessionState> state) {
  install_boxed<Evidence>(sessions_interned_, evidence_, session, std::move(state));
}

std::unique_ptr<Rule::SessionState> RegisterFloodRule::extract_session(const SessionId& session) {
  return extract_boxed<SessionAuthState>(sessions_interned_, sessions_, session);
}

void RegisterFloodRule::install_session(const SessionId& session,
                                        std::unique_ptr<SessionState> state) {
  install_boxed<SessionAuthState>(sessions_interned_, sessions_, session, std::move(state));
}

std::unique_ptr<Rule::SessionState> PasswordGuessRule::extract_session(const SessionId& session) {
  return extract_boxed<GuessState>(sessions_interned_, sessions_, session);
}

void PasswordGuessRule::install_session(const SessionId& session,
                                        std::unique_ptr<SessionState> state) {
  install_boxed<GuessState>(sessions_interned_, sessions_, session, std::move(state));
}

std::unique_ptr<Rule::SessionState> DirectTrailScanByeRule::extract_session(
    const SessionId& session) {
  // The only per-session state is alerted-set membership.
  auto sym = sessions_interned_.find(session);
  if (!sym || !alerted_.erase(*sym)) return nullptr;
  return std::make_unique<BoxedState<bool>>(true);
}

void DirectTrailScanByeRule::install_session(const SessionId& session,
                                             std::unique_ptr<SessionState> state) {
  if (dynamic_cast<BoxedState<bool>*>(state.get()) == nullptr) return;
  alerted_.insert(sessions_interned_.intern(session));
}

void SpitGraylistRule::on_event(const Event& event, RuleContext& ctx) {
  if (event.type != EventType::kSipInviteSeen || event.aor.empty()) return;
  const Symbol caller = aors_.intern(event.aor);
  CallerWindow& w = callers_[caller];
  if (w.attempts == 0 || event.time - w.window_start > config_.spit_window) {
    // Tumbling window: the first attempt (or the first after the window
    // lapsed) opens a fresh one. Mirrors spit_graylist.sdr exactly.
    w.window_start = event.time;
    w.attempts = 0;
    w.flagged = false;
  }
  ++w.attempts;
  if (!w.flagged && w.attempts >= config_.spit_call_threshold) {
    w.flagged = true;
    std::string message = str::format(
        "%lld call attempts from %s within %.0fs — SPIT campaign suspected, "
        "graylisting caller",
        static_cast<long long>(w.attempts), event.aor.c_str(), to_sec(config_.spit_window));
    ctx.raise(std::string(name()), Severity::kWarning, event, message);
    ctx.verdict(std::string(name()), VerdictAction::kRateLimit, event, std::move(message));
  }
}

std::vector<RulePtr> make_default_ruleset(const RulesConfig& config) {
  std::vector<RulePtr> rules;
  rules.push_back(std::make_unique<ByeAttackRule>());
  rules.push_back(std::make_unique<CallHijackRule>());
  rules.push_back(std::make_unique<FakeImRule>(config));
  rules.push_back(std::make_unique<RtpAttackRule>());
  rules.push_back(std::make_unique<RtcpByeRule>());
  rules.push_back(std::make_unique<BillingFraudRule>(config));
  rules.push_back(std::make_unique<RegisterFloodRule>(config));
  rules.push_back(std::make_unique<PasswordGuessRule>(config));
  if (config.spit_graylist) rules.push_back(std::make_unique<SpitGraylistRule>(config));
  return rules;
}

std::vector<RulePtr> make_prevention_ruleset(RulesConfig config) {
  config.spit_graylist = true;
  return make_default_ruleset(config);
}

}  // namespace scidive::core
