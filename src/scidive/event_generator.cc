#include "scidive/event_generator.h"

#include <cstdlib>

#include "common/strings.h"
#include "rtp/rtp.h"

namespace scidive::core {

std::string_view event_type_name(EventType t) {
  switch (t) {
    case EventType::kSipInviteSeen: return "SipInviteSeen";
    case EventType::kSipReinviteSeen: return "SipReinviteSeen";
    case EventType::kSipSessionEstablished: return "SipSessionEstablished";
    case EventType::kSipByeSeen: return "SipByeSeen";
    case EventType::kSipMalformed: return "SipMalformed";
    case EventType::kSip4xxSeen: return "Sip4xxSeen";
    case EventType::kSipRegisterSeen: return "SipRegisterSeen";
    case EventType::kSipAuthChallenge: return "SipAuthChallenge";
    case EventType::kSipAuthFailure: return "SipAuthFailure";
    case EventType::kImMessageSeen: return "ImMessageSeen";
    case EventType::kImMessageSent: return "ImMessageSent";
    case EventType::kRtpPacketSeen: return "RtpPacketSeen";
    case EventType::kRtpStreamStarted: return "RtpStreamStarted";
    case EventType::kRtpSeqJump: return "RtpSeqJump";
    case EventType::kRtpUnexpectedSource: return "RtpUnexpectedSource";
    case EventType::kRtpAfterBye: return "RtpAfterBye";
    case EventType::kRtpAfterReinvite: return "RtpAfterReinvite";
    case EventType::kRtcpByeSeen: return "RtcpByeSeen";
    case EventType::kRtpAfterRtcpBye: return "RtpAfterRtcpBye";
    case EventType::kRtpJitter: return "RtpJitter";
    case EventType::kNonRtpOnMediaPort: return "NonRtpOnMediaPort";
    case EventType::kAccStartSeen: return "AccStartSeen";
    case EventType::kAccUnmatched: return "AccUnmatched";
    case EventType::kAccBilledPartyAbsent: return "AccBilledPartyAbsent";
  }
  return "?";
}

void EventGenerator::emit(std::vector<Event>& out, Event event) {
  ++stats_.events_emitted;
  out.push_back(std::move(event));
}

void EventGenerator::process(const Footprint& fp, const Trail& trail,
                             std::vector<Event>& out) {
  ++stats_.footprints_processed;
  const SessionId& session = trail.key().session;
  // Managed trails carry their interned symbol; directly-constructed trails
  // (tests) intern on the fly through the manager's shared table.
  Symbol sym = trail.sym();
  if (sym == kInvalidSymbol) sym = trails_.symbols().intern(session);
  SessionState& state = sessions_[sym];
  state.last_touched = fp.time;

  switch (fp.protocol) {
    case Protocol::kSip:
      if (const SipFootprint* sip = fp.sip()) process_sip(fp, *sip, state, session, out);
      break;
    case Protocol::kRtp:
      if (const RtpFootprint* rtp = fp.rtp()) process_rtp(fp, *rtp, state, session, out);
      break;
    case Protocol::kAcc:
      if (const AccFootprint* acc = fp.acc()) process_acc(fp, *acc, state, session, out);
      break;
    case Protocol::kRtcp:
      if (const RtcpFootprint* rtcp = fp.rtcp()) process_rtcp(fp, *rtcp, state, session, out);
      break;
    case Protocol::kH225:
      if (const H225Footprint* h225 = fp.h225()) process_h225(fp, *h225, state, session, out);
      break;
    case Protocol::kRas:
      break;  // RAS footprints feed trails; admission anomalies are future work
    case Protocol::kUnknown:
      // Garbage aimed at a known session's media endpoint is a signal.
      if (trail.key().session.rfind("flow:", 0) != 0) {
        emit(out, Event{EventType::kNonRtpOnMediaPort, session, fp.time, "", fp.src, 0,
                        "undecodable bytes on media port"});
      }
      break;
  }
}

void EventGenerator::start_monitor(SessionState& state, SimTime now, pkt::Endpoint watched,
                                   std::optional<pkt::Endpoint> expected_dst,
                                   EventType emit_type, std::string claimed_aor) {
  if (state.monitors.size() >= kMaxMonitors) {
    state.monitors.erase(state.monitors.begin());  // evict the oldest
  }
  state.monitors.push_back(MediaMonitor{.active = true,
                                        .fired = false,
                                        .started = now,
                                        .watched = watched,
                                        .expected_dst = expected_dst,
                                        .emit = emit_type,
                                        .claimed_aor = std::move(claimed_aor)});
  ++stats_.monitors_started;
  ++watch_generation_;
}

void EventGenerator::process_sip(const Footprint& fp, const SipFootprint& sip,
                                 SessionState& state, const SessionId& session,
                                 std::vector<Event>& out) {
  if (!sip.well_formed) {
    emit(out, Event{EventType::kSipMalformed, session, fp.time, sip.from_aor, fp.src, 0,
                    "malformed SIP message"});
    if (sip.call_id.empty()) return;  // nothing further to mirror
  }

  if (sip.is_request && sip.method == "INVITE") {
    if (state.established) {
      // re-INVITE: the claimed sender's media moves to the SDP endpoint.
      std::string claimed = sip.from_aor;
      std::optional<pkt::Endpoint> old_media;
      if (!state.caller_tag.empty() && sip.from_tag == state.caller_tag) {
        old_media = state.caller_media;
        if (sip.sdp_media) state.caller_media = sip.sdp_media;
      } else if (!state.callee_tag.empty() && sip.from_tag == state.callee_tag) {
        old_media = state.callee_media;
        if (sip.sdp_media) state.callee_media = sip.sdp_media;
      }
      if (sip.sdp_media) {
        trails_.bind_media_endpoint(*sip.sdp_media, session);
        emit(out, Event{EventType::kSipReinviteSeen, session, fp.time, claimed, *sip.sdp_media,
                        0, "media target refresh"});
      } else {
        emit(out, Event{EventType::kSipReinviteSeen, session, fp.time, claimed, fp.src, 0,
                        "re-INVITE without SDP"});
      }
      // §4.2.3 rule: after a re-INVITE from X, RTP from X's old endpoint
      // must stop (X moved). Orphan traffic there means the re-INVITE lied.
      if (old_media && (!sip.sdp_media || *old_media != *sip.sdp_media)) {
        std::optional<pkt::Endpoint> peer_media = (sip.from_tag == state.caller_tag)
                                                      ? state.callee_media
                                                      : state.caller_media;
        start_monitor(state, fp.time, *old_media, peer_media,
                      EventType::kRtpAfterReinvite, claimed);
      }
      return;
    }
    // Initial INVITE.
    state.invite_seen = true;
    state.caller_aor = sip.from_aor;
    state.callee_aor = sip.to_aor;
    state.caller_tag = sip.from_tag;
    state.caller_signaling = sip.contact ? sip.contact : std::optional<pkt::Endpoint>(fp.src);
    if (sip.sdp_media) {
      state.caller_media = sip.sdp_media;
      trails_.bind_media_endpoint(*sip.sdp_media, session);
    }
    emit(out, Event{EventType::kSipInviteSeen, session, fp.time, sip.from_aor, fp.src, 0,
                    "call initiation " + sip.from_aor + " -> " + sip.to_aor});
    return;
  }

  if (sip.is_response() && sip.cseq_method == "INVITE" && sip.status_code == 200) {
    if (!state.established) {
      state.established = true;
      state.callee_tag = sip.to_tag;
      if (sip.sdp_media) {
        state.callee_media = sip.sdp_media;
        trails_.bind_media_endpoint(*sip.sdp_media, session);
      }
      emit(out, Event{EventType::kSipSessionEstablished, session, fp.time, sip.to_aor, fp.src,
                      0, "session established"});
    }
    return;
  }

  if (sip.is_request && sip.method == "BYE") {
    state.torn_down = true;
    // Which party claims to be hanging up? Their media must fall silent.
    std::optional<pkt::Endpoint> watched;
    std::optional<pkt::Endpoint> peer_media;
    if ((!state.caller_tag.empty() && sip.from_tag == state.caller_tag) ||
        sip.from_aor == state.caller_aor) {
      watched = state.caller_media;
      peer_media = state.callee_media;
    } else if ((!state.callee_tag.empty() && sip.from_tag == state.callee_tag) ||
               sip.from_aor == state.callee_aor) {
      watched = state.callee_media;
      peer_media = state.caller_media;
    }
    emit(out, Event{EventType::kSipByeSeen, session, fp.time, sip.from_aor, fp.src, 0,
                    "session teardown by " + sip.from_aor});
    if (watched) {
      start_monitor(state, fp.time, *watched, peer_media, EventType::kRtpAfterBye,
                    sip.from_aor);
    }
    return;
  }

  if (sip.is_request && sip.method == "REGISTER") {
    state.last_register_had_auth = sip.has_auth;
    state.last_auth_response = sip.auth_response;
    // Candidate for the location mirror; committed on the registrar's 200.
    if (!sip.from_aor.empty()) {
      state.pending_register_aor = sip.from_aor;
      state.pending_register_addr = sip.contact ? sip.contact->addr : fp.src.addr;
    }
    emit(out, Event{EventType::kSipRegisterSeen, session, fp.time, sip.from_aor, fp.src,
                    sip.has_auth ? 1 : 0, sip.auth_response});
    return;
  }

  if (sip.is_request && sip.method == "MESSAGE") {
    emit(out, Event{EventType::kImMessageSeen, session, fp.time, sip.from_aor, fp.src, 0,
                    "instant message claiming " + sip.from_aor});
    return;
  }

  if (sip.is_response() && sip.cseq_method == "REGISTER" && sip.status_code == 200 &&
      !state.pending_register_aor.empty() && state.pending_register_addr) {
    // Registrar accepted: commit the location (§3.2 billed-party check).
    registered_locations_[state.pending_register_aor].insert(*state.pending_register_addr);
    state.pending_register_aor.clear();
    state.pending_register_addr.reset();
    return;
  }

  if (sip.is_response() && sip.status_code / 100 == 4) {
    emit(out, Event{EventType::kSip4xxSeen, session, fp.time, sip.to_aor, fp.src,
                    sip.status_code, "4xx response"});
    if (sip.status_code == 401) {
      emit(out, Event{EventType::kSipAuthChallenge, session, fp.time, sip.to_aor, fp.src, 0,
                      "digest challenge"});
      if (state.last_register_had_auth) {
        emit(out, Event{EventType::kSipAuthFailure, session, fp.time, sip.to_aor, fp.src, 0,
                        state.last_auth_response});
      }
    }
    return;
  }
}

void EventGenerator::process_rtp(const Footprint& fp, const RtpFootprint& rtp,
                                 SessionState& state, const SessionId& session,
                                 std::vector<Event>& out) {
  if (config_.emit_per_packet_events) {
    emit(out, Event{EventType::kRtpPacketSeen, session, fp.time, "", fp.src,
                    static_cast<int64_t>(rtp.sequence), ""});
  }
  // Consecutive-packet sequence check at the receiving media port (§4.2.4).
  auto [last_seq, first_at_dst] = state.last_seq_by_dst.try_emplace(fp.dst, rtp.sequence);
  if (!first_at_dst) {
    int32_t gap = rtp::seq_distance(*last_seq, rtp.sequence);
    if (std::abs(gap) > config_.seq_jump_threshold) {
      emit(out, Event{EventType::kRtpSeqJump, session, fp.time, "", fp.src, gap,
                      str::format("sequence gap %d between consecutive packets", gap)});
    }
    *last_seq = rtp.sequence;
  }

  // New source?
  if (state.rtp_sources_seen.insert(fp.src)) {
    emit(out, Event{EventType::kRtpStreamStarted, session, fp.time, "", fp.src,
                    static_cast<int64_t>(rtp.ssrc), "rtp flow started"});
    if (state.invite_seen) {
      bool expected = (state.caller_media && state.caller_media->addr == fp.src.addr) ||
                      (state.callee_media && state.callee_media->addr == fp.src.addr);
      if (!expected) {
        emit(out, Event{EventType::kRtpUnexpectedSource, session, fp.time, "", fp.src, 0,
                        "rtp from endpoint not present in signaling"});
      }
    }
  }

  // Jitter estimate per source.
  auto [src_stats, _] = state.stats_by_src.try_emplace(fp.src, rtp::RtpStreamStats(8000));
  src_stats->on_packet(rtp.sequence, rtp.timestamp, fp.time);
  if (src_stats->packets_received() > config_.jitter_warmup_packets &&
      src_stats->jitter_ms() > config_.jitter_alarm_ms &&
      !state.jitter_alarmed.contains(fp.src)) {
    state.jitter_alarmed.insert(fp.src);
    emit(out, Event{EventType::kRtpJitter, session, fp.time, "", fp.src,
                    static_cast<int64_t>(src_stats->jitter_ms() * 1000),
                    "jitter above threshold"});
  }

  // Orphan-media monitors (the heart of the BYE / Call-Hijack rules, plus
  // the RTCP-BYE consistency check).
  for (MediaMonitor& monitor : state.monitors) {
    if (!monitor.active) continue;
    if (fp.time - monitor.started > config_.monitor_window) {
      monitor.active = false;
      ++stats_.monitors_expired;
      continue;
    }
    if (!monitor.fired && fp.src == monitor.watched &&
        (!monitor.expected_dst || fp.dst == *monitor.expected_dst)) {
      monitor.fired = true;
      monitor.active = false;
      ++stats_.monitors_fired;
      emit(out, Event{monitor.emit, session, fp.time, monitor.claimed_aor, fp.src,
                      fp.time - monitor.started,
                      str::format("orphan rtp %lld us after signaling",
                                  static_cast<long long>(fp.time - monitor.started))});
    }
  }
  std::erase_if(state.monitors, [](const MediaMonitor& m) { return !m.active; });
}

void EventGenerator::process_h225(const Footprint& fp, const H225Footprint& h225,
                                  SessionState& state, const SessionId& session,
                                  std::vector<Event>& out) {
  // The kSip* milestone events are CMP-generic (the architecture watches
  // "call management protocols", §1) — H.225 signaling maps onto the same
  // milestones so every downstream rule works unchanged across SIP and
  // H.323. The detail field records the concrete protocol.
  if (h225.is_setup) {
    if (state.invite_seen) return;  // retransmission
    state.invite_seen = true;
    state.caller_aor = h225.calling_alias;
    state.callee_aor = h225.called_alias;
    state.caller_signaling = fp.src;
    if (h225.media) {
      state.caller_media = h225.media;
      trails_.bind_media_endpoint(*h225.media, session);
    }
    emit(out, Event{EventType::kSipInviteSeen, session, fp.time, h225.calling_alias, fp.src,
                    0,
                    "h225 setup " + h225.calling_alias + " -> " + h225.called_alias});
    return;
  }
  if (h225.is_connect) {
    if (state.established) return;
    state.established = true;
    state.callee_signaling = fp.src;
    if (h225.media) {
      state.callee_media = h225.media;
      trails_.bind_media_endpoint(*h225.media, session);
    }
    emit(out, Event{EventType::kSipSessionEstablished, session, fp.time, h225.called_alias,
                    fp.src, 0, "h225 connect"});
    return;
  }
  if (h225.is_release) {
    state.torn_down = true;
    // Who claims to clear the call? H.225 carries no From tag; attribute by
    // the signaling address the message (claims to) come from.
    std::optional<pkt::Endpoint> watched;
    std::optional<pkt::Endpoint> peer_media;
    std::string claimed;
    if (state.caller_signaling && fp.src == *state.caller_signaling) {
      watched = state.caller_media;
      peer_media = state.callee_media;
      claimed = state.caller_aor;
    } else if (state.callee_signaling && fp.src == *state.callee_signaling) {
      watched = state.callee_media;
      peer_media = state.caller_media;
      claimed = state.callee_aor;
    }
    emit(out, Event{EventType::kSipByeSeen, session, fp.time, claimed, fp.src, 0,
                    "h225 release-complete by " + (claimed.empty() ? "?" : claimed)});
    if (watched) {
      start_monitor(state, fp.time, *watched, peer_media, EventType::kRtpAfterBye, claimed);
    }
    return;
  }
}

void EventGenerator::process_rtcp(const Footprint& fp, const RtcpFootprint& rtcp,
                                  SessionState& state, const SessionId& session,
                                  std::vector<Event>& out) {
  if (!rtcp.is_bye) return;  // SR/RR feed trails only
  // An RTCP BYE announces the end of the RTP stream from its sender. RTP
  // from the corresponding media endpoint (RTCP port - 1, same address)
  // continuing afterwards is inconsistent: a forged RTCP BYE or a spoofed
  // stream — a third cross-protocol chain (SIP <-> RTP <-> RTCP, §3.1).
  pkt::Endpoint media_src = fp.src;
  if (media_src.port > 0) media_src.port -= 1;
  emit(out, Event{EventType::kRtcpByeSeen, session, fp.time, "", media_src,
                  static_cast<int64_t>(rtcp.ssrc), "rtcp bye"});
  start_monitor(state, fp.time, media_src, std::nullopt, EventType::kRtpAfterRtcpBye,
                "");
}

void EventGenerator::process_acc(const Footprint& fp, const AccFootprint& acc,
                                 SessionState& state, const SessionId& session,
                                 std::vector<Event>& out) {
  if (!acc.is_start) return;
  emit(out, Event{EventType::kAccStartSeen, session, fp.time, acc.from_aor, fp.src, 0,
                  "billing start for " + acc.from_aor});

  // §3.2 event 2: "a transaction in the Accounting trail that has no
  // matching call initialization message in the SIP trail". Direct trail
  // inspection — the paper's slower query path, used exactly where no
  // aggregated event suffices.
  const Trail* sip_trail = trails_.find(session, Protocol::kSip);
  bool matched = false;
  if (sip_trail != nullptr) {
    matched = sip_trail->scan_newest_first([&](const Footprint& sfp) {
      const SipFootprint* sip = sfp.sip();
      return sip != nullptr && sip->is_request && sip->method == "INVITE" &&
             sip->from_aor == acc.from_aor;
    });
  }
  if (!matched) {
    emit(out, Event{EventType::kAccUnmatched, session, fp.time, acc.from_aor, fp.src, 0,
                    "billing transaction without matching SIP call initiation from " +
                        acc.from_aor});
  }

  // §3.2 event 3: the billed party's registered location must appear among
  // the session's signaling/media endpoints ("together with information from
  // DNS and SIP Location Servers, we can reconfirm that each RTP flow has a
  // corresponding legitimate call setup"). The check needs something to
  // compare against: skipped when no signaling was observed for the session
  // (a dangling CDR is condition 2's territory, not condition 3's) or when
  // the billed party never registered in our view.
  if (!state.invite_seen) return;
  auto locations = registered_locations_.find(acc.from_aor);
  if (locations == registered_locations_.end()) return;
  auto present = [&](const std::optional<pkt::Endpoint>& ep) {
    return ep && locations->second.contains(ep->addr);
  };
  if (!present(state.caller_media) && !present(state.callee_media) &&
      !present(state.caller_signaling)) {
    emit(out, Event{EventType::kAccBilledPartyAbsent, session, fp.time, acc.from_aor, fp.src,
                    0,
                    "billed party " + acc.from_aor +
                        " registered elsewhere; their location appears nowhere in this "
                        "session"});
  }
}

std::optional<EventGenerator::SessionState> EventGenerator::extract_session(
    const SessionId& session) {
  auto sym = trails_.symbols().find(session);
  if (!sym) return std::nullopt;
  SessionState* state = sessions_.find(*sym);
  if (state == nullptr) return std::nullopt;
  SessionState out = std::move(*state);
  sessions_.erase(*sym);
  return out;
}

void EventGenerator::install_session(const SessionId& session, SessionState state) {
  const Symbol sym = trails_.symbols().intern(session);
  // Adopted state may carry live monitors this engine has never seen arm.
  if (!state.monitors.empty()) ++watch_generation_;
  *sessions_.try_emplace(sym).first = std::move(state);
}

size_t EventGenerator::expire_idle(SimTime cutoff) {
  size_t dropped = sessions_.erase_if(
      [&](const Symbol&, const SessionState& state) { return state.last_touched < cutoff; });
  stats_.sessions_expired += dropped;
  return dropped;
}

}  // namespace scidive::core
