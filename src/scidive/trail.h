// Trails — per-session, per-protocol footprint sequences (§3.1). "Footprints
// that belong to the same session are typically grouped into a Trail"; a
// session owns one trail per protocol (the cross-protocol substrate: the
// §3.2 example's SIP trail / RTP trail / Accounting trail).
#pragma once

#include <string>
#include <vector>

#include "scidive/footprint.h"

namespace scidive::core {

/// Sessions are identified by the SIP Call-ID where one exists; RTP flows
/// that cannot be tied to a signaled call get a synthetic "flow:..." id.
using SessionId = std::string;

struct TrailKey {
  SessionId session;
  Protocol protocol;

  auto operator<=>(const TrailKey&) const = default;
  std::string to_string() const {
    return session + "/" + std::string(protocol_name(protocol));
  }
};

/// An append-only, bounded sequence of footprints. The bound keeps memory
/// finite on long sessions ("configured to handle packets spread out
/// arbitrarily far apart in time, constrained in practice by the amount of
/// memory available", §1); eviction drops the oldest footprints but keeps
/// counters, so aggregate rules stay correct.
///
/// Storage is a ring over a vector: the vector grows geometrically up to the
/// bound, after which every append overwrites the oldest slot in place —
/// the steady-state media path performs no heap allocation per packet.
class Trail {
 public:
  Trail(TrailKey key, size_t max_footprints = 4096)
      : key_(std::move(key)), max_footprints_(max_footprints == 0 ? 1 : max_footprints) {}

  void append(Footprint fp) {
    last_time_ = fp.time;
    if (ring_.empty()) first_time_ = fp.time;
    if (ring_.size() < max_footprints_) {
      ring_.push_back(std::move(fp));
    } else {
      ring_[head_] = std::move(fp);
      head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
      ++evicted_;
    }
    ++total_appended_;
  }

  const TrailKey& key() const { return key_; }
  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  uint64_t total_appended() const { return total_appended_; }
  uint64_t evicted() const { return evicted_; }
  SimTime first_time() const { return first_time_; }
  SimTime last_time() const { return last_time_; }

  /// Logical index access, oldest first.
  const Footprint& at(size_t i) const {
    size_t idx = head_ + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    return ring_[idx];
  }
  const Footprint& front() const { return at(0); }
  const Footprint& back() const { return at(ring_.size() - 1); }

  /// Newest-first scan; stops when fn returns true ("found").
  template <typename Fn>
  bool scan_newest_first(Fn&& fn) const {
    for (size_t i = ring_.size(); i-- > 0;) {
      if (fn(at(i))) return true;
    }
    return false;
  }

 private:
  TrailKey key_;
  size_t max_footprints_;
  std::vector<Footprint> ring_;
  size_t head_ = 0;  // index of the oldest footprint once the ring is full
  uint64_t total_appended_ = 0;
  uint64_t evicted_ = 0;
  SimTime first_time_ = 0;
  SimTime last_time_ = 0;
};

}  // namespace scidive::core
