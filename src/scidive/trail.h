// Trails — per-session, per-protocol footprint sequences (§3.1). "Footprints
// that belong to the same session are typically grouped into a Trail"; a
// session owns one trail per protocol (the cross-protocol substrate: the
// §3.2 example's SIP trail / RTP trail / Accounting trail).
#pragma once

#include <new>
#include <string>

#include "common/arena.h"
#include "common/symbol.h"
#include "scidive/footprint.h"

namespace scidive::core {

/// Sessions are identified by the SIP Call-ID where one exists; RTP flows
/// that cannot be tied to a signaled call get a synthetic "flow:..." id.
using SessionId = std::string;

struct TrailKey {
  SessionId session;
  Protocol protocol;

  auto operator<=>(const TrailKey&) const = default;
  std::string to_string() const {
    return session + "/" + std::string(protocol_name(protocol));
  }
};

/// An append-only, bounded sequence of footprints. The bound keeps memory
/// finite on long sessions ("configured to handle packets spread out
/// arbitrarily far apart in time, constrained in practice by the amount of
/// memory available", §1); eviction drops the oldest footprints but keeps
/// counters, so aggregate rules stay correct.
///
/// Storage is a ring over a flat slot array that grows geometrically up to
/// the bound, after which every append overwrites the oldest slot in place.
/// When the ring is arena-backed, growth first tries Arena::try_extend: the
/// ring is almost always its session arena's newest allocation, so growth is
/// a bump-pointer adjustment — no element moves, no abandoned blocks — and
/// the steady-state media path performs no heap allocation per packet.
class Trail {
 public:
  /// `sym` is the interned id of key.session when the trail is managed by a
  /// TrailManager (kInvalidSymbol for directly-constructed trails). `arena`,
  /// when set, backs the ring storage: growth bumps the owning session's
  /// arena instead of the global heap, and session teardown reclaims it
  /// wholesale.
  Trail(TrailKey key, size_t max_footprints = 4096, Symbol sym = kInvalidSymbol,
        Arena* arena = nullptr)
      : key_(std::move(key)),
        sym_(sym),
        max_footprints_(max_footprints == 0 ? 1 : max_footprints),
        arena_(arena) {}

  Trail(Trail&& other) noexcept
      : key_(std::move(other.key_)),
        sym_(other.sym_),
        max_footprints_(other.max_footprints_),
        arena_(other.arena_),
        slots_(other.slots_),
        cap_(other.cap_),
        count_(other.count_),
        head_(other.head_),
        total_appended_(other.total_appended_),
        evicted_(other.evicted_),
        first_time_(other.first_time_),
        last_time_(other.last_time_) {
    other.slots_ = nullptr;
    other.cap_ = other.count_ = other.head_ = 0;
  }
  Trail(const Trail&) = delete;
  Trail& operator=(const Trail&) = delete;
  Trail& operator=(Trail&&) = delete;

  ~Trail() {
    for (size_t i = 0; i < count_; ++i) slots_[i].~Footprint();
    if (arena_ == nullptr && slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(Footprint)});
    }
    // Arena-backed slots are reclaimed wholesale at session release.
  }

  void append(Footprint fp) {
    last_time_ = fp.time;
    if (count_ == 0) first_time_ = fp.time;
    if (count_ < max_footprints_) {
      if (count_ == cap_) grow();
      ::new (&slots_[count_]) Footprint(std::move(fp));
      ++count_;
    } else {
      slots_[head_] = std::move(fp);
      head_ = head_ + 1 == count_ ? 0 : head_ + 1;
      ++evicted_;
    }
    ++total_appended_;
  }

  /// Account `n` packets that the engine's established-flow fast path
  /// observed for this trail without materializing footprints. Keeps the
  /// activity counter (the rebalancer's load proxy) and the idle-expiry
  /// clock exactly what they would be had every packet been appended; the
  /// ring itself holds no record of bypassed packets, which is the point.
  void note_bypassed(uint64_t n, SimTime last_seen) {
    if (n == 0) return;
    total_appended_ += n;
    if (last_seen > last_time_) last_time_ = last_seen;
  }

  const TrailKey& key() const { return key_; }
  /// Interned session id (kInvalidSymbol outside a TrailManager).
  Symbol sym() const { return sym_; }
  /// Re-key to a different interner's symbol. Only the owning TrailManager
  /// calls this, when a migrated session's slot is adopted by another
  /// manager (the id string is unchanged; the dense id is per-interner).
  void rebind(Symbol sym) { sym_ = sym; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t total_appended() const { return total_appended_; }
  uint64_t evicted() const { return evicted_; }
  SimTime first_time() const { return first_time_; }
  SimTime last_time() const { return last_time_; }

  /// Logical index access, oldest first.
  const Footprint& at(size_t i) const {
    size_t idx = head_ + i;
    if (idx >= count_) idx -= count_;
    return slots_[idx];
  }
  const Footprint& front() const { return at(0); }
  const Footprint& back() const { return at(count_ - 1); }

  /// Newest-first scan; stops when fn returns true ("found").
  template <typename Fn>
  bool scan_newest_first(Fn&& fn) const {
    for (size_t i = count_; i-- > 0;) {
      if (fn(at(i))) return true;
    }
    return false;
  }

 private:
  void grow() {
    size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    if (new_cap > max_footprints_) new_cap = max_footprints_;
    if (arena_ != nullptr) {
      if (slots_ != nullptr &&
          arena_->try_extend(slots_, cap_ * sizeof(Footprint), new_cap * sizeof(Footprint))) {
        cap_ = new_cap;
        return;
      }
      auto* fresh = static_cast<Footprint*>(
          arena_->allocate(new_cap * sizeof(Footprint), alignof(Footprint)));
      relocate(fresh);
      cap_ = new_cap;
      return;
    }
    auto* fresh = static_cast<Footprint*>(::operator new(
        new_cap * sizeof(Footprint), std::align_val_t{alignof(Footprint)}));
    Footprint* old = slots_;
    relocate(fresh);
    if (old != nullptr) ::operator delete(old, std::align_val_t{alignof(Footprint)});
    cap_ = new_cap;
  }

  void relocate(Footprint* fresh) {
    for (size_t i = 0; i < count_; ++i) {
      ::new (&fresh[i]) Footprint(std::move(slots_[i]));
      slots_[i].~Footprint();
    }
    slots_ = fresh;
  }

  TrailKey key_;
  Symbol sym_ = kInvalidSymbol;
  size_t max_footprints_;
  Arena* arena_ = nullptr;
  Footprint* slots_ = nullptr;
  size_t cap_ = 0;
  size_t count_ = 0;
  size_t head_ = 0;  // index of the oldest footprint once the ring is full
  uint64_t total_appended_ = 0;
  uint64_t evicted_ = 0;
  SimTime first_time_ = 0;
  SimTime last_time_ = 0;
};

}  // namespace scidive::core
