// Trails — per-session, per-protocol footprint sequences (§3.1). "Footprints
// that belong to the same session are typically grouped into a Trail"; a
// session owns one trail per protocol (the cross-protocol substrate: the
// §3.2 example's SIP trail / RTP trail / Accounting trail).
#pragma once

#include <deque>
#include <string>

#include "scidive/footprint.h"

namespace scidive::core {

/// Sessions are identified by the SIP Call-ID where one exists; RTP flows
/// that cannot be tied to a signaled call get a synthetic "flow:..." id.
using SessionId = std::string;

struct TrailKey {
  SessionId session;
  Protocol protocol;

  auto operator<=>(const TrailKey&) const = default;
  std::string to_string() const {
    return session + "/" + std::string(protocol_name(protocol));
  }
};

/// An append-only, bounded sequence of footprints. The bound keeps memory
/// finite on long sessions ("configured to handle packets spread out
/// arbitrarily far apart in time, constrained in practice by the amount of
/// memory available", §1); eviction drops the oldest footprints but keeps
/// counters, so aggregate rules stay correct.
class Trail {
 public:
  Trail(TrailKey key, size_t max_footprints = 4096)
      : key_(std::move(key)), max_footprints_(max_footprints) {}

  void append(Footprint fp) {
    last_time_ = fp.time;
    if (footprints_.empty()) first_time_ = fp.time;
    footprints_.push_back(std::move(fp));
    ++total_appended_;
    if (footprints_.size() > max_footprints_) {
      footprints_.pop_front();
      ++evicted_;
    }
  }

  const TrailKey& key() const { return key_; }
  const std::deque<Footprint>& footprints() const { return footprints_; }
  size_t size() const { return footprints_.size(); }
  bool empty() const { return footprints_.empty(); }
  uint64_t total_appended() const { return total_appended_; }
  uint64_t evicted() const { return evicted_; }
  SimTime first_time() const { return first_time_; }
  SimTime last_time() const { return last_time_; }

  const Footprint& back() const { return footprints_.back(); }

  /// Newest-first scan; stops when fn returns true ("found").
  template <typename Fn>
  bool scan_newest_first(Fn&& fn) const {
    for (auto it = footprints_.rbegin(); it != footprints_.rend(); ++it) {
      if (fn(*it)) return true;
    }
    return false;
  }

 private:
  TrailKey key_;
  size_t max_footprints_;
  std::deque<Footprint> footprints_;
  uint64_t total_appended_ = 0;
  uint64_t evicted_ = 0;
  SimTime first_time_ = 0;
  SimTime last_time_ = 0;
};

}  // namespace scidive::core
