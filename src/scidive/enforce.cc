#include "scidive/enforce.h"

#include <cmath>

namespace scidive::core {

// --- RateLimiter -----------------------------------------------------------

double RateLimiter::refilled(const Bucket& b, SimTime now) const {
  // A backward or equal clock refills nothing (shards may observe skewed
  // timestamps); forward time refills linearly, capped at the burst.
  if (now <= b.last) return b.tokens;
  const double dt_sec = static_cast<double>(now - b.last) * 1e-6;
  const double t = b.tokens + dt_sec * config_.rate_per_sec;
  return t > config_.burst ? config_.burst : t;
}

bool RateLimiter::arm(uint64_t key, SimTime now) {
  if (buckets_.contains(key)) return true;
  if (buckets_.size() >= config_.max_entries) {
    ++rejected_total_;
    return false;
  }
  buckets_.insert_or_assign(key, Bucket{config_.burst, now});
  ++armed_total_;
  return true;
}

bool RateLimiter::admit(uint64_t key, SimTime now) {
  Bucket* b = buckets_.find(key);
  if (b == nullptr) return true;
  const double t = refilled(*b, now);
  if (now > b->last) b->last = now;
  if (t >= 1.0) {
    b->tokens = t - 1.0;
    return true;
  }
  b->tokens = t;
  ++denied_total_;
  return false;
}

bool RateLimiter::would_admit(uint64_t key, SimTime now) const {
  const Bucket* b = buckets_.find(key);
  return b == nullptr || refilled(*b, now) >= 1.0;
}

double RateLimiter::tokens(uint64_t key, SimTime now) const {
  const Bucket* b = buckets_.find(key);
  return b == nullptr ? -1.0 : refilled(*b, now);
}

int64_t RateLimiter::stored_tokens() const {
  int64_t sum = 0;
  buckets_.for_each([&sum](const uint64_t&, const Bucket& b) {
    sum += static_cast<int64_t>(std::floor(b.tokens));
  });
  return sum;
}

// --- BlockList -------------------------------------------------------------

bool BlockList::block(uint64_t key, VerdictAction action, SimTime now) {
  const SimTime expires = now + config_.ttl;
  if (Entry* e = entries_.find(key)) {
    // Re-blocking extends (never shortens) the TTL and never downgrades
    // the action: a quarantined session upgraded to drop stays dropped.
    if (expires > e->expires_at) e->expires_at = expires;
    e->action = max_action(e->action, action);
    return true;
  }
  if (entries_.size() >= config_.max_entries) {
    ++rejected_total_;
    return false;
  }
  entries_.insert_or_assign(key, Entry{expires, action});
  ++installed_total_;
  return true;
}

VerdictAction BlockList::lookup(uint64_t key, SimTime now) {
  Entry* e = entries_.find(key);
  if (e == nullptr) return VerdictAction::kPass;
  if (e->expires_at <= now) {
    entries_.erase(key);
    ++expired_total_;
    return VerdictAction::kPass;
  }
  return e->action;
}

VerdictAction BlockList::peek(uint64_t key, SimTime now) const {
  const Entry* e = entries_.find(key);
  if (e == nullptr || e->expires_at <= now) return VerdictAction::kPass;
  return e->action;
}

size_t BlockList::sweep(SimTime now) {
  const size_t n = entries_.erase_if(
      [now](const uint64_t&, const Entry& e) { return e.expires_at <= now; });
  expired_total_ += n;
  return n;
}

// --- Enforcer --------------------------------------------------------------

Enforcer::Enforcer(EnforceConfig config)
    : config_(config),
      blocks_(BlockListConfig{config.block_ttl, config.max_blocked}),
      limiter_(config.limiter) {}

void Enforcer::apply(const Verdict& verdict) {
  const SimTime now = verdict.time;
  const uint64_t src =
      verdict.endpoint.addr.is_unspecified() ? 0 : source_key(verdict.endpoint.addr);
  const uint64_t sess = verdict.session.empty() ? 0 : session_key(verdict.session);
  const uint64_t principal = verdict.aor.empty() ? 0 : aor_key(verdict.aor);

  switch (verdict.action) {
    case VerdictAction::kPass:
      return;
    case VerdictAction::kDrop: {
      const uint64_t key = src != 0 ? src : sess;
      if (key == 0) return;
      if (blocks_.block(key, VerdictAction::kDrop, now) && shared_ != nullptr) {
        shared_->publish(key, VerdictAction::kDrop, now + config_.block_ttl);
      }
      return;
    }
    case VerdictAction::kQuarantine: {
      const uint64_t key = sess != 0 ? sess : src;
      if (key == 0) return;
      if (blocks_.block(key, VerdictAction::kQuarantine, now) && shared_ != nullptr) {
        shared_->publish(key, VerdictAction::kQuarantine, now + config_.block_ttl);
      }
      return;
    }
    case VerdictAction::kRateLimit: {
      const uint64_t key = principal != 0 ? principal : src;
      if (key == 0) return;
      if (limiter_.arm(key, now) && shared_ != nullptr) {
        shared_->publish(key, VerdictAction::kRateLimit, now + config_.block_ttl);
      }
      return;
    }
  }
}

VerdictAction Enforcer::adopt_shared(uint64_t src_key, uint64_t sess_key,
                                     uint64_t principal_key, SimTime now) {
  VerdictAction act = VerdictAction::kPass;
  const uint64_t keys[3] = {src_key, sess_key, principal_key};
  for (uint64_t key : keys) {
    if (key == 0) continue;
    const VerdictAction p = shared_->published(key, now);
    if (p == VerdictAction::kRateLimit) {
      // Another shard graylisted this principal: arm a local bucket so
      // token accounting happens here too.
      limiter_.arm(key, now);
    } else {
      act = max_action(act, p);
    }
  }
  return act;
}

VerdictAction Enforcer::decide(uint64_t src_key, uint64_t sess_key, uint64_t principal_key,
                               SimTime now) {
  VerdictAction act = VerdictAction::kPass;
  const uint64_t keys[3] = {src_key, sess_key, principal_key};
  for (uint64_t key : keys) {
    if (key != 0) act = max_action(act, blocks_.lookup(key, now));
  }
  if (shared_ != nullptr) {
    act = max_action(act, adopt_shared(src_key, sess_key, principal_key, now));
  }
  if (act != VerdictAction::kPass) return act;  // blocks hold only quarantine/drop

  // Principal identity outranks network identities for shaping: the bucket
  // a rule armed by AOR is the one a spammer's next attempt is charged to.
  const uint64_t shaped[3] = {principal_key, src_key, sess_key};
  for (uint64_t key : shaped) {
    if (key != 0 && limiter_.armed(key)) {
      return limiter_.admit(key, now) ? VerdictAction::kPass : VerdictAction::kRateLimit;
    }
  }
  return VerdictAction::kPass;
}

bool Enforcer::steady_pass(uint64_t src_key, uint64_t sess_key, SimTime now) const {
  const uint64_t keys[2] = {src_key, sess_key};
  for (uint64_t key : keys) {
    if (key == 0) continue;
    if (blocks_.peek(key, now) != VerdictAction::kPass) return false;
    if (limiter_.armed(key)) return false;
    if (shared_ != nullptr && shared_->published(key, now) != VerdictAction::kPass) {
      return false;
    }
  }
  return true;
}

VerdictAction Enforcer::peek(uint64_t src_key, uint64_t sess_key, uint64_t principal_key,
                             SimTime now) const {
  VerdictAction act = VerdictAction::kPass;
  const uint64_t keys[3] = {src_key, sess_key, principal_key};
  for (uint64_t key : keys) {
    if (key != 0) act = max_action(act, blocks_.peek(key, now));
    if (shared_ != nullptr && key != 0) {
      const VerdictAction p = shared_->published(key, now);
      if (p != VerdictAction::kRateLimit) act = max_action(act, p);
    }
  }
  if (act != VerdictAction::kPass) return act;

  const uint64_t shaped[3] = {principal_key, src_key, sess_key};
  for (uint64_t key : shaped) {
    if (key != 0 && limiter_.armed(key)) {
      return limiter_.would_admit(key, now) ? VerdictAction::kPass
                                            : VerdictAction::kRateLimit;
    }
  }
  return VerdictAction::kPass;
}

}  // namespace scidive::core
