#include "scidive/sharded_engine.h"

#include <algorithm>
#include <chrono>

#include "pkt/ipv4.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace scidive::core {

namespace {

ShardRouterConfig router_config(const ShardedEngineConfig& config) {
  ShardRouterConfig rc;
  rc.num_shards = config.num_shards == 0 ? 1 : config.num_shards;
  rc.sip_ports = config.engine.distiller.sip_ports;
  rc.acc_port = config.engine.distiller.acc_port;
  rc.reassembly_timeout = config.engine.distiller.reassembly_timeout;
  rc.route_invite_by_caller = config.route_invite_by_caller;
  return rc;
}

EngineConfig shard_engine_config(const ShardedEngineConfig& config) {
  EngineConfig ec = config.engine;
  ec.home_addresses.clear();  // the front-end already filtered
  return ec;
}

/// Adaptive drain-batch tuning (batch_size = 0). Starting small and halving
/// on any near-empty drain measured *worse* than every fixed size: steady
/// producers leave the ring shallow most polls, so the batch thrashed at
/// kMinBatch and paid a pop_batch round-trip per handful of packets. Start
/// large instead, and only shrink after a sustained run of near-empty
/// drains — a shallow ring costs nothing when drains are cheap, while a
/// too-small batch costs ring traffic on every poll.
constexpr size_t kMinBatch = 8;
constexpr size_t kMaxBatch = 128;
constexpr size_t kStartBatch = 64;
/// Consecutive near-empty drains before the batch halves once.
constexpr int kShrinkHysteresis = 8;

uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

/// Sessions whose identity is synthesized by the engines rather than
/// carried by the traffic. Their names collide across unrelated flows
/// ("sip-anon") or encode per-principal state ("ras-reg:"), so migrating
/// them would split state the rules expect to stay together.
bool synthetic_session(const SessionId& id) {
  using std::string_view_literals::operator""sv;
  for (std::string_view prefix : {"flow:"sv, "sip-anon"sv, "acc-anon"sv, "h225-anon"sv,
                                  "ras-anon"sv, "ras-reg:"sv, "unclassified"sv}) {
    if (id.size() >= prefix.size() && std::string_view(id).substr(0, prefix.size()) == prefix)
      return true;
  }
  return false;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(std::move(config)),
      directory_(config_.num_shards == 0 ? 1 : config_.num_shards) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  producers_.push_back(
      std::unique_ptr<Producer>(new Producer(*this, router_config(config_))));
  EngineConfig ec = shard_engine_config(config_);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>(ec, config_.queue_capacity));
  // Before any worker starts: attach each shard's enforcer (present when
  // enforcement is on) to the shared directory so a verdict applied on one
  // worker is honored by every shard's decide().
  for (auto& shard : shards_) {
    if (Enforcer* enf = shard->engine.enforcer()) enf->set_shared(&directory_);
  }
  for (size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->worker = std::thread([this, s = shards_[i].get(), i] { worker_loop(*s, i); });
}

ShardedEngine::~ShardedEngine() { stop(); }

ShardedEngine::Producer& ShardedEngine::add_producer() {
  producers_.push_back(
      std::unique_ptr<Producer>(new Producer(*this, router_config(config_))));
  return *producers_.back();
}

void ShardedEngine::pin_worker(size_t index) {
#if defined(__linux__)
  unsigned cpu;
  if (!config_.worker_cpus.empty()) {
    cpu = static_cast<unsigned>(config_.worker_cpus[index % config_.worker_cpus.size()]);
  } else {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    cpu = static_cast<unsigned>(index) % hw;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: a denied pin (cgroup restriction, offline cpu) is not an
  // error — the bench records oversubscription honestly either way.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

void ShardedEngine::worker_loop(Shard& shard, size_t index) {
  if (config_.pin_workers) pin_worker(index);
  const bool adaptive = config_.batch_size == 0;
  size_t batch = adaptive ? kStartBatch : config_.batch_size;
  int near_empty_drains = 0;
  // Worker-local scratch: the batch is moved out of the ring in one pass,
  // then processed from this thread's own memory with zero ring traffic.
  std::vector<pkt::Packet> scratch;
  scratch.reserve(adaptive ? kMaxBatch : batch);
  uint64_t hwm = 0;
  int idle_polls = 0;
  for (;;) {
    // Sample ring depth before draining: the high-water mark feeds the
    // rebalancer and the scidive_shard_queue_depth_hwm gauge.
    const size_t depth = shard.queue.size();
    if (depth > hwm) {
      hwm = depth;
      shard.queue_depth_hwm.store(hwm, std::memory_order_relaxed);
    }
    scratch.clear();
    size_t n = shard.queue.pop_batch(scratch, batch);
    if (n != 0) {
      const auto busy_start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; ++i) {
        // The next packet's bytes are about to be parsed; overlap the miss
        // with this packet's pipeline work.
        if (i + 1 < n) __builtin_prefetch(scratch[i + 1].data.data());
        shard.engine.on_packet(scratch[i]);
      }
      shard.busy_ns.fetch_add(elapsed_ns(busy_start), std::memory_order_relaxed);
      // One release store per batch publishes both the progress counter and
      // every engine mutation made while processing the batch. Ordering
      // matters for flush(): processed must trail the processing itself.
      shard.processed.fetch_add(n, std::memory_order_release);
      if (adaptive) {
        if (n == batch) {
          near_empty_drains = 0;
          if (batch < kMaxBatch) batch <<= 1;  // full drain: backlogged
        } else if (n <= batch / 4) {
          // Shrink only after a sustained near-empty run: a single shallow
          // poll between producer bursts must not collapse the batch.
          if (batch > kMinBatch && ++near_empty_drains >= kShrinkHysteresis) {
            batch >>= 1;
            near_empty_drains = 0;
          }
        } else {
          near_empty_drains = 0;
        }
      }
      idle_polls = 0;
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    const auto idle_start = std::chrono::steady_clock::now();
    if (++idle_polls < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    shard.idle_ns.fetch_add(elapsed_ns(idle_start), std::memory_order_relaxed);
  }
}

void ShardedEngine::enqueue(size_t index, pkt::Packet&& packet) {
  Shard& shard = *shards_[index];
  if (!shard.queue.try_push(std::move(packet))) {
    if (config_.overflow == OverflowPolicy::kDrop) {
      shard.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    do {
      std::this_thread::yield();
    } while (!shard.queue.try_push(std::move(packet)));
  }
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::Producer::on_packet(const pkt::Packet& packet) {
  pkt::Packet copy = packet;
  on_packet(std::move(copy));
}

void ShardedEngine::Producer::on_packet(pkt::Packet&& packet) {
  ++seen_;
  const auto& home = owner_->config_.engine.home_addresses;
  if (!home.empty()) {
    auto ip = pkt::parse_ipv4(packet.data);
    bool ours = false;
    if (ip.ok()) {
      ours = home.contains(ip.value().header.src) || home.contains(ip.value().header.dst);
    }
    if (!ours) {
      ++filtered_;
      return;
    }
  }
  auto routed = router_.route(packet);
  if (!routed) return;  // fragment held by the router's reassembler
  if (routed->reassembled) {
    owner_->enqueue(routed->shard, std::move(*routed->reassembled));
  } else {
    owner_->enqueue(routed->shard, std::move(packet));
  }
}

void ShardedEngine::flush() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_acquire);
    int spins = 0;
    while (shard->processed.load(std::memory_order_acquire) < target) {
      if (++spins < 1024) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
}

void ShardedEngine::stop() {
  if (stopped_) return;
  flush();
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  stopped_ = true;
}

void ShardedEngine::expire_idle(SimTime cutoff) {
  flush();
  for (auto& shard : shards_) shard->engine.expire_idle(cutoff);
}

void ShardedEngine::set_rules(
    const std::function<std::vector<RulePtr>(size_t shard)>& factory) {
  flush();
  // Quiescent: every worker is parked with its ring empty, so the swap is
  // ordinary single-threaded mutation; the next enqueue's release store
  // publishes it to the worker.
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->engine.set_rules(factory(i));
  }
}

void ShardedEngine::on_packet_to_shard(size_t shard, pkt::Packet&& packet) {
  direct_seen_ += 1;
  enqueue(shard % shards_.size(), std::move(packet));
}

bool ShardedEngine::has_session(const SessionId& session) const {
  for (const auto& shard : shards_) {
    if (shard->engine.has_session(session)) return true;
  }
  return false;
}

ScidiveEngine::SessionTransfer ShardedEngine::extract_session(const SessionId& session) {
  for (auto& shard : shards_) {
    if (shard->engine.has_session(session)) return shard->engine.extract_session(session);
  }
  return {};
}

bool ShardedEngine::install_session(ScidiveEngine::SessionTransfer&& transfer,
                                    size_t shard) {
  if (!transfer.valid) return false;
  const size_t to = shard % shards_.size();
  if (shards_[to]->engine.has_session(transfer.id)) return false;
  const SessionId id = transfer.id;
  shards_[to]->engine.install_session(std::move(transfer));
  directory_.set_override(ShardDirectory::key_hash(id), static_cast<uint32_t>(to));
  for (const pkt::Endpoint& ep : shards_[to]->engine.trails().media_endpoints(id))
    directory_.learn_media(ep, static_cast<uint32_t>(to));
  return true;
}

void ShardedEngine::adopt_verdict(const Verdict& verdict) {
  if (Enforcer* enforcer = shards_.front()->engine.enforcer()) enforcer->apply(verdict);
}

bool ShardedEngine::migrate_session(const SessionId& session, size_t from, size_t to) {
  // install_session's precondition: the destination must not already hold
  // this session. Affinity makes a collision all but impossible; a stale
  // candidate list must still not corrupt the destination.
  if (shards_[to]->engine.has_session(session)) return false;
  ScidiveEngine::SessionTransfer transfer = shards_[from]->engine.extract_session(session);
  if (!transfer.valid) return false;
  shards_[to]->engine.install_session(std::move(transfer));
  // Repoint routing for every producer: the session key override plus its
  // media endpoints (which non-SIP packets route by).
  directory_.set_override(ShardDirectory::key_hash(session), static_cast<uint32_t>(to));
  for (const pkt::Endpoint& ep : shards_[to]->engine.trails().media_endpoints(session))
    directory_.learn_media(ep, static_cast<uint32_t>(to));
  return true;
}

size_t ShardedEngine::rebalance() {
  if (shards_.size() < 2) return 0;
  flush();
  ++rebalance_rounds_;

  // Load signal: packets each worker processed since the last rebalance —
  // a deterministic function of the traffic, unlike wall-clock busy time,
  // so the differential oracle can run rebalance() and stay reproducible.
  double mean = 0.0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t processed = shards_[i]->processed.load(std::memory_order_acquire);
    const double sample =
        static_cast<double>(processed - shards_[i]->processed_at_last_rebalance);
    shards_[i]->processed_at_last_rebalance = processed;
    directory_.update_load(i, sample, config_.rebalance_ewma_alpha);
    mean += directory_.load(i);
  }
  mean /= static_cast<double>(shards_.size());

  size_t hottest = 0;
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (directory_.load(i) > directory_.load(hottest)) hottest = i;
  }
  if (mean <= 0.0 || directory_.load(hottest) <= config_.rebalance_hot_ratio * mean)
    return 0;

  // Candidates: the hot shard's sessions, coldest first (recent trail
  // activity), skipping sessions whose state cannot move — synthetic ids
  // and call-ids pinned to a principal's shard.
  ScidiveEngine& hot = shards_[hottest]->engine;
  std::vector<std::pair<uint64_t, SessionId>> candidates;
  uint64_t hot_activity = 0;
  for (SessionId& id : hot.trails().sessions()) {
    const uint64_t activity = hot.trails().session_activity(id);
    hot_activity += activity;
    if (synthetic_session(id)) continue;
    if (directory_.principal_routed(ShardDirectory::key_hash(id))) continue;
    candidates.emplace_back(activity, std::move(id));
  }
  std::sort(candidates.begin(), candidates.end());

  // Keep the hottest sessions where they are (moving them would thrash the
  // very state making the shard hot); shed cold ones until the surplus over
  // the mean is gone or the per-round cap is hit.
  const double surplus_share =
      (directory_.load(hottest) - mean) / directory_.load(hottest);
  uint64_t activity_budget =
      static_cast<uint64_t>(surplus_share * static_cast<double>(hot_activity));
  size_t migrated = 0;
  uint64_t moved_activity = 0;
  for (auto& [activity, id] : candidates) {
    if (migrated >= config_.rebalance_max_migrations) break;
    if (moved_activity > activity_budget) break;
    // Greedy coldest target.
    size_t coldest = hottest == 0 ? 1 : 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (i != hottest && directory_.load(i) < directory_.load(coldest)) coldest = i;
    }
    if (migrate_session(id, hottest, coldest)) {
      ++migrated;
      moved_activity += activity;
      // Shift the load estimate with the move so the greedy target choice
      // spreads sessions instead of dogpiling one cold shard.
      const double delta = static_cast<double>(activity);
      directory_.update_load(coldest, directory_.load(coldest) + delta, 1.0);
      directory_.update_load(hottest, directory_.load(hottest) - delta, 1.0);
    }
  }
  sessions_migrated_ += migrated;
  return migrated;
}

uint64_t ShardedEngine::packets_dropped() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->dropped.load(std::memory_order_relaxed);
  return n;
}

ShardedEngineStats ShardedEngine::stats() const {
  ShardedEngineStats out;
  for (const auto& producer : producers_) {
    out.packets_seen += producer->seen_;
    out.packets_filtered += producer->filtered_;
  }
  out.packets_seen += direct_seen_;
  out.packets_dropped = packets_dropped();
  for (const auto& shard : shards_) {
    const EngineStats s = shard->engine.stats();
    out.engine.packets_seen += s.packets_seen;
    out.engine.packets_filtered += s.packets_filtered;
    out.engine.packets_inspected += s.packets_inspected;
    out.engine.events += s.events;
    out.engine.alerts += s.alerts;
    out.engine.processing_ns += s.processing_ns;
  }
  return out;
}

void ShardedEngine::sync_frontend_stats() {
  uint64_t seen = 0, filtered = 0;
  ShardRouterStats router{};
  for (const auto& producer : producers_) {
    seen += producer->seen_;
    filtered += producer->filtered_;
    const ShardRouterStats& r = producer->router_.stats();
    router.by_call_id += r.by_call_id;
    router.by_principal += r.by_principal;
    router.by_media_binding += r.by_media_binding;
    router.by_flow_hash += r.by_flow_hash;
    router.media_bindings_learned += r.media_bindings_learned;
    router.fragments_held += r.fragments_held;
    router.datagrams_reassembled += r.datagrams_reassembled;
  }
  frontend_registry_
      .counter("scidive_frontend_packets_seen_total", "Packets offered to the front-end")
      .sync(seen);
  frontend_registry_
      .counter("scidive_frontend_packets_filtered_total",
               "Packets outside the home-address scope (filtered before routing)")
      .sync(filtered);
  frontend_registry_
      .gauge("scidive_frontend_producers", "Registered capture streams (MPSC lanes)")
      .set(static_cast<int64_t>(producers_.size()));
  for (size_t i = 0; i < shards_.size(); ++i) {
    const obs::Labels shard_label = {{"shard", std::to_string(i)}};
    Shard& s = *shards_[i];
    frontend_registry_
        .counter("scidive_shard_enqueued_total", "Packets enqueued to the shard's ring",
                 shard_label)
        .sync(s.enqueued.load(std::memory_order_relaxed));
    frontend_registry_
        .counter("scidive_shard_dropped_total",
                 "Packets dropped at the shard's full ring (kDrop policy)", shard_label)
        .sync(s.dropped.load(std::memory_order_relaxed));
    const uint64_t processed = s.processed.load(std::memory_order_acquire);
    frontend_registry_
        .gauge("scidive_shard_ring_occupancy", "Packets in the shard's ring at snapshot time",
               shard_label)
        .set(static_cast<int64_t>(s.enqueued.load(std::memory_order_relaxed) - processed));
    frontend_registry_
        .gauge("scidive_shard_queue_depth_hwm",
               "High-water mark of the shard ring depth observed by the worker", shard_label)
        .set_max(static_cast<int64_t>(s.queue_depth_hwm.load(std::memory_order_relaxed)));
    frontend_registry_
        .counter("scidive_shard_worker_busy_ns_total",
                 "Wall-clock nanoseconds the shard worker spent processing batches",
                 shard_label)
        .sync(s.busy_ns.load(std::memory_order_relaxed));
    frontend_registry_
        .counter("scidive_shard_worker_idle_ns_total",
                 "Wall-clock nanoseconds the shard worker spent polling an empty ring",
                 shard_label)
        .sync(s.idle_ns.load(std::memory_order_relaxed));
  }
  frontend_registry_
      .counter("scidive_router_by_call_id_total", "Packets routed by Call-ID affinity")
      .sync(router.by_call_id);
  frontend_registry_
      .counter("scidive_router_by_principal_total", "Packets routed by From-AOR affinity")
      .sync(router.by_principal);
  frontend_registry_
      .counter("scidive_router_by_media_binding_total",
               "Packets routed via the SDP-learned media endpoint map")
      .sync(router.by_media_binding);
  frontend_registry_
      .counter("scidive_router_by_flow_hash_total", "Packets routed by the 4-tuple fallback")
      .sync(router.by_flow_hash);
  frontend_registry_
      .counter("scidive_router_media_bindings_learned_total",
               "Media endpoint bindings the router learned from signaling")
      .sync(router.media_bindings_learned);
  frontend_registry_
      .counter("scidive_router_fragments_held_total",
               "Fragments held by the router's reassembler awaiting completion")
      .sync(router.fragments_held);
  frontend_registry_
      .counter("scidive_router_datagrams_reassembled_total",
               "Fragmented datagrams the router reassembled before routing")
      .sync(router.datagrams_reassembled);
  frontend_registry_
      .gauge("scidive_router_media_bindings", "Media endpoint bindings currently mapped")
      .set(static_cast<int64_t>(directory_.media_binding_count()));
  frontend_registry_
      .gauge("scidive_router_affinity_overrides",
             "Session-affinity overrides installed by the rebalancer")
      .set(static_cast<int64_t>(directory_.override_count()));
  frontend_registry_
      .counter("scidive_rebalance_sessions_migrated_total",
               "Sessions migrated between shards by rebalance()")
      .sync(sessions_migrated_);
  frontend_registry_
      .counter("scidive_rebalance_rounds_total", "rebalance() invocations")
      .sync(rebalance_rounds_);
  if (config_.engine.enforce.mode != EnforcementMode::kOff) {
    frontend_registry_
        .gauge("scidive_router_published_enforcement",
               "Enforcement entries published through the shard directory")
        .set(static_cast<int64_t>(directory_.published_count()));
  }
}

obs::Snapshot ShardedEngine::metrics_snapshot() {
  flush();
  obs::Snapshot out;
  for (auto& shard : shards_) out.merge(shard->engine.metrics_snapshot());
  sync_frontend_stats();
  out.merge(frontend_registry_.snapshot());
  return out;
}

std::vector<Alert> ShardedEngine::merged_alerts() const {
  std::vector<Alert> out;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->engine.alerts().alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const Alert& a, const Alert& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.session != b.session) return a.session < b.session;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

size_t ShardedEngine::alert_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->engine.alerts().count();
  return n;
}

std::vector<Verdict> ShardedEngine::merged_verdicts() const {
  std::vector<Verdict> out;
  for (const auto& shard : shards_) {
    const auto& verdicts = shard->engine.verdicts().verdicts();
    out.insert(out.end(), verdicts.begin(), verdicts.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.session != b.session) return a.session < b.session;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

size_t ShardedEngine::verdict_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->engine.verdicts().count();
  return n;
}

}  // namespace scidive::core
