#include "scidive/sharded_engine.h"

#include <algorithm>
#include <chrono>

#include "pkt/ipv4.h"

namespace scidive::core {

namespace {

ShardRouterConfig router_config(const ShardedEngineConfig& config) {
  ShardRouterConfig rc;
  rc.num_shards = config.num_shards == 0 ? 1 : config.num_shards;
  rc.sip_ports = config.engine.distiller.sip_ports;
  rc.acc_port = config.engine.distiller.acc_port;
  rc.reassembly_timeout = config.engine.distiller.reassembly_timeout;
  return rc;
}

EngineConfig shard_engine_config(const ShardedEngineConfig& config) {
  EngineConfig ec = config.engine;
  ec.home_addresses.clear();  // the front-end already filtered
  return ec;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(std::move(config)), router_(router_config(config_)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  EngineConfig ec = shard_engine_config(config_);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>(ec, config_.queue_capacity));
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

ShardedEngine::~ShardedEngine() { stop(); }

void ShardedEngine::worker_loop(Shard& shard) {
  const size_t batch = config_.batch_size;
  // Worker-local scratch: the batch is moved out of the ring in one pass
  // (single release store frees every slot for the producer at once), then
  // processed from this thread's own memory with zero ring traffic.
  std::vector<pkt::Packet> scratch;
  scratch.reserve(batch);
  int idle_polls = 0;
  for (;;) {
    scratch.clear();
    size_t n = shard.queue.pop_batch(scratch, batch);
    if (n != 0) {
      for (const pkt::Packet& packet : scratch) shard.engine.on_packet(packet);
      // One release store per batch publishes both the progress counter and
      // every engine mutation made while processing the batch. Ordering
      // matters for flush(): processed must trail the processing itself.
      shard.processed.fetch_add(n, std::memory_order_release);
      idle_polls = 0;
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if (++idle_polls < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void ShardedEngine::enqueue(size_t index, pkt::Packet&& packet) {
  Shard& shard = *shards_[index];
  if (!shard.queue.try_push(std::move(packet))) {
    if (config_.overflow == OverflowPolicy::kDrop) {
      ++shard.dropped;
      return;
    }
    do {
      std::this_thread::yield();
    } while (!shard.queue.try_push(std::move(packet)));
  }
  ++shard.enqueued;
}

void ShardedEngine::on_packet(const pkt::Packet& packet) {
  pkt::Packet copy = packet;
  on_packet(std::move(copy));
}

void ShardedEngine::on_packet(pkt::Packet&& packet) {
  ++seen_;
  if (!config_.engine.home_addresses.empty()) {
    auto ip = pkt::parse_ipv4(packet.data);
    bool ours = false;
    if (ip.ok()) {
      ours = config_.engine.home_addresses.contains(ip.value().header.src) ||
             config_.engine.home_addresses.contains(ip.value().header.dst);
    }
    if (!ours) {
      ++filtered_;
      return;
    }
  }
  auto routed = router_.route(packet);
  if (!routed) return;  // fragment held by the router's reassembler
  if (routed->reassembled) {
    enqueue(routed->shard, std::move(*routed->reassembled));
  } else {
    enqueue(routed->shard, std::move(packet));
  }
}

void ShardedEngine::flush() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued;
    int spins = 0;
    while (shard->processed.load(std::memory_order_acquire) < target) {
      if (++spins < 1024) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
}

void ShardedEngine::stop() {
  if (stopped_) return;
  flush();
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  stopped_ = true;
}

void ShardedEngine::expire_idle(SimTime cutoff) {
  flush();
  for (auto& shard : shards_) shard->engine.expire_idle(cutoff);
}

void ShardedEngine::set_rules(
    const std::function<std::vector<RulePtr>(size_t shard)>& factory) {
  flush();
  // Quiescent: every worker is parked with its ring empty, so the swap is
  // ordinary single-threaded mutation; the next enqueue's release store
  // publishes it to the worker.
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->engine.set_rules(factory(i));
  }
}

uint64_t ShardedEngine::packets_dropped() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->dropped;
  return n;
}

ShardedEngineStats ShardedEngine::stats() const {
  ShardedEngineStats out;
  out.packets_seen = seen_;
  out.packets_filtered = filtered_;
  out.packets_dropped = packets_dropped();
  for (const auto& shard : shards_) {
    const EngineStats s = shard->engine.stats();
    out.engine.packets_seen += s.packets_seen;
    out.engine.packets_filtered += s.packets_filtered;
    out.engine.packets_inspected += s.packets_inspected;
    out.engine.events += s.events;
    out.engine.alerts += s.alerts;
    out.engine.processing_ns += s.processing_ns;
  }
  return out;
}

void ShardedEngine::sync_frontend_stats() {
  frontend_registry_
      .counter("scidive_frontend_packets_seen_total", "Packets offered to the front-end")
      .sync(seen_);
  frontend_registry_
      .counter("scidive_frontend_packets_filtered_total",
               "Packets outside the home-address scope (filtered before routing)")
      .sync(filtered_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const obs::Labels shard_label = {{"shard", std::to_string(i)}};
    frontend_registry_
        .counter("scidive_shard_enqueued_total", "Packets enqueued to the shard's ring",
                 shard_label)
        .sync(shards_[i]->enqueued);
    frontend_registry_
        .counter("scidive_shard_dropped_total",
                 "Packets dropped at the shard's full ring (kDrop policy)", shard_label)
        .sync(shards_[i]->dropped);
    const uint64_t processed = shards_[i]->processed.load(std::memory_order_acquire);
    frontend_registry_
        .gauge("scidive_shard_ring_occupancy", "Packets in the shard's ring at snapshot time",
               shard_label)
        .set(static_cast<int64_t>(shards_[i]->enqueued - processed));
  }
  const ShardRouterStats& r = router_.stats();
  frontend_registry_
      .counter("scidive_router_by_call_id_total", "Packets routed by Call-ID affinity")
      .sync(r.by_call_id);
  frontend_registry_
      .counter("scidive_router_by_principal_total", "Packets routed by From-AOR affinity")
      .sync(r.by_principal);
  frontend_registry_
      .counter("scidive_router_by_media_binding_total",
               "Packets routed via the SDP-learned media endpoint map")
      .sync(r.by_media_binding);
  frontend_registry_
      .counter("scidive_router_by_flow_hash_total", "Packets routed by the 4-tuple fallback")
      .sync(r.by_flow_hash);
  frontend_registry_
      .counter("scidive_router_media_bindings_learned_total",
               "Media endpoint bindings the router learned from signaling")
      .sync(r.media_bindings_learned);
  frontend_registry_
      .counter("scidive_router_fragments_held_total",
               "Fragments held by the router's reassembler awaiting completion")
      .sync(r.fragments_held);
  frontend_registry_
      .counter("scidive_router_datagrams_reassembled_total",
               "Fragmented datagrams the router reassembled before routing")
      .sync(r.datagrams_reassembled);
  frontend_registry_
      .gauge("scidive_router_media_bindings", "Media endpoint bindings currently mapped")
      .set(static_cast<int64_t>(router_.media_binding_count()));
}

obs::Snapshot ShardedEngine::metrics_snapshot() {
  flush();
  obs::Snapshot out;
  for (auto& shard : shards_) out.merge(shard->engine.metrics_snapshot());
  sync_frontend_stats();
  out.merge(frontend_registry_.snapshot());
  return out;
}

std::vector<Alert> ShardedEngine::merged_alerts() const {
  std::vector<Alert> out;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->engine.alerts().alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const Alert& a, const Alert& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.session != b.session) return a.session < b.session;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

size_t ShardedEngine::alert_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->engine.alerts().count();
  return n;
}

}  // namespace scidive::core
