#include "scidive/incident.h"

#include "common/strings.h"

namespace scidive::core {

std::string Incident::to_string() const {
  std::string nodes;
  for (const auto& node : reporting_nodes) {
    if (!nodes.empty()) nodes += ",";
    nodes += node;
  }
  return str::format("[%s] %s session=%s alerts=%llu span=%s..%s nodes={%s}: %s",
                     severity_name(severity).data(), rule.c_str(), session.c_str(),
                     static_cast<unsigned long long>(alert_count),
                     format_time(first_seen).c_str(), format_time(last_seen).c_str(),
                     nodes.c_str(), first_message.c_str());
}

void IncidentCorrelator::on_alert(const std::string& node, const Alert& alert) {
  ++alerts_consumed_;
  // Search newest-first for an open incident to merge into.
  for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
    if (it->rule != alert.rule || it->session != alert.session) continue;
    if (alert.time - it->last_seen > config_.merge_window) break;  // burst over
    it->last_seen = std::max(it->last_seen, alert.time);
    it->severity = std::max(it->severity, alert.severity);
    ++it->alert_count;
    it->reporting_nodes.insert(node);
    return;
  }
  Incident incident;
  incident.rule = alert.rule;
  incident.session = alert.session;
  incident.severity = alert.severity;
  incident.first_seen = alert.time;
  incident.last_seen = alert.time;
  incident.alert_count = 1;
  incident.reporting_nodes.insert(node);
  incident.first_message = alert.message;
  incidents_.push_back(std::move(incident));
}

std::vector<Incident> IncidentCorrelator::incidents() const { return incidents_; }

}  // namespace scidive::core
