#include "scidive/trail_manager.h"

#include <algorithm>

#include "common/strings.h"

namespace scidive::core {

SessionId TrailManager::classify(const Footprint& fp) {
  switch (fp.protocol) {
    case Protocol::kSip: {
      const SipFootprint* sip = fp.sip();
      if (sip != nullptr && !sip->call_id.empty()) return sip->call_id;
      return "sip-anon";  // unparseable/malformed SIP shares one bucket
    }
    case Protocol::kAcc: {
      const AccFootprint* acc = fp.acc();
      if (acc != nullptr && !acc->call_id.empty()) return acc->call_id;
      return "acc-anon";
    }
    case Protocol::kH225: {
      const H225Footprint* h225 = fp.h225();
      if (h225 != nullptr && !h225->call_id.empty()) return h225->call_id;
      return "h225-anon";
    }
    case Protocol::kRas: {
      const RasFootprint* ras = fp.ras();
      if (ras != nullptr && !ras->call_id.empty()) return ras->call_id;
      if (ras != nullptr && !ras->alias.empty()) return "ras-reg:" + ras->alias;
      return "ras-anon";
    }
    case Protocol::kRtp:
    case Protocol::kRtcp:
    case Protocol::kUnknown: {
      // Media correlates through SDP-learned endpoints. RTCP runs on
      // media-port + 1; normalize to the even RTP port for the lookup.
      auto normalize = [&](pkt::Endpoint ep) {
        if (fp.protocol == Protocol::kRtcp && ep.port % 2 == 1) ep.port -= 1;
        return ep;
      };
      for (pkt::Endpoint ep : {normalize(fp.src), normalize(fp.dst)}) {
        if (auto session = session_for_media(ep)) {
          ++stats_.rtp_bound_to_session;
          return *session;
        }
      }
      ++stats_.rtp_unbound;
      return str::format("flow:%s->%s", fp.src.to_string().c_str(),
                         fp.dst.to_string().c_str());
    }
  }
  return "unclassified";
}

Trail& TrailManager::add(Footprint fp) {
  TrailKey key{classify(fp), fp.protocol};
  auto it = trails_.find(key);
  if (it == trails_.end()) {
    if (++session_trail_counts_[key.session] == 1) ++stats_.sessions_created;
    it = trails_.emplace(key, std::make_unique<Trail>(key, max_footprints_per_trail_)).first;
  }
  it->second->append(std::move(fp));
  ++stats_.footprints_routed;
  return *it->second;
}

void TrailManager::bind_media_endpoint(const pkt::Endpoint& media, const SessionId& session) {
  media_to_session_[media] = session;
}

void TrailManager::unbind_media_endpoint(const pkt::Endpoint& media) {
  media_to_session_.erase(media);
}

std::optional<SessionId> TrailManager::session_for_media(const pkt::Endpoint& media) const {
  auto it = media_to_session_.find(media);
  if (it == media_to_session_.end()) return std::nullopt;
  return it->second;
}

const Trail* TrailManager::find(const SessionId& session, Protocol protocol) const {
  auto it = trails_.find(TrailKey{session, protocol});
  return it == trails_.end() ? nullptr : it->second.get();
}

Trail* TrailManager::find_mut(const SessionId& session, Protocol protocol) {
  auto it = trails_.find(TrailKey{session, protocol});
  return it == trails_.end() ? nullptr : it->second.get();
}

std::vector<const Trail*> TrailManager::session_trails(const SessionId& session) const {
  std::vector<const Trail*> out;
  for (const auto& [key, trail] : trails_) {
    if (key.session == session) out.push_back(trail.get());
  }
  return out;
}

std::vector<SessionId> TrailManager::sessions() const {
  std::vector<SessionId> out;
  out.reserve(session_trail_counts_.size());
  for (const auto& [session, count] : session_trail_counts_) out.push_back(session);
  std::sort(out.begin(), out.end());
  return out;
}

size_t TrailManager::expire_idle(SimTime cutoff) {
  size_t dropped = 0;
  for (auto it = trails_.begin(); it != trails_.end();) {
    if (it->second->last_time() < cutoff) {
      auto counter = session_trail_counts_.find(it->first.session);
      if (counter != session_trail_counts_.end() && --counter->second == 0)
        session_trail_counts_.erase(counter);
      it = trails_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace scidive::core
