#include "scidive/trail_manager.h"

#include <algorithm>

#include "common/strings.h"

namespace scidive::core {

namespace {

bool is_media(Protocol p) {
  return p == Protocol::kRtp || p == Protocol::kRtcp || p == Protocol::kUnknown;
}

}  // namespace

std::optional<Symbol> TrailManager::media_session_sym(pkt::Endpoint ep, Protocol protocol) const {
  // Media correlates through SDP-learned endpoints. RTCP runs on
  // media-port + 1; normalize to the even RTP port for the lookup.
  if (protocol == Protocol::kRtcp && ep.port % 2 == 1) ep.port -= 1;
  const Symbol* sym = media_to_session_.find(ep);
  if (sym == nullptr) return std::nullopt;
  return *sym;
}

Symbol TrailManager::classify(const Footprint& fp, bool& media_bound) {
  media_bound = false;
  switch (fp.protocol) {
    case Protocol::kSip: {
      const SipFootprint* sip = fp.sip();
      if (sip != nullptr && !sip->call_id.empty()) return symbols_.intern(sip->call_id);
      return symbols_.intern("sip-anon");  // unparseable/malformed SIP shares one bucket
    }
    case Protocol::kAcc: {
      const AccFootprint* acc = fp.acc();
      if (acc != nullptr && !acc->call_id.empty()) return symbols_.intern(acc->call_id);
      return symbols_.intern("acc-anon");
    }
    case Protocol::kH225: {
      const H225Footprint* h225 = fp.h225();
      if (h225 != nullptr && !h225->call_id.empty()) return symbols_.intern(h225->call_id);
      return symbols_.intern("h225-anon");
    }
    case Protocol::kRas: {
      const RasFootprint* ras = fp.ras();
      if (ras != nullptr && !ras->call_id.empty()) return symbols_.intern(ras->call_id);
      if (ras != nullptr && !ras->alias.empty()) {
        return symbols_.intern("ras-reg:" + ras->alias);
      }
      return symbols_.intern("ras-anon");
    }
    case Protocol::kRtp:
    case Protocol::kRtcp:
    case Protocol::kUnknown: {
      for (pkt::Endpoint ep : {fp.src, fp.dst}) {
        if (auto sym = media_session_sym(ep, fp.protocol)) {
          media_bound = true;
          return *sym;
        }
      }
      return symbols_.intern(str::format("flow:%s->%s", fp.src.to_string().c_str(),
                                         fp.dst.to_string().c_str()));
    }
  }
  return symbols_.intern("unclassified");
}

Trail& TrailManager::trail_for(Symbol sym, Protocol protocol) {
  const uint64_t slot_key = trail_slot_key(sym, protocol);
  if (Trail* const* found = trails_.find(slot_key)) return **found;

  auto [slot_ptr, created] = sessions_.try_emplace(sym);
  if (created) {
    *slot_ptr = std::make_unique<SessionSlot>();
    ++stats_.sessions_created;
  }
  SessionSlot& slot = **slot_ptr;
  Trail* trail = slot.arena.create<Trail>(TrailKey{std::string(symbols_.name(sym)), protocol},
                                          max_footprints_per_trail_, sym, &slot.arena);
  slot.trails.push_back(trail);
  trails_.try_emplace(slot_key, trail);
  return *trail;
}

Trail& TrailManager::route(const Footprint& fp) {
  if (is_media(fp.protocol)) {
    MediaFlowKey flow{fp.src, fp.dst, fp.protocol};
    if (const CachedRoute* cached = media_flow_cache_.find(flow)) {
      ++stats_.flow_cache_hits;
      if (cached->bound) {
        ++stats_.rtp_bound_to_session;
      } else {
        ++stats_.rtp_unbound;
      }
      return *cached->trail;
    }
    bool bound = false;
    Symbol sym = classify(fp, bound);
    if (bound) {
      ++stats_.rtp_bound_to_session;
    } else {
      ++stats_.rtp_unbound;
    }
    Trail& trail = trail_for(sym, fp.protocol);
    media_flow_cache_.try_emplace(flow, CachedRoute{&trail, bound});
    return trail;
  }
  bool bound = false;
  return trail_for(classify(fp, bound), fp.protocol);
}

Trail& TrailManager::add(Footprint fp) {
  Trail& trail = route(fp);
  trail.append(std::move(fp));
  ++stats_.footprints_routed;
  return trail;
}

void TrailManager::bind_media_endpoint(const pkt::Endpoint& media, const SessionId& session) {
  const Symbol sym = symbols_.intern(session);
  auto [slot, inserted] = media_to_session_.try_emplace(media, sym);
  if (!inserted) {
    if (*slot == sym) return;  // re-signaled same binding: keep cache
    *slot = sym;
  }
  // A new or changed binding can redirect flows that previously resolved to
  // a synthetic flow-session (or another call), so cached routes are stale.
  invalidate_media_routes();
}

void TrailManager::unbind_media_endpoint(const pkt::Endpoint& media) {
  if (media_to_session_.erase(media)) invalidate_media_routes();
}

std::optional<SessionId> TrailManager::session_for_media(const pkt::Endpoint& media) const {
  const Symbol* sym = media_to_session_.find(media);
  if (sym == nullptr) return std::nullopt;
  return SessionId(symbols_.name(*sym));
}

const Trail* TrailManager::find(const SessionId& session, Protocol protocol) const {
  auto sym = symbols_.find(session);
  if (!sym) return nullptr;
  Trail* const* found = trails_.find(trail_slot_key(*sym, protocol));
  return found == nullptr ? nullptr : *found;
}

Trail* TrailManager::find_mut(const SessionId& session, Protocol protocol) {
  auto sym = symbols_.find(session);
  if (!sym) return nullptr;
  Trail* const* found = trails_.find(trail_slot_key(*sym, protocol));
  return found == nullptr ? nullptr : *found;
}

std::vector<const Trail*> TrailManager::session_trails(const SessionId& session) const {
  std::vector<const Trail*> out;
  auto sym = symbols_.find(session);
  if (!sym) return out;
  const std::unique_ptr<SessionSlot>* slot = sessions_.find(*sym);
  if (slot == nullptr) return out;
  out.assign((*slot)->trails.begin(), (*slot)->trails.end());
  return out;
}

std::vector<SessionId> TrailManager::sessions() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  sessions_.for_each([&](const Symbol& sym, const std::unique_ptr<SessionSlot>&) {
    out.emplace_back(symbols_.name(sym));
  });
  std::sort(out.begin(), out.end());
  return out;
}

size_t TrailManager::arena_bytes_reserved() const {
  size_t bytes = 0;
  sessions_.for_each([&](const Symbol&, const std::unique_ptr<SessionSlot>& slot) {
    bytes += slot->arena.bytes_reserved();
  });
  return bytes;
}

TrailManager::ExtractedSession::ExtractedSession() = default;
TrailManager::ExtractedSession::ExtractedSession(ExtractedSession&&) noexcept = default;
TrailManager::ExtractedSession& TrailManager::ExtractedSession::operator=(
    ExtractedSession&&) noexcept = default;
TrailManager::ExtractedSession::~ExtractedSession() = default;

bool TrailManager::has_session(const SessionId& session) const {
  auto sym = symbols_.find(session);
  return sym && sessions_.contains(*sym);
}

uint64_t TrailManager::session_activity(const SessionId& session) const {
  auto sym = symbols_.find(session);
  if (!sym) return 0;
  const std::unique_ptr<SessionSlot>* slot = sessions_.find(*sym);
  if (slot == nullptr) return 0;
  uint64_t appended = 0;
  for (const Trail* trail : (*slot)->trails) appended += trail->total_appended();
  return appended;
}

std::vector<pkt::Endpoint> TrailManager::media_endpoints(const SessionId& session) const {
  std::vector<pkt::Endpoint> out;
  auto sym = symbols_.find(session);
  if (!sym) return out;
  media_to_session_.for_each([&](const pkt::Endpoint& ep, const Symbol& bound) {
    if (bound == *sym) out.push_back(ep);
  });
  return out;
}

TrailManager::ExtractedSession TrailManager::extract_session(const SessionId& session) {
  ExtractedSession out;
  auto sym = symbols_.find(session);
  if (!sym) return out;
  std::unique_ptr<SessionSlot>* slot = sessions_.find(*sym);
  if (slot == nullptr) return out;
  out.id = session;
  out.slot = std::move(*slot);
  sessions_.erase(*sym);
  // Detach the trail index entries (the Trail objects travel in the slot's
  // arena) and the session's media bindings.
  for (const Trail* trail : out.slot->trails)
    trails_.erase(trail_slot_key(*sym, trail->key().protocol));
  media_to_session_.erase_if([&](const pkt::Endpoint& ep, const Symbol& bound) {
    if (bound != *sym) return false;
    out.media.push_back(ep);
    return true;
  });
  // Cached media routes may point into the departed trails. The source
  // symbol stays interned (symbols are never recycled); it simply has no
  // state behind it any more.
  invalidate_media_routes();
  return out;
}

void TrailManager::install_session(ExtractedSession&& moved) {
  if (!moved.valid()) return;
  const Symbol sym = symbols_.intern(moved.id);
  // Intentionally no ++stats_.sessions_created: the session already exists
  // from the pipeline's point of view, it just lives here now.
  for (Trail* trail : moved.slot->trails) {
    trail->rebind(sym);
    trails_.try_emplace(trail_slot_key(sym, trail->key().protocol), trail);
  }
  for (const pkt::Endpoint& ep : moved.media) media_to_session_.insert_or_assign(ep, sym);
  sessions_.try_emplace(sym, std::move(moved.slot));
  if (!moved.media.empty()) invalidate_media_routes();
}

size_t TrailManager::expire_idle(SimTime cutoff) {
  size_t dropped = trails_.erase_if([&](const uint64_t&, Trail*& trail) {
    if (trail->last_time() >= cutoff) return false;
    const Symbol sym = trail->sym();
    if (std::unique_ptr<SessionSlot>* slot = sessions_.find(sym)) {
      std::erase((*slot)->trails, trail);
      trail->~Trail();
      // The arena (and every byte the session's trails ever allocated) is
      // reclaimed in one release once the last trail expires.
      if ((*slot)->trails.empty()) sessions_.erase(sym);
    } else {
      trail->~Trail();
    }
    ++stats_.trails_expired;
    return true;
  });
  // Expired trails may still be referenced by cached media routes.
  if (dropped != 0) invalidate_media_routes();
  return dropped;
}

}  // namespace scidive::core
