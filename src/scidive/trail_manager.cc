#include "scidive/trail_manager.h"

#include <algorithm>

#include "common/strings.h"

namespace scidive::core {

namespace {

bool is_media(Protocol p) {
  return p == Protocol::kRtp || p == Protocol::kRtcp || p == Protocol::kUnknown;
}

}  // namespace

SessionId TrailManager::classify(const Footprint& fp, bool& media_bound) {
  media_bound = false;
  switch (fp.protocol) {
    case Protocol::kSip: {
      const SipFootprint* sip = fp.sip();
      if (sip != nullptr && !sip->call_id.empty()) return sip->call_id;
      return "sip-anon";  // unparseable/malformed SIP shares one bucket
    }
    case Protocol::kAcc: {
      const AccFootprint* acc = fp.acc();
      if (acc != nullptr && !acc->call_id.empty()) return acc->call_id;
      return "acc-anon";
    }
    case Protocol::kH225: {
      const H225Footprint* h225 = fp.h225();
      if (h225 != nullptr && !h225->call_id.empty()) return h225->call_id;
      return "h225-anon";
    }
    case Protocol::kRas: {
      const RasFootprint* ras = fp.ras();
      if (ras != nullptr && !ras->call_id.empty()) return ras->call_id;
      if (ras != nullptr && !ras->alias.empty()) return "ras-reg:" + ras->alias;
      return "ras-anon";
    }
    case Protocol::kRtp:
    case Protocol::kRtcp:
    case Protocol::kUnknown: {
      // Media correlates through SDP-learned endpoints. RTCP runs on
      // media-port + 1; normalize to the even RTP port for the lookup.
      auto normalize = [&](pkt::Endpoint ep) {
        if (fp.protocol == Protocol::kRtcp && ep.port % 2 == 1) ep.port -= 1;
        return ep;
      };
      for (pkt::Endpoint ep : {normalize(fp.src), normalize(fp.dst)}) {
        if (auto session = session_for_media(ep)) {
          media_bound = true;
          return *session;
        }
      }
      return str::format("flow:%s->%s", fp.src.to_string().c_str(),
                         fp.dst.to_string().c_str());
    }
  }
  return "unclassified";
}

Trail& TrailManager::trail_for(const SessionId& session, Protocol protocol) {
  TrailKey key{session, protocol};
  auto it = trails_.find(key);
  if (it == trails_.end()) {
    it = trails_.emplace(key, std::make_unique<Trail>(key, max_footprints_per_trail_)).first;
    auto& index = session_index_[session];
    if (index.empty()) ++stats_.sessions_created;
    index.push_back(it->second.get());
  }
  return *it->second;
}

Trail& TrailManager::route(const Footprint& fp) {
  if (is_media(fp.protocol)) {
    MediaFlowKey flow{fp.src, fp.dst, fp.protocol};
    auto cached = media_flow_cache_.find(flow);
    if (cached != media_flow_cache_.end()) {
      ++stats_.flow_cache_hits;
      if (cached->second.bound) {
        ++stats_.rtp_bound_to_session;
      } else {
        ++stats_.rtp_unbound;
      }
      return *cached->second.trail;
    }
    bool bound = false;
    SessionId session = classify(fp, bound);
    if (bound) {
      ++stats_.rtp_bound_to_session;
    } else {
      ++stats_.rtp_unbound;
    }
    Trail& trail = trail_for(session, fp.protocol);
    media_flow_cache_.emplace(flow, CachedRoute{&trail, bound});
    return trail;
  }
  bool bound = false;
  return trail_for(classify(fp, bound), fp.protocol);
}

Trail& TrailManager::add(Footprint fp) {
  Trail& trail = route(fp);
  trail.append(std::move(fp));
  ++stats_.footprints_routed;
  return trail;
}

void TrailManager::bind_media_endpoint(const pkt::Endpoint& media, const SessionId& session) {
  auto [it, inserted] = media_to_session_.try_emplace(media, session);
  if (!inserted) {
    if (it->second == session) return;  // re-signaled same binding: keep cache
    it->second = session;
  }
  // A new or changed binding can redirect flows that previously resolved to
  // a synthetic flow-session (or another call), so cached routes are stale.
  media_flow_cache_.clear();
}

void TrailManager::unbind_media_endpoint(const pkt::Endpoint& media) {
  if (media_to_session_.erase(media) != 0) media_flow_cache_.clear();
}

std::optional<SessionId> TrailManager::session_for_media(const pkt::Endpoint& media) const {
  auto it = media_to_session_.find(media);
  if (it == media_to_session_.end()) return std::nullopt;
  return it->second;
}

const Trail* TrailManager::find(const SessionId& session, Protocol protocol) const {
  auto it = trails_.find(TrailKey{session, protocol});
  return it == trails_.end() ? nullptr : it->second.get();
}

Trail* TrailManager::find_mut(const SessionId& session, Protocol protocol) {
  auto it = trails_.find(TrailKey{session, protocol});
  return it == trails_.end() ? nullptr : it->second.get();
}

std::vector<const Trail*> TrailManager::session_trails(const SessionId& session) const {
  std::vector<const Trail*> out;
  auto it = session_index_.find(session);
  if (it == session_index_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::vector<SessionId> TrailManager::sessions() const {
  std::vector<SessionId> out;
  out.reserve(session_index_.size());
  for (const auto& [session, trails] : session_index_) out.push_back(session);
  std::sort(out.begin(), out.end());
  return out;
}

size_t TrailManager::expire_idle(SimTime cutoff) {
  size_t dropped = 0;
  for (auto it = trails_.begin(); it != trails_.end();) {
    if (it->second->last_time() < cutoff) {
      auto indexed = session_index_.find(it->first.session);
      if (indexed != session_index_.end()) {
        std::erase(indexed->second, it->second.get());
        if (indexed->second.empty()) session_index_.erase(indexed);
      }
      it = trails_.erase(it);
      ++dropped;
      ++stats_.trails_expired;
    } else {
      ++it;
    }
  }
  // Expired trails may still be referenced by cached media routes.
  if (dropped != 0) media_flow_cache_.clear();
  return dropped;
}

}  // namespace scidive::core
