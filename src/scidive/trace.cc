#include "scidive/trace.h"

#include <istream>
#include <ostream>

#include "common/strings.h"

namespace scidive::core {

namespace {
constexpr std::string_view kHeader = "SPCAP1";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

TraceWriter::TraceWriter(std::ostream& out) : out_(out) { out_ << kHeader << "\n"; }

void TraceWriter::write(const pkt::Packet& packet) {
  out_ << packet.timestamp << ' ' << to_hex(packet.data) << '\n';
  out_.flush();
  ++packets_written_;
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  std::string line;
  if (std::getline(in_, line) && str::trim(line) == kHeader) {
    header_ok_ = true;
  } else {
    error_ = "missing SPCAP1 header";
  }
}

bool TraceReader::next(pkt::Packet* out) {
  if (!header_ok_ || !error_.empty()) return false;
  std::string line;
  while (std::getline(in_, line)) {
    std::string_view text = str::trim(line);
    if (text.empty() || text.front() == '#') continue;
    auto space = str::split_once(text, ' ');
    if (!space) {
      error_ = "packet line without timestamp separator";
      return false;
    }
    auto timestamp = str::parse_u64(space->first);
    if (!timestamp) {
      error_ = "bad timestamp: " + std::string(space->first);
      return false;
    }
    std::string_view hex = str::trim(space->second);
    if (hex.size() % 2 != 0) {
      error_ = "odd-length hex payload";
      return false;
    }
    out->timestamp = static_cast<SimTime>(*timestamp);
    out->data.clear();
    out->data.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
      int hi = hex_value(hex[i]);
      int lo = hex_value(hex[i + 1]);
      if (hi < 0 || lo < 0) {
        error_ = "non-hex byte in payload";
        return false;
      }
      out->data.push_back(static_cast<uint8_t>(hi << 4 | lo));
    }
    ++packets_read_;
    return true;
  }
  return false;  // clean EOF
}

Result<uint64_t> replay_trace(std::istream& in,
                              const std::function<void(const pkt::Packet&)>& consumer) {
  TraceReader reader(in);
  if (!reader.header_ok()) return Error{Errc::kMalformed, reader.error()};
  pkt::Packet packet;
  while (reader.next(&packet)) consumer(packet);
  if (!reader.error().empty()) return Error{Errc::kMalformed, reader.error()};
  return reader.packets_read();
}

}  // namespace scidive::core
