// Enforcement primitives behind the verdict layer: a token-bucket
// RateLimiter and a TTL BlockList, both keyed by tagged 64-bit keys and
// stored in FlatMaps so the packet-path lookups ("is this source blocked?
// is this caller graylisted?") are a hash and a cache line — no heap
// traffic, no strings.
//
// Keys are content-derived, not interner-local: a key is an EnforceKeyKind
// tag in the top byte over a 56-bit hash of the identity (source address,
// AOR spelling, session id). Content derivation is what lets a verdict
// computed on one shard be published through the ShardDirectory and honored
// by every other shard — symbol ids are per-interner, hashes are not.
//
// The Enforcer composes the two stores and owns the action semantics:
//   drop        -> block the source (TTL), fall back to the session;
//   quarantine  -> block the session (TTL), fall back to the source;
//   rate_limit  -> arm a token bucket on the principal (AOR), fall back
//                  to the source; packets that present an armed key and
//                  find the bucket empty decide kRateLimit.
// decide() is the engine's mutating per-packet evaluation (consumes
// tokens); peek() is the non-mutating variant for external enforcement
// points (proxy screen, router filter), so a packet that traverses both a
// tap and a forwarding element is charged exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "common/clock.h"
#include "common/flat_map.h"
#include "pkt/addr.h"
#include "scidive/verdict.h"

namespace scidive::core {

/// How the deployment consumes decisions. The engine computes identical
/// decisions in passive and inline mode — that identity is the passive
/// dry-run claim — only the enforcement points change behavior: passive
/// records would-have-dropped counters, inline actually drops.
enum class EnforcementMode : uint8_t { kOff = 0, kPassive = 1, kInline = 2 };

constexpr std::string_view enforcement_mode_name(EnforcementMode m) {
  switch (m) {
    case EnforcementMode::kOff: return "off";
    case EnforcementMode::kPassive: return "passive";
    case EnforcementMode::kInline: return "inline";
  }
  return "?";
}

// --- tagged keys -----------------------------------------------------------

enum class EnforceKeyKind : uint8_t { kSource = 1, kAor = 2, kSession = 3 };

constexpr uint64_t enforce_key(EnforceKeyKind kind, uint64_t low) {
  return static_cast<uint64_t>(kind) << 56 | (low & ((uint64_t{1} << 56) - 1));
}

/// Source key: the address alone (port-less — an attacker hops ports).
constexpr uint64_t source_key(pkt::Ipv4Address addr) {
  return enforce_key(EnforceKeyKind::kSource, addr.value());
}

inline uint64_t hashed_key(EnforceKeyKind kind, std::string_view identity) {
  return enforce_key(kind, flat_mix64(std::hash<std::string_view>{}(identity)));
}

inline uint64_t aor_key(std::string_view aor) {
  return hashed_key(EnforceKeyKind::kAor, aor);
}
inline uint64_t session_key(std::string_view session) {
  return hashed_key(EnforceKeyKind::kSession, session);
}

// --- token buckets ---------------------------------------------------------

struct RateLimiterConfig {
  /// Refill rate once a key is graylisted. The default shapes a spammer to
  /// one admitted attempt per 5 simulated seconds.
  double rate_per_sec = 0.2;
  /// Bucket capacity (burst). New buckets start full so the first attempts
  /// after graylisting are admitted, then the rate bites.
  double burst = 2.0;
  /// Bound on concurrent buckets; arms beyond it are rejected and counted.
  size_t max_entries = 8192;
};

/// Token buckets over tagged keys. A key with no bucket is unlimited; arm()
/// installs one. Invariants the property tests pin: tokens never negative,
/// tokens never exceed burst, refill is monotone in elapsed time, and a
/// backward time step refills nothing (clocks across shards may skew).
class RateLimiter {
 public:
  explicit RateLimiter(RateLimiterConfig config = {}) : config_(config) {}

  /// Install a bucket for `key` (idempotent: an existing bucket keeps its
  /// state). Returns false when rejected at the capacity bound.
  bool arm(uint64_t key, SimTime now);

  /// True when `key` is unlimited or its bucket holds a whole token
  /// (which is then consumed).
  bool admit(uint64_t key, SimTime now);

  /// Non-mutating admit(): no token is consumed, no refill is stored.
  bool would_admit(uint64_t key, SimTime now) const;

  bool armed(uint64_t key) const { return buckets_.contains(key); }
  /// Tokens the bucket would hold at `now` (-1 when the key is unlimited).
  double tokens(uint64_t key, SimTime now) const;
  void disarm(uint64_t key) { buckets_.erase(key); }
  void clear() { buckets_.clear(); }

  size_t size() const { return buckets_.size(); }
  uint64_t armed_total() const { return armed_total_; }
  uint64_t denied_total() const { return denied_total_; }
  uint64_t rejected_total() const { return rejected_total_; }
  /// Sum of whole tokens available across buckets as of each bucket's last
  /// refill (no clock input, so snapshot-safe and deterministic).
  int64_t stored_tokens() const;

  const RateLimiterConfig& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0;
    SimTime last = 0;
  };

  double refilled(const Bucket& b, SimTime now) const;

  RateLimiterConfig config_;
  FlatMap<uint64_t, Bucket> buckets_;
  uint64_t armed_total_ = 0;
  uint64_t denied_total_ = 0;
  uint64_t rejected_total_ = 0;
};

// --- block list ------------------------------------------------------------

struct BlockListConfig {
  SimDuration ttl = sec(60);
  /// Bound on concurrent entries; blocks beyond it are rejected and
  /// counted (the attacker must not be able to grow IDS memory).
  size_t max_entries = 8192;
};

/// TTL block list over tagged keys. Expiry is lazy (a lookup that finds an
/// expired entry erases it) plus sweep() for housekeeping; an entry
/// re-blocked before expiry has its TTL extended, never shortened.
class BlockList {
 public:
  explicit BlockList(BlockListConfig config = {}) : config_(config) {}

  /// Returns false when rejected at the capacity bound.
  bool block(uint64_t key, VerdictAction action, SimTime now);

  /// Action for `key` at `now` (kPass when absent or expired; expired
  /// entries are erased on the way out).
  VerdictAction lookup(uint64_t key, SimTime now);

  /// Non-mutating lookup (expired entries report kPass but stay put).
  VerdictAction peek(uint64_t key, SimTime now) const;

  /// Erase every expired entry; returns how many.
  size_t sweep(SimTime now);

  size_t size() const { return entries_.size(); }
  uint64_t installed_total() const { return installed_total_; }
  uint64_t expired_total() const { return expired_total_; }
  uint64_t rejected_total() const { return rejected_total_; }
  void clear() { entries_.clear(); }

  const BlockListConfig& config() const { return config_; }

 private:
  struct Entry {
    SimTime expires_at = 0;
    VerdictAction action = VerdictAction::kDrop;
  };

  BlockListConfig config_;
  FlatMap<uint64_t, Entry> entries_;
  uint64_t installed_total_ = 0;
  uint64_t expired_total_ = 0;
  uint64_t rejected_total_ = 0;
};

// --- shared publication ----------------------------------------------------

/// Cross-shard enforcement fabric. A sharded deployment installs one view
/// per worker engine (backed by the ShardDirectory's atomic maps) so a
/// verdict applied on one shard is visible to packet decisions on every
/// other shard. Single-engine deployments leave it unset.
class SharedEnforcement {
 public:
  virtual ~SharedEnforcement() = default;
  virtual void publish(uint64_t key, VerdictAction action, SimTime expires_at) = 0;
  /// Action published for `key`, kPass when none or expired at `now`.
  virtual VerdictAction published(uint64_t key, SimTime now) const = 0;
  /// Monotone change counter over the published state: moves whenever a
  /// publish alters what published() can report. The engine's fast path
  /// caches "nothing stands against this flow" and revalidates when the
  /// version moves; a view that never publishes stays at 0 forever.
  virtual uint64_t version() const { return 0; }
};

// --- the enforcer ----------------------------------------------------------

struct EnforceConfig {
  EnforcementMode mode = EnforcementMode::kOff;
  SimDuration block_ttl = sec(60);
  RateLimiterConfig limiter;
  size_t max_blocked = 8192;
  size_t verdict_capacity = VerdictSink::kDefaultCapacity;
};

/// Applies verdicts to the stores and evaluates per-packet decisions.
class Enforcer {
 public:
  explicit Enforcer(EnforceConfig config);

  EnforcementMode mode() const { return config_.mode; }
  bool inline_mode() const { return config_.mode == EnforcementMode::kInline; }

  /// Consume one rule-emitted verdict: install blocks / arm buckets and
  /// publish through the shared view when one is attached.
  void apply(const Verdict& verdict);

  /// Mutating per-packet decision over the packet's identity keys (0 for
  /// an absent identity — e.g. RTP has no AOR). Consumes a token when a
  /// rate-limited key is presented.
  VerdictAction decide(uint64_t src_key, uint64_t sess_key, uint64_t principal_key,
                       SimTime now);

  /// Non-mutating decide() for external enforcement points.
  VerdictAction peek(uint64_t src_key, uint64_t sess_key, uint64_t principal_key,
                     SimTime now) const;

  /// True when nothing stands against the flow's identity keys — no live
  /// block, no armed bucket, no shared publication. decide() is then kPass
  /// with no side effects at any later time too (until state_generation()
  /// moves), which is what lets the engine's established-flow fast path
  /// cache the decision instead of re-evaluating per packet.
  bool steady_pass(uint64_t src_key, uint64_t sess_key, SimTime now) const;

  /// Monotone counter that moves whenever enforcement state that could turn
  /// a steady_pass() into a non-pass appears: blocks installed, buckets
  /// armed, shared publications. Expiry does not move it — expiry only
  /// removes obstacles, and a cached pass stays a pass.
  uint64_t state_generation() const {
    return blocks_.installed_total() + limiter_.armed_total() +
           (shared_ == nullptr ? 0 : shared_->version());
  }

  void set_shared(SharedEnforcement* shared) { shared_ = shared; }

  BlockList& blocks() { return blocks_; }
  const BlockList& blocks() const { return blocks_; }
  RateLimiter& limiter() { return limiter_; }
  const RateLimiter& limiter() const { return limiter_; }
  const EnforceConfig& config() const { return config_; }

 private:
  /// Strongest published action across the packet's keys, arming local
  /// state for shared entries this shard has not seen yet (decide path).
  VerdictAction adopt_shared(uint64_t src_key, uint64_t sess_key, uint64_t principal_key,
                             SimTime now);

  EnforceConfig config_;
  BlockList blocks_;
  RateLimiter limiter_;
  SharedEnforcement* shared_ = nullptr;
};

}  // namespace scidive::core
