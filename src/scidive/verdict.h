// Verdicts — the prevention-side counterpart of Alerts. A rule that has
// concluded something about a principal can, in addition to raising an
// alert, emit a Verdict naming the action the deployment should take:
// pass, rate_limit, quarantine or drop. Detection and enforcement stay
// decoupled on purpose: the engine always runs the full pipeline over
// every packet (so alert parity across passive/inline modes and across
// shard topologies is an invariant, not an aspiration), and a Verdict is
// a *decision record* that enforcement points consume — the Enforcer's
// block list and rate limiters inside the engine, and the proxy/router
// hooks outside it. SecSip (Lahmadi & Festor) is the model: the same
// stateful engine, moved into the packet path.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "pkt/addr.h"
#include "scidive/trail.h"

namespace scidive::core {

/// Escalation-ordered: a packet's final decision is the max over every
/// source that wants a say (block list, rate limiter, verdicts emitted
/// while the packet itself was being processed).
enum class VerdictAction : uint8_t {
  kPass = 0,
  kRateLimit = 1,
  kQuarantine = 2,
  kDrop = 3,
};

inline constexpr size_t kVerdictActionCount = 4;

constexpr std::string_view verdict_action_name(VerdictAction a) {
  switch (a) {
    case VerdictAction::kPass: return "pass";
    case VerdictAction::kRateLimit: return "rate_limit";
    case VerdictAction::kQuarantine: return "quarantine";
    case VerdictAction::kDrop: return "drop";
  }
  return "?";
}

constexpr VerdictAction max_action(VerdictAction a, VerdictAction b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

struct Verdict {
  std::string rule;  // which rule decided
  VerdictAction action = VerdictAction::kPass;
  SessionId session;
  SimTime time = 0;
  /// Principal the verdict targets (caller AOR for SPIT graylisting; may
  /// be empty when the rule only knows a network source).
  std::string aor;
  /// Network source the verdict targets (zero when unknown).
  pkt::Endpoint endpoint;
  std::string message;
};

/// Collects verdicts; mirrors AlertSink: bounded retention, an optional
/// callback that sees every verdict, and monotone totals per action.
///
/// The sink additionally tracks the *pending* escalation — the max action
/// raised since the last take_pending() — so the engine can fold verdicts
/// emitted while processing a packet into that same packet's decision.
class VerdictSink {
 public:
  using Callback = std::function<void(const Verdict&)>;

  static constexpr size_t kDefaultCapacity = 65536;

  explicit VerdictSink(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void raise(Verdict verdict) {
    ++total_raised_;
    ++raised_[static_cast<size_t>(verdict.action)];
    pending_ = max_action(pending_, verdict.action);
    if (callback_) callback_(verdict);
    if (verdicts_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    verdicts_.push_back(std::move(verdict));
  }

  /// Max action raised since the last call; resets to kPass.
  VerdictAction take_pending() {
    VerdictAction p = pending_;
    pending_ = VerdictAction::kPass;
    return p;
  }

  void set_callback(Callback cb) { callback_ = std::move(cb); }
  void set_capacity(size_t capacity) { capacity_ = capacity == 0 ? 1 : capacity; }

  const std::vector<Verdict>& verdicts() const { return verdicts_; }
  /// Retained verdicts (≤ capacity). See total_raised() for the true count.
  size_t count() const { return verdicts_.size(); }
  uint64_t total_raised() const { return total_raised_; }
  uint64_t total_for(VerdictAction a) const { return raised_[static_cast<size_t>(a)]; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }
  size_t count_for_rule(std::string_view rule) const {
    size_t n = 0;
    for (const auto& v : verdicts_) {
      if (v.rule == rule) ++n;
    }
    return n;
  }
  void clear() {
    verdicts_.clear();
    total_raised_ = 0;
    dropped_ = 0;
    pending_ = VerdictAction::kPass;
    for (auto& r : raised_) r = 0;
  }

 private:
  size_t capacity_;
  std::vector<Verdict> verdicts_;
  uint64_t total_raised_ = 0;
  uint64_t raised_[kVerdictActionCount] = {};
  uint64_t dropped_ = 0;
  VerdictAction pending_ = VerdictAction::kPass;
  Callback callback_;
};

}  // namespace scidive::core
