#include "scidive/alert.h"

#include "common/strings.h"

namespace scidive::core {

std::string Alert::to_string() const {
  return str::format("[%s] %s @%s session=%s: %s", severity_name(severity).data(), rule.c_str(),
                     format_time(time).c_str(), session.c_str(), message.c_str());
}

}  // namespace scidive::core
