// Packet trace capture and replay — offline analysis for SCIDIVE. A trace
// is a text file ("SPCAP1" header, then one `<timestamp_usec> <hex-bytes>`
// line per packet) that a tap can record and the engine can re-ingest later
// with identical results; the IDS pipeline is deterministic given the same
// packet sequence.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "netsim/network.h"
#include "pkt/packet.h"

namespace scidive::core {

/// Streams packets to an ostream in SPCAP1 format. The stream must outlive
/// the writer; the writer flushes per packet (traces are evidence).
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out);

  void write(const pkt::Packet& packet);
  /// A tap that records everything it sees: network.add_tap(writer.tap()).
  netsim::PacketTap tap() {
    return [this](const pkt::Packet& packet) { write(packet); };
  }

  uint64_t packets_written() const { return packets_written_; }

 private:
  std::ostream& out_;
  uint64_t packets_written_ = 0;
};

/// Reads an SPCAP1 trace. Strict on the header, tolerant of blank lines and
/// '#' comments, strict on packet lines (a corrupt trace should fail loudly,
/// not half-feed an IDS).
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);

  /// True until the stream ends or errors.
  bool next(pkt::Packet* out);

  bool header_ok() const { return header_ok_; }
  const std::string& error() const { return error_; }
  uint64_t packets_read() const { return packets_read_; }

 private:
  std::istream& in_;
  bool header_ok_ = false;
  std::string error_;
  uint64_t packets_read_ = 0;
};

/// Replay a whole trace into a packet consumer. Returns the number of
/// packets fed, or an error describing the first corrupt line.
Result<uint64_t> replay_trace(std::istream& in,
                              const std::function<void(const pkt::Packet&)>& consumer);

}  // namespace scidive::core
