#include "scidive/engine.h"

#include "pkt/ipv4.h"
#include "rtp/rtp.h"

namespace scidive::core {

namespace {

uint64_t ns_between(std::chrono::steady_clock::time_point a,
                    std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

ScidiveEngine::ScidiveEngine(EngineConfig config)
    : config_(std::move(config)),
      distiller_(config_.distiller),
      trails_(config_.max_footprints_per_trail),
      events_(trails_, config_.events),
      sink_(config_.obs.alert_capacity),
      verdicts_(config_.enforce.verdict_capacity),
      ledger_(config_.obs.ledger_capacity) {
  // A packet rarely yields more than a handful of events; reserving once
  // keeps the per-packet clear()/push_back cycle allocation-free.
  scratch_events_.reserve(16);
  intern_pipeline_instruments();
  if (config_.enforce.mode != EnforcementMode::kOff) {
    enforcer_ = std::make_unique<Enforcer>(config_.enforce);
    for (size_t i = 0; i < kVerdictActionCount; ++i) {
      packet_verdicts_[i] = &registry_.counter(
          "scidive_packet_verdicts_total", "Per-packet enforcement decisions, by action",
          {{"action", std::string(verdict_action_name(static_cast<VerdictAction>(i)))}});
    }
  }
  // Per-(action, rule) verdict attribution. Cells register lazily on the
  // first verdict a rule emits, so detection-only runs expose no lines.
  verdicts_.set_callback([this](const Verdict& v) {
    registry_
        .counter("scidive_verdicts_total", "Verdicts emitted by rules, by action and rule",
                 {{"action", std::string(verdict_action_name(v.action))}, {"rule", v.rule}})
        .inc();
  });
  auto ruleset = make_default_ruleset(config_.rules);
  for (RulePtr& rule : ruleset) add_rule(std::move(rule));
}

void ScidiveEngine::intern_pipeline_instruments() {
  packets_seen_ =
      &registry_.counter("scidive_packets_seen_total", "Packets offered to the engine tap");
  packets_filtered_ = &registry_.counter("scidive_packets_filtered_total",
                                         "Packets outside the home-address scope");
  packets_inspected_ = &registry_.counter("scidive_packets_inspected_total",
                                          "Packets that entered the detection pipeline");
  events_total_ =
      &registry_.counter("scidive_events_total", "Events emitted by the event generator");
  processing_ns_ = &registry_.counter(
      "scidive_processing_ns_total",
      "Wall-clock nanoseconds spent inside the pipeline (0 when stage timing is off)");
  for (size_t i = 0; i < kEventTypeCount; ++i) {
    event_type_counters_[i] = &registry_.counter(
        "scidive_events_by_type_total", "Events emitted, by event type",
        {{"type", std::string(event_type_name(static_cast<EventType>(i)))}});
  }
  const auto bounds = obs::latency_ns_bounds();
  stage_distill_ = &registry_.histogram(
      "scidive_stage_ns", "Per-stage pipeline latency in nanoseconds", bounds,
      {{"stage", "distill"}});
  stage_route_ = &registry_.histogram("scidive_stage_ns",
                                      "Per-stage pipeline latency in nanoseconds", bounds,
                                      {{"stage", "route"}});
  stage_events_ = &registry_.histogram("scidive_stage_ns",
                                       "Per-stage pipeline latency in nanoseconds", bounds,
                                       {{"stage", "events"}});
  stage_rules_ = &registry_.histogram("scidive_stage_ns",
                                      "Per-stage pipeline latency in nanoseconds", bounds,
                                      {{"stage", "rules"}});
  alerts_total_ = &registry_.counter(
      "scidive_alerts_total", "Alerts raised by the rule engine (including retention drops)");
  alerts_dropped_ = &registry_.counter("scidive_alerts_dropped_total",
                                       "Alerts dropped from sink retention (capacity bound)");
  alerts_retained_ =
      &registry_.gauge("scidive_alerts_retained", "Alerts currently held by the sink");
  ledger_recorded_ = &registry_.counter("scidive_alert_ledger_recorded_total",
                                        "Alerts offered to the audit ledger");
  ledger_dropped_ = &registry_.counter("scidive_alert_ledger_dropped_total",
                                       "Audit records dropped at the ledger capacity bound");
  ledger_size_ =
      &registry_.gauge("scidive_alert_ledger_size", "Audit records currently in the ledger");
  if (config_.fastpath.enabled) {
    fastpath_hits_ = &registry_.counter(
        "scidive_fastpath_hits_total",
        "Packets fully handled by the established-flow fast path");
    fastpath_misses_ = &registry_.counter(
        "scidive_fastpath_misses_total",
        "Inspected packets that took the full pipeline while the fast path was on");
    fastpath_invalidations_ = &registry_.counter(
        "scidive_fastpath_invalidations_total",
        "Cached flows handed back to the full pipeline");
  }
}

ScidiveEngine::RuleInstruments ScidiveEngine::intern_rule_instruments(const Rule& rule) {
  const std::string rule_name(rule.name());
  RuleInstruments ri;
  ri.events_seen = &registry_.counter("scidive_rule_events_total",
                                      "Events delivered to the rule", {{"rule", rule_name}});
  ri.alerts = &registry_.counter("scidive_rule_alerts_total", "Alerts raised by the rule",
                                 {{"rule", rule_name}});
  ri.state_entries =
      &registry_.gauge("scidive_rule_state_entries",
                       "Per-session/per-principal state entries held by the rule",
                       {{"rule", rule_name}});
  return ri;
}

void ScidiveEngine::add_rule(RulePtr rule) {
  rule_inst_.push_back(intern_rule_instruments(*rule));
  rules_.push_back(std::move(rule));
  rebuild_subscriber_index();
}

void ScidiveEngine::clear_rules() {
  // Registry cells are append-only; a cleared rule's instruments simply
  // freeze at their last values.
  rules_.clear();
  rule_inst_.clear();
  rebuild_subscriber_index();
}

void ScidiveEngine::set_rules(std::vector<RulePtr> rules) {
  rules_ = std::move(rules);
  rule_inst_.clear();
  rule_inst_.reserve(rules_.size());
  for (const RulePtr& rule : rules_) rule_inst_.push_back(intern_rule_instruments(*rule));
  rebuild_subscriber_index();
}

void ScidiveEngine::rebuild_subscriber_index() {
  for (auto& list : subscribers_) list.clear();
  for (size_t i = 0; i < rules_.size(); ++i) {
    const EventTypeMask mask = rules_[i]->subscriptions();
    for (size_t t = 0; t < kEventTypeCount; ++t) {
      if (mask & (EventTypeMask{1} << t)) {
        subscribers_[t].push_back(static_cast<uint32_t>(i));
      }
    }
  }
  // Re-derive whether any installed rule wants to see steady-state media;
  // a ruleset change (hot reload included) also invalidates every cached
  // flow, since the new rules may watch sessions the old ones ignored.
  fastpath_rules_ok_ = true;
  for (const RulePtr& rule : rules_) {
    if (rule->media_steady_state_interest()) {
      fastpath_rules_ok_ = false;
      break;
    }
  }
  fastpath_flush();
}

VerdictAction ScidiveEngine::on_packet(const pkt::Packet& packet) {
  packets_seen_->inc();

  if (!config_.home_addresses.empty()) {
    // Cheap pre-filter on the (unverified) IP header so the endpoint IDS
    // ignores traffic that is not the monitored client's.
    auto ip = pkt::parse_ipv4(packet.data);
    bool ours = false;
    if (ip.ok()) {
      ours = config_.home_addresses.contains(ip.value().header.src) ||
             config_.home_addresses.contains(ip.value().header.dst);
    }
    if (!ours) {
      packets_filtered_->inc();
      return VerdictAction::kPass;
    }
  }
  packets_inspected_->inc();

  // Established-flow fast path: steady-state media for a cached flow skips
  // footprint construction, trail routing, event generation and rule
  // dispatch entirely. Any deviation invalidates the entry and the packet
  // falls through to the full pipeline below.
  const bool fp_on = fastpath_on();
  if (fp_on) {
    if (fastpath_try(packet)) return VerdictAction::kPass;
    fastpath_misses_->inc();
  }

  using Clock = std::chrono::steady_clock;
  const bool timed = config_.obs.time_stages;
  Clock::time_point start{}, mark{};
  if (timed) start = mark = Clock::now();

  VerdictAction decision = VerdictAction::kPass;
  auto fp = distiller_.distill(packet);
  if (timed) {
    const auto now = Clock::now();
    stage_distill_->observe(ns_between(mark, now));
    mark = now;
  }
  if (fp) {
    if (fp->protocol == Protocol::kRtp && !fastpath_.empty()) {
      // Slow-path RTP touching a cached destination or cached source is a
      // hazard the peek could not see (fragment reassembly, parallel flow):
      // hand the affected entries back before events are generated.
      fastpath_probe_slow_rtp(*fp);
    }
    // Enforcement identities, captured before the footprint moves into the
    // trail: network source, signaling principal, then (post-routing) the
    // session. Pure hashing — nothing here allocates.
    const SimTime pkt_time = fp->time;
    uint64_t src_k = 0, principal_k = 0, sess_k = 0;
    if (enforcer_ != nullptr) {
      if (!fp->src.addr.is_unspecified()) src_k = source_key(fp->src.addr);
      if (const SipFootprint* sip = fp->sip(); sip != nullptr && !sip->from_aor.empty()) {
        principal_k = aor_key(sip->from_aor);
      }
    }
    Trail& trail = trails_.add(std::move(*fp));
    if (enforcer_ != nullptr) sess_k = session_key(trail.key().session);
    if (timed) {
      const auto now = Clock::now();
      stage_route_->observe(ns_between(mark, now));
      mark = now;
    }
    scratch_events_.clear();
    events_.process(trail.back(), trail, scratch_events_);
    if (timed) {
      const auto now = Clock::now();
      stage_events_->observe(ns_between(mark, now));
      mark = now;
    }
    events_total_->inc(scratch_events_.size());
    RuleContext ctx(trails_, sink_, &ledger_, &verdicts_, enforcer_.get());
    for (const Event& event : scratch_events_) {
      event_type_counters_[static_cast<size_t>(event.type)]->inc();
      if (event_callback_) event_callback_(event);
      if (config_.subscription_dispatch) {
        // Only the subscribers of this event's type are visited; a rule
        // that kept the default kAllEventsMask appears in every list.
        for (uint32_t i : subscribers_[static_cast<size_t>(event.type)]) {
          rule_inst_[i].events_seen->inc();
          const uint64_t before = sink_.total_raised();
          rules_[i]->on_event(event, ctx);
          const uint64_t raised = sink_.total_raised() - before;
          if (raised != 0) rule_inst_[i].alerts->inc(raised);
        }
      } else {
        for (size_t i = 0; i < rules_.size(); ++i) {
          rule_inst_[i].events_seen->inc();
          const uint64_t before = sink_.total_raised();
          rules_[i]->on_event(event, ctx);
          const uint64_t raised = sink_.total_raised() - before;
          if (raised != 0) rule_inst_[i].alerts->inc(raised);
        }
      }
    }
    if (timed) {
      const auto now = Clock::now();
      stage_rules_->observe(ns_between(mark, now));
      mark = now;
    }
    if (fp_on && scratch_events_.empty() && trail.back().protocol == Protocol::kRtp) {
      // A media packet that produced zero events is steady state: the flow
      // is a candidate for bypass from the next packet on.
      if (const RtpFootprint* rtp = trail.back().rtp()) {
        fastpath_maybe_cache(trail, trail.back(), *rtp, src_k, sess_k);
      }
    }
    if (enforcer_ != nullptr) {
      // Standing state first (blocks, armed buckets), then escalate by any
      // verdict this very packet's processing emitted — the packet that
      // crossed a SPIT threshold is itself shaped, not just its successors.
      decision = enforcer_->decide(src_k, sess_k, principal_k, pkt_time);
      decision = max_action(decision, verdicts_.take_pending());
    }
  }
  if (enforcer_ != nullptr) {
    // Every inspected packet gets exactly one decision, so the accounting
    // identity packets_inspected == Σ decisions holds (undistillable
    // packets pass: there is no identity to enforce against).
    packet_verdicts_[static_cast<size_t>(decision)]->inc();
  }
  if (timed) processing_ns_->inc(ns_between(start, mark));
  return decision;
}

bool ScidiveEngine::fastpath_try(const pkt::Packet& packet) {
  if (fastpath_.empty()) return false;
  if (trails_.media_generation() != fp_media_gen_ ||
      events_.watch_generation() != fp_watch_gen_) {
    // Signaling moved the ground under the cache (media binding change,
    // monitor armed, session migration or expiry): any entry may now be
    // watched. Flush and take the slow path; flows that are still steady
    // re-cache within a packet.
    fastpath_flush();
    return false;
  }
  auto peek = distiller_.peek_rtp(packet);
  if (!peek) return false;
  FastFlow* flow = fastpath_.find(pack_flow_endpoint(peek->dst));
  if (flow == nullptr) return false;
  if (flow->src == peek->src && flow->ssrc == peek->ssrc &&
      (enforcer_ == nullptr || flow->enforce_gen == enforcer_->state_generation())) {
    const int32_t gap = rtp::seq_distance(flow->last_seq, peek->sequence);
    if (gap >= -config_.events.seq_jump_threshold &&
        gap <= config_.events.seq_jump_threshold) {
      // Advance the authoritative jitter-estimator copy. If this very
      // packet would fire the one-shot jitter alarm, undo the advance and
      // fall back: the slow path re-applies it identically and emits the
      // event.
      const rtp::RtpStreamStats before = flow->stats;
      flow->stats.on_packet(peek->sequence, peek->timestamp, peek->time);
      const bool jitter_alarm =
          flow->jitter_armed &&
          flow->stats.packets_received() > config_.events.jitter_warmup_packets &&
          flow->stats.jitter_ms() > config_.events.jitter_alarm_ms;
      if (!jitter_alarm) {
        flow->last_seq = peek->sequence;
        if (peek->time > flow->last_time) flow->last_time = peek->time;
        ++flow->bypassed;
        ++bypassed_total_;
        if (flow->bound) {
          ++bypassed_bound_;
        } else {
          ++bypassed_unbound_;
        }
        fastpath_hits_->inc();
        if (enforcer_ != nullptr) {
          // The accounting identity packets_inspected == Σ decisions still
          // holds: a bypassed packet is a kPass decision.
          packet_verdicts_[static_cast<size_t>(VerdictAction::kPass)]->inc();
        }
        return true;
      }
      flow->stats = before;
    }
  }
  // Deviation: different source, SSRC change, sequence jump beyond the
  // benign-reorder window, pending jitter alarm, or enforcement state that
  // moved since the verdict was cached. Back to the full pipeline.
  fastpath_invalidate(*flow);
  return false;
}

void ScidiveEngine::fastpath_maybe_cache(Trail& trail, const Footprint& fp,
                                         const RtpFootprint& rtp, uint64_t src_k,
                                         uint64_t sess_k) {
  // Only flows peek_rtp can re-recognize are worth caching: the peek
  // refuses odd ports (speculative RTCP) outright.
  if (fp.src.port % 2 == 1 || fp.dst.port % 2 == 1) return;
  const uint64_t dst_key = pack_flow_endpoint(fp.dst);
  if (fastpath_.contains(dst_key)) return;  // first flow owns a destination
  const uint64_t src_key = pack_flow_endpoint(fp.src);
  if (fastpath_src_.contains(src_key)) return;  // src already feeds a cached dst
  const Symbol sym = trail.sym();
  if (sym == kInvalidSymbol) return;
  EventGenerator::SessionState* state = events_.find_state(sym);
  if (state == nullptr || !state->monitors.empty()) return;
  const uint16_t* last_seq = state->last_seq_by_dst.find(fp.dst);
  const rtp::RtpStreamStats* stats = state->stats_by_src.find(fp.src);
  if (last_seq == nullptr || stats == nullptr) return;
  // With enforcement on, cache only a provably inert verdict: no block, no
  // armed bucket, no cross-shard publication for either identity. Any later
  // enforcement change bumps state_generation() and misses the entry.
  if (enforcer_ != nullptr && !enforcer_->steady_pass(src_k, sess_k, fp.time)) return;

  if (fastpath_.empty()) {
    // First entry after a flush: adopt the current generations. The entry
    // is built from current state, so everything older is already
    // reflected in it.
    fp_media_gen_ = trails_.media_generation();
    fp_watch_gen_ = events_.watch_generation();
  }
  FastFlow flow;
  flow.src = fp.src;
  flow.dst = fp.dst;
  flow.ssrc = rtp.ssrc;
  flow.last_seq = *last_seq;
  flow.bound = trail.key().session.rfind("flow:", 0) != 0;
  flow.jitter_armed = !state->jitter_alarmed.contains(fp.src);
  flow.trail = &trail;
  flow.sym = sym;
  flow.stats = *stats;
  flow.enforce_gen = enforcer_ == nullptr ? 0 : enforcer_->state_generation();
  flow.last_time = fp.time;
  fastpath_.try_emplace(dst_key, flow);
  fastpath_src_.try_emplace(src_key, dst_key);
}

void ScidiveEngine::fastpath_probe_slow_rtp(const Footprint& fp) {
  if (FastFlow* flow = fastpath_.find(pack_flow_endpoint(fp.dst))) {
    fastpath_invalidate(*flow);
  }
  if (const uint64_t* dst_key = fastpath_src_.find(pack_flow_endpoint(fp.src))) {
    const uint64_t key = *dst_key;  // copy: invalidate erases the index entry
    if (FastFlow* flow = fastpath_.find(key)) fastpath_invalidate(*flow);
  }
}

void ScidiveEngine::fastpath_writeback(FastFlow& flow) {
  if (flow.bypassed == 0) return;
  flow.trail->note_bypassed(flow.bypassed, flow.last_time);
  if (EventGenerator::SessionState* state = events_.find_state(flow.sym)) {
    if (uint16_t* last_seq = state->last_seq_by_dst.find(flow.dst)) {
      *last_seq = flow.last_seq;
    }
    if (rtp::RtpStreamStats* stats = state->stats_by_src.find(flow.src)) {
      *stats = flow.stats;
    }
    if (flow.last_time > state->last_touched) state->last_touched = flow.last_time;
  }
  flow.bypassed = 0;
}

void ScidiveEngine::fastpath_invalidate(FastFlow& flow) {
  fastpath_writeback(flow);
  fastpath_invalidations_->inc();
  fastpath_src_.erase(pack_flow_endpoint(flow.src));
  fastpath_.erase(pack_flow_endpoint(flow.dst));  // `flow` dies here
}

void ScidiveEngine::fastpath_flush() {
  if (!fastpath_.empty()) {
    fastpath_.for_each([this](const uint64_t&, FastFlow& flow) {
      fastpath_writeback(flow);
      fastpath_invalidations_->inc();
    });
    fastpath_.clear();
    fastpath_src_.clear();
  }
  fp_media_gen_ = trails_.media_generation();
  fp_watch_gen_ = events_.watch_generation();
}

VerdictAction ScidiveEngine::peek_packet(const pkt::Packet& packet) const {
  if (enforcer_ == nullptr) return VerdictAction::kPass;
  auto ip = pkt::parse_ipv4(packet.data);
  if (!ip.ok() || ip.value().header.src.is_unspecified()) return VerdictAction::kPass;
  return enforcer_->peek(source_key(ip.value().header.src), 0, 0, packet.timestamp);
}

EngineStats ScidiveEngine::stats() const {
  EngineStats s;
  s.packets_seen = packets_seen_->value();
  s.packets_filtered = packets_filtered_->value();
  s.packets_inspected = packets_inspected_->value();
  s.events = events_total_->value();
  s.alerts = sink_.total_raised();
  s.processing_ns = processing_ns_->value();
  return s;
}

void ScidiveEngine::sync_component_stats() {
  const DistillerStats& d = distiller_.stats();
  // Fast-path mirrors: a bypassed packet is a packet the full pipeline
  // *would have* distilled as RTP, routed through the flow cache into its
  // bound trail and run through the event generator (producing nothing).
  // Adding the bypass aggregates keeps every one of these families equal to
  // its fastpath-off value, so the differential oracle and the single-vs-
  // sharded parity check hold with the fast path on.
  registry_.counter("scidive_distiller_packets_total", "Packets entering the distiller")
      .sync(d.packets_in + bypassed_total_);
  registry_
      .counter("scidive_distiller_undecodable_total", "Packets that were not even IPv4+UDP")
      .sync(d.undecodable);
  registry_
      .counter("scidive_distiller_fragments_held_total",
               "Fragments consumed while their datagram stayed incomplete")
      .sync(d.fragments_held);
  registry_
      .counter("scidive_distiller_datagrams_reassembled_total",
               "Fragmented datagrams successfully reassembled")
      .sync(d.datagrams_reassembled);
  const char* kHelp = "Footprints distilled, by protocol";
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "sip"}})
      .sync(d.sip_footprints);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "rtp"}})
      .sync(d.rtp_footprints + bypassed_total_);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "rtcp"}})
      .sync(d.rtcp_footprints);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "acc"}})
      .sync(d.acc_footprints);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "h225"}})
      .sync(d.h225_footprints);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "ras"}})
      .sync(d.ras_footprints);
  registry_.counter("scidive_distiller_footprints_total", kHelp, {{"protocol", "unknown"}})
      .sync(d.unknown_footprints);
  // Parse failures by (proto, reason). Cells are registered lazily on first
  // non-zero count: clean traffic adds no instruments (and no exposition
  // lines), while a registered cell persists at its monotone value — the
  // registry dedupes, so re-registration returns the same counter.
  for (size_t p = 0; p < kParseProtoCount; ++p) {
    for (size_t r = 0; r < kParseReasonCount; ++r) {
      const uint64_t n = d.parse_errors.counts[p][r];
      if (n == 0) continue;
      registry_
          .counter("scidive_parse_errors_total",
                   "Malformed input rejected by a parser, by protocol and reason",
                   {{"proto", std::string(parse_proto_name(static_cast<ParseProto>(p)))},
                    {"reason", errc_name(static_cast<Errc>(r))}})
          .sync(n);
    }
  }

  const TrailManagerStats& t = trails_.stats();
  registry_
      .counter("scidive_trail_footprints_routed_total", "Footprints routed into trails")
      .sync(t.footprints_routed + bypassed_total_);
  registry_.counter("scidive_trail_sessions_created_total", "Sessions the trail manager created")
      .sync(t.sessions_created);
  registry_
      .counter("scidive_trail_rtp_bound_total",
               "RTP footprints bound to a session via SDP-learned endpoints")
      .sync(t.rtp_bound_to_session + bypassed_bound_);
  registry_
      .counter("scidive_trail_rtp_unbound_total",
               "RTP footprints that fell back to a synthetic flow session")
      .sync(t.rtp_unbound + bypassed_unbound_);
  registry_
      .counter("scidive_trail_flow_cache_hits_total",
               "Media packets routed through the flow cache without classify")
      .sync(t.flow_cache_hits + bypassed_total_);
  registry_.counter("scidive_trails_expired_total", "Trails dropped by idle expiry")
      .sync(t.trails_expired);
  registry_.gauge("scidive_trails_active", "Live trails (per-session, per-protocol)")
      .set(static_cast<int64_t>(trails_.trail_count()));
  registry_.gauge("scidive_sessions_active", "Live sessions with at least one trail")
      .set(static_cast<int64_t>(trails_.session_count()));
  registry_.gauge("scidive_media_bindings", "SDP-learned media endpoint bindings")
      .set(static_cast<int64_t>(trails_.media_binding_count()));
  registry_
      .gauge("scidive_interned_symbols", "Distinct session ids interned by the trail manager")
      .set(static_cast<int64_t>(trails_.symbols().size()));
  registry_
      .gauge("scidive_interner_bytes", "Heap bytes held by the session-id interner")
      .set(static_cast<int64_t>(trails_.symbols().bytes()));
  registry_
      .gauge("scidive_session_arena_bytes",
             "Heap bytes reserved across all per-session trail arenas")
      .set(static_cast<int64_t>(trails_.arena_bytes_reserved()));

  const EventGeneratorStats& e = events_.stats();
  registry_
      .counter("scidive_eventgen_footprints_total", "Footprints the event generator processed")
      .sync(e.footprints_processed + bypassed_total_);
  registry_
      .counter("scidive_monitors_started_total",
               "Post-BYE/re-INVITE/RTCP-BYE media monitors armed")
      .sync(e.monitors_started);
  registry_.counter("scidive_monitors_fired_total", "Media monitors that caught orphan media")
      .sync(e.monitors_fired);
  registry_.counter("scidive_monitors_expired_total", "Media monitors that expired quietly")
      .sync(e.monitors_expired);
  registry_
      .counter("scidive_eventgen_sessions_expired_total",
               "Event-generator session states dropped by idle expiry")
      .sync(e.sessions_expired);
  registry_.gauge("scidive_tracked_sessions", "Sessions with live event-generator state")
      .set(static_cast<int64_t>(events_.tracked_sessions()));

  for (size_t i = 0; i < rules_.size(); ++i) {
    rule_inst_[i].state_entries->set(static_cast<int64_t>(rules_[i]->state_entries()));
  }

  if (config_.fastpath.enabled) {
    const uint64_t hits = fastpath_hits_->value();
    const uint64_t seen = hits + fastpath_misses_->value();
    registry_
        .gauge("scidive_fastpath_hit_rate_permille",
               "Fast-path hits per thousand inspected packets since start")
        .set(seen == 0 ? 0 : static_cast<int64_t>(hits * 1000 / seen));
    registry_.gauge("scidive_fastpath_flows", "Live established-flow cache entries")
        .set(static_cast<int64_t>(fastpath_.size()));
  }

  alerts_total_->sync(sink_.total_raised());
  alerts_dropped_->sync(sink_.dropped());
  alerts_retained_->set(static_cast<int64_t>(sink_.count()));
  ledger_recorded_->sync(ledger_.total_recorded());
  ledger_dropped_->sync(ledger_.dropped());
  ledger_size_->set(static_cast<int64_t>(ledger_.size()));

  // Prevention-layer mirrors, registered only when enforcement is on so
  // detection-only expositions stay byte-identical to the pre-verdict
  // engine.
  if (enforcer_ != nullptr) {
    registry_
        .counter("scidive_verdicts_raised_total",
                 "Verdicts emitted by rules (including retention drops)")
        .sync(verdicts_.total_raised());
    registry_
        .counter("scidive_verdicts_dropped_total",
                 "Verdicts dropped from sink retention (capacity bound)")
        .sync(verdicts_.dropped());
    registry_.gauge("scidive_verdicts_retained", "Verdicts currently held by the sink")
        .set(static_cast<int64_t>(verdicts_.count()));

    const BlockList& bl = enforcer_->blocks();
    registry_.gauge("scidive_blocklist_entries", "Live (unexpired) block-list entries")
        .set(static_cast<int64_t>(bl.size()));
    registry_.counter("scidive_blocklist_installed_total", "Block-list entries installed")
        .sync(bl.installed_total());
    registry_.counter("scidive_blocklist_expired_total", "Block-list entries TTL-expired")
        .sync(bl.expired_total());
    registry_
        .counter("scidive_blocklist_rejected_total",
                 "Blocks rejected at the capacity bound")
        .sync(bl.rejected_total());

    const RateLimiter& rl = enforcer_->limiter();
    registry_.gauge("scidive_ratelimit_buckets", "Armed token buckets")
        .set(static_cast<int64_t>(rl.size()));
    registry_
        .gauge("scidive_ratelimit_tokens",
               "Whole tokens available across buckets (as of last refill)")
        .set(rl.stored_tokens());
    registry_.counter("scidive_ratelimit_armed_total", "Token buckets armed by verdicts")
        .sync(rl.armed_total());
    registry_
        .counter("scidive_ratelimit_denied_total",
                 "Admissions denied by an empty bucket")
        .sync(rl.denied_total());
    registry_
        .counter("scidive_ratelimit_rejected_total",
                 "Bucket arms rejected at the capacity bound")
        .sync(rl.rejected_total());
  }
}

obs::Snapshot ScidiveEngine::metrics_snapshot() {
  sync_component_stats();
  return registry_.snapshot();
}

void ScidiveEngine::expire_idle(SimTime cutoff) {
  // Bypassed activity must count toward idleness before the scan, or a
  // flow that went quiet *after* heavy bypass looks older than it is.
  fastpath_flush();
  trails_.expire_idle(cutoff);
  events_.expire_idle(cutoff);
}

ScidiveEngine::SessionTransfer ScidiveEngine::extract_session(const SessionId& session) {
  // A rebalance migration must ship fully written-back state: hand every
  // cached flow's microstate to its trail/session before packing.
  fastpath_flush();
  SessionTransfer out;
  out.trails = trails_.extract_session(session);
  if (!out.trails.valid()) return out;
  out.id = session;
  out.valid = true;
  out.events = events_.extract_session(session);
  for (const RulePtr& rule : rules_) {
    if (auto state = rule->extract_session(session)) {
      out.rule_states.emplace_back(std::string(rule->name()), std::move(state));
    }
  }
  return out;
}

void ScidiveEngine::install_session(SessionTransfer&& transfer) {
  if (!transfer.valid) return;
  fastpath_flush();
  trails_.install_session(std::move(transfer.trails));
  if (transfer.events) events_.install_session(transfer.id, std::move(*transfer.events));
  for (auto& [rule_name, state] : transfer.rule_states) {
    for (const RulePtr& rule : rules_) {
      if (rule->name() == rule_name) {
        rule->install_session(transfer.id, std::move(state));
        break;
      }
    }
  }
}

}  // namespace scidive::core
