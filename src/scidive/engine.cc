#include "scidive/engine.h"

#include "pkt/ipv4.h"

namespace scidive::core {

ScidiveEngine::ScidiveEngine(EngineConfig config)
    : config_(std::move(config)),
      distiller_(config_.distiller),
      trails_(config_.max_footprints_per_trail),
      events_(trails_, config_.events),
      rules_(make_default_ruleset(config_.rules)) {
  // A packet rarely yields more than a handful of events; reserving once
  // keeps the per-packet clear()/push_back cycle allocation-free.
  scratch_events_.reserve(16);
}

void ScidiveEngine::on_packet(const pkt::Packet& packet) {
  ++stats_.packets_seen;

  if (!config_.home_addresses.empty()) {
    // Cheap pre-filter on the (unverified) IP header so the endpoint IDS
    // ignores traffic that is not the monitored client's.
    auto ip = pkt::parse_ipv4(packet.data);
    bool ours = false;
    if (ip.ok()) {
      ours = config_.home_addresses.contains(ip.value().header.src) ||
             config_.home_addresses.contains(ip.value().header.dst);
    }
    if (!ours) {
      ++stats_.packets_filtered;
      return;
    }
  }
  ++stats_.packets_inspected;

  auto started = std::chrono::steady_clock::now();
  auto fp = distiller_.distill(packet);
  if (fp) {
    Trail& trail = trails_.add(std::move(*fp));
    scratch_events_.clear();
    events_.process(trail.back(), trail, scratch_events_);
    stats_.events += scratch_events_.size();
    RuleContext ctx(trails_, sink_);
    for (const Event& event : scratch_events_) {
      if (event_callback_) event_callback_(event);
      for (auto& rule : rules_) rule->on_event(event, ctx);
    }
    stats_.alerts = sink_.count();
  }
  stats_.processing_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           started)
          .count());
}

void ScidiveEngine::expire_idle(SimTime cutoff) {
  trails_.expire_idle(cutoff);
  events_.expire_idle(cutoff);
}

}  // namespace scidive::core
