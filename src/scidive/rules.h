// The rule library: every detection rule discussed in the paper.
//
//   Rule                 Paper §   Cross-protocol?        Stateful?
//   BYE attack           4.2.1     SIP + RTP              session teardown state
//   Fake IM              4.2.2     SIP + IP               per-sender source history
//   Call hijacking       4.2.3     SIP + RTP              session media state
//   RTP attack           4.2.4     RTP + IP               consecutive-seq state
//   Billing fraud        3.2       SIP + ACC + RTP        3-event evidence set
//   REGISTER flood DoS   3.3       SIP                    per-session 401 cycles
//   Password guessing    3.3       SIP                    distinct failed digests
//   Stateless 4xx        5 (Snort) SIP only               none (baseline strawman)
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "common/flat_map.h"
#include "common/symbol.h"
#include "scidive/rule.h"

namespace scidive::core {

/// Tunables for the rule library (defaults follow the paper where it gives
/// numbers: seq-jump bound 100; others chosen and documented in DESIGN.md).
struct RulesConfig {
  /// Fake IM: source-IP changes for one AOR closer together than this are
  /// implausible mobility ("allows for changes in the IP address according
  /// to the maximum rate of user motion", §4.2.2).
  SimDuration im_mobility_interval = sec(60);
  /// Fake IM: a REGISTER from the new address within this window legitimizes
  /// the source change regardless of the mobility rate.
  SimDuration im_registration_window = sec(120);
  /// Billing fraud: how many of the three §3.2 conditions must be violated.
  int billing_min_evidence = 2;
  /// DoS: unauthenticated-REGISTER/401 cycles within the window that flag a
  /// flood.
  int flood_threshold = 5;
  SimDuration flood_window = sec(10);
  /// Password guessing: distinct wrong digest responses within the window.
  int guess_threshold = 3;
  SimDuration guess_window = sec(30);
  /// Strawman stateless rule: any 4xx count in window (across sessions!).
  int stateless_4xx_threshold = 5;
  SimDuration stateless_4xx_window = sec(10);
  /// SPIT graylisting: this many call attempts by one caller AOR within the
  /// window flag the caller (alert + rate_limit verdict). A legitimate user
  /// places a handful of calls a minute; a SPIT bot places dozens.
  int spit_call_threshold = 8;
  SimDuration spit_window = sec(60);
  /// Install the SPIT graylisting rule. Off by default so the default
  /// detection ruleset — and every golden pinned against it — is unchanged;
  /// prevention deployments (and make_prevention_ruleset) turn it on.
  bool spit_graylist = false;
};

/// §4.2.1 — "No RTP traffic should be seen after a SIP BYE from a
/// particular user agent."
class ByeAttackRule : public Rule {
 public:
  std::string_view name() const override { return "bye-attack"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  EventTypeMask subscriptions() const override { return event_mask(EventType::kRtpAfterBye); }
};

/// §4.2.3 — same orphan-flow logic keyed to re-INVITE.
class CallHijackRule : public Rule {
 public:
  std::string_view name() const override { return "call-hijack"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kRtpAfterReinvite);
  }
};

/// §4.2.2 — messages claiming one user must keep a stable source IP within
/// a mobility-bounded period. "The rule takes rate of user mobility into
/// account": a source change is also accepted immediately when the claimed
/// user recently (re-)REGISTERed from the new address — the registrar
/// update is the paper's signal of legitimate movement.
class FakeImRule : public Rule {
 public:
  explicit FakeImRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "fake-im"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return senders_.size() + registrations_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSipRegisterSeen, EventType::kImMessageSeen);
  }

 private:
  struct SenderHistory {
    pkt::Endpoint last_source;
    SimTime last_seen = 0;
    SimTime last_change = 0;
  };
  struct Registration {
    pkt::Ipv4Address addr;
    SimTime at = 0;
  };
  RulesConfig config_;
  /// Each stateful rule interns its own keys (AORs here): events are rare
  /// relative to packets, and keeping the interner rule-local means hand-
  /// constructed Events in tests need no shared table.
  SymbolTable aors_;
  FlatMap<Symbol, SenderHistory> senders_;        // by claimed AOR
  FlatMap<Symbol, Registration> registrations_;   // last observed REGISTER
};

/// §4.2.4 — "Check if RTP packets come from legitimate IP address and if
/// the sequence number increases appropriately."
class RtpAttackRule : public Rule {
 public:
  std::string_view name() const override { return "rtp-attack"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kRtpSeqJump, EventType::kRtpUnexpectedSource,
                      EventType::kNonRtpOnMediaPort);
  }
};

/// §3.2 — the three-event cross-protocol billing-fraud rule. Alerts once
/// per session when enough independent conditions are violated.
class BillingFraudRule : public Rule {
 public:
  explicit BillingFraudRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "billing-fraud"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return evidence_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSipMalformed, EventType::kAccUnmatched,
                      EventType::kAccBilledPartyAbsent, EventType::kRtpUnexpectedSource);
  }
  std::unique_ptr<SessionState> extract_session(const SessionId& session) override;
  void install_session(const SessionId& session, std::unique_ptr<SessionState> state) override;

 private:
  /// Evidence per session, packed: one bit per EventType (the enum has far
  /// fewer than 32 values). popcount = distinct-condition count; iterating
  /// ascending bits reproduces the old std::set<EventType> alert-message
  /// order exactly.
  struct Evidence {
    uint32_t mask = 0;
    bool alerted = false;
  };
  RulesConfig config_;
  SymbolTable sessions_interned_;
  FlatMap<Symbol, Evidence> evidence_;
};

/// §3.3 — "DoS via repeated SIP requests": alternating unauthenticated
/// REGISTERs and 401s within one session.
class RegisterFloodRule : public Rule {
 public:
  explicit RegisterFloodRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "register-flood"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return sessions_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSipRegisterSeen, EventType::kSipAuthChallenge);
  }
  std::unique_ptr<SessionState> extract_session(const SessionId& session) override;
  void install_session(const SessionId& session, std::unique_ptr<SessionState> state) override;

 private:
  struct SessionAuthState {
    bool last_register_had_auth = false;
    std::deque<SimTime> unauth_challenges;
    SimTime last_alert = -1;
  };
  RulesConfig config_;
  SymbolTable sessions_interned_;
  FlatMap<Symbol, SessionAuthState> sessions_;
};

/// §3.3 — "Password guessing": continuous SIP requests with *different*
/// challenge responses, each answered 401.
class PasswordGuessRule : public Rule {
 public:
  explicit PasswordGuessRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "password-guess"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return sessions_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSipAuthFailure);
  }
  std::unique_ptr<SessionState> extract_session(const SessionId& session) override;
  void install_session(const SessionId& session, std::unique_ptr<SessionState> state) override;

 private:
  struct GuessState {
    std::set<std::string> distinct_responses;
    std::deque<SimTime> failure_times;
    bool alerted = false;
  };
  RulesConfig config_;
  SymbolTable sessions_interned_;
  FlatMap<Symbol, GuessState> sessions_;
};

/// The strawman the paper argues against (§3.3, §5): a session-unaware
/// "many 4xx responses" rule à la stock Snort. Included as the baseline
/// for the accuracy benchmarks.
class Stateless4xxRule : public Rule {
 public:
  explicit Stateless4xxRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "stateless-4xx"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return recent_4xx_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSip4xxSeen);
  }

 private:
  RulesConfig config_;
  std::deque<SimTime> recent_4xx_;  // across all sessions — deliberately
  SimTime last_alert = -1;
};

/// Extension (third cross-protocol chain, §3.1's SIP/RTP/RTCP example): an
/// RTCP BYE announces a stream's end; RTP from that stream continuing
/// afterwards means the RTCP BYE was forged (an RTCP-level teardown DoS
/// analogous to §4.2.1) or the media source is spoofed.
class RtcpByeRule : public Rule {
 public:
  std::string_view name() const override { return "rtcp-bye-attack"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kRtpAfterRtcpBye);
  }
};

/// Ablation twin of ByeAttackRule that forgoes the event abstraction: on
/// EVERY RTP packet (kRtpPacketSeen; requires
/// EventGeneratorConfig::emit_per_packet_events) it searches the session's
/// SIP trail for a BYE and the BYE sender's announced media endpoint — the
/// paper's "crude information directly from the Trails" path, kept here to
/// measure what the Event Generator saves ("this direct access is
/// inefficient compared to the rule matching using Events since it involves
/// searching for specific Footprints, possibly in multiple Trails", §3.1).
class DirectTrailScanByeRule : public Rule {
 public:
  explicit DirectTrailScanByeRule(SimDuration window = msec(200)) : window_(window) {}
  std::string_view name() const override { return "bye-attack-direct"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return alerted_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kRtpPacketSeen);
  }
  std::unique_ptr<SessionState> extract_session(const SessionId& session) override;
  void install_session(const SessionId& session, std::unique_ptr<SessionState> state) override;

 private:
  SimDuration window_;
  SymbolTable sessions_interned_;
  FlatSet<Symbol> alerted_;
};

/// SPIT defense (the "SPAM over Internet Telephony" motivation): count call
/// attempts per caller AOR in a fixed window; at the threshold, alert and
/// emit a rate_limit verdict graylisting the caller. Principal-keyed like
/// FakeImRule, so state never migrates between shards — sharded parity
/// instead requires routing initial INVITEs by caller
/// (ShardedEngineConfig::route_invite_by_caller).
class SpitGraylistRule : public Rule {
 public:
  explicit SpitGraylistRule(const RulesConfig& config) : config_(config) {}
  std::string_view name() const override { return "spit-graylist"; }
  void on_event(const Event& event, RuleContext& ctx) override;
  size_t state_entries() const override { return callers_.size(); }
  EventTypeMask subscriptions() const override {
    return event_mask(EventType::kSipInviteSeen);
  }

 private:
  /// Fixed (tumbling) window, not sliding: cheap, deterministic, and
  /// exactly expressible in the .sdr DSL twin (spit_graylist.sdr).
  struct CallerWindow {
    SimTime window_start = 0;
    int64_t attempts = 0;
    bool flagged = false;
  };
  RulesConfig config_;
  SymbolTable aors_;
  FlatMap<Symbol, CallerWindow> callers_;
};

/// The full SCIDIVE ruleset of the paper (without the strawman).
std::vector<RulePtr> make_default_ruleset(const RulesConfig& config = {});

/// The detection ruleset plus the verdict-emitting prevention rules
/// (currently SPIT graylisting) — the ruleset an inline deployment runs.
std::vector<RulePtr> make_prevention_ruleset(RulesConfig config = {});

}  // namespace scidive::core
