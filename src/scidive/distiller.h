// The Distiller (§3.1): "incoming network flows first pass through the
// Distiller, which translates packets into protocol dependent information
// units called Footprints. The Distiller is responsible for doing IP
// fragmentation, reassembly, decoding protocols, and finally generating the
// corresponding Footprints."
//
// Classification is defensive: the IDS sees raw bytes only, so the decoder
// is driven by port conventions with content-based verification, and
// arbitrary garbage degrades to UnknownFootprint instead of failing.
#pragma once

#include <optional>
#include <set>

#include "pkt/fragment.h"
#include "pkt/packet.h"
#include "scidive/footprint.h"
#include "sip/message.h"

namespace scidive::core {

struct DistillerConfig {
  /// UDP ports treated as SIP signaling (content-verified).
  std::set<uint16_t> sip_ports = {5060, 5061, 5062, 5064, 5070, 5080, 5081, 5082};
  /// UDP port of the accounting (ACC) protocol.
  uint16_t acc_port = 9009;
  /// Reassembly timeout for fragmented datagrams.
  SimDuration reassembly_timeout = sec(30);
};

/// Which wire protocol a parse failure was charged to. Unlike Protocol this
/// includes the carrier layers (IPv4/UDP), which fail before classification.
enum class ParseProto : uint8_t { kIpv4, kUdp, kSip, kRtp, kRtcp, kAcc, kH225, kRas };
constexpr size_t kParseProtoCount = 8;
std::string_view parse_proto_name(ParseProto p);

/// Errc values are dense (kOk..kState); used as the reason axis.
constexpr size_t kParseReasonCount = 8;

/// Parse failures on untrusted input, by (protocol, reason). Fixed cells:
/// recording is two array indexes, so the hot path stays allocation-free
/// even under a malformed-packet flood.
struct ParseErrorStats {
  uint64_t counts[kParseProtoCount][kParseReasonCount] = {};
  uint64_t total = 0;

  void record(ParseProto p, Errc reason) {
    ++counts[static_cast<size_t>(p)][static_cast<size_t>(reason)];
    ++total;
  }
  uint64_t count(ParseProto p, Errc reason) const {
    return counts[static_cast<size_t>(p)][static_cast<size_t>(reason)];
  }
};

struct DistillerStats {
  uint64_t packets_in = 0;
  uint64_t fragments_held = 0;     // fragment consumed, datagram incomplete
  uint64_t datagrams_reassembled = 0;  // fragmented datagrams completed
  uint64_t undecodable = 0;        // not even IPv4+UDP
  uint64_t footprints_out = 0;
  uint64_t sip_footprints = 0;
  uint64_t rtp_footprints = 0;
  uint64_t rtcp_footprints = 0;
  uint64_t acc_footprints = 0;
  uint64_t h225_footprints = 0;
  uint64_t ras_footprints = 0;
  uint64_t unknown_footprints = 0;
  ParseErrorStats parse_errors;
};

/// The header fields of an unambiguous RTP media packet, extracted without
/// building a Footprint. Input to the engine's established-flow fast path.
struct RtpPeek {
  pkt::Endpoint src;
  pkt::Endpoint dst;
  uint32_t ssrc = 0;
  uint16_t sequence = 0;
  uint32_t timestamp = 0;
  SimTime time = 0;
};

class Distiller {
 public:
  Distiller() : Distiller(DistillerConfig{}) {}
  explicit Distiller(DistillerConfig config);

  /// Distill one captured packet. Returns nothing for fragments that do not
  /// yet complete a datagram and for packets that are not IPv4/UDP at all.
  std::optional<Footprint> distill(const pkt::Packet& packet);

  /// Cheap, stateless header peek: succeeds exactly when distill() would
  /// classify this packet as RTP *and* no other classification was even
  /// attempted along the way — unfragmented, not on a signaling/accounting
  /// port, and on even (RTP-convention) ports so the speculative RTCP parse
  /// never runs. Records no stats and touches no reassembler state, so a
  /// packet that peeks but then takes the full pipeline is accounted once.
  std::optional<RtpPeek> peek_rtp(const pkt::Packet& packet) const;

  const DistillerStats& stats() const { return stats_; }

 private:
  Footprint decode(const pkt::UdpPacketView& udp, SimTime time, size_t wire_len);
  static SipFootprint decode_sip(const sip::SipMessage& msg);

  DistillerConfig config_;
  pkt::Ipv4Reassembler reassembler_;
  DistillerStats stats_;
};

}  // namespace scidive::core
