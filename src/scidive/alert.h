// Alerts — the Rule Matching Engine's verdicts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "scidive/trail.h"

namespace scidive::core {

enum class Severity { kInfo, kWarning, kCritical };

std::string_view severity_name(Severity s);

struct Alert {
  std::string rule;     // which rule fired
  Severity severity = Severity::kWarning;
  SessionId session;
  SimTime time = 0;
  std::string message;

  std::string to_string() const;
};

/// Collects alerts; an optional callback sees each one as it fires.
class AlertSink {
 public:
  using Callback = std::function<void(const Alert&)>;

  void raise(Alert alert) {
    if (callback_) callback_(alert);
    alerts_.push_back(std::move(alert));
  }

  void set_callback(Callback cb) { callback_ = std::move(cb); }

  const std::vector<Alert>& alerts() const { return alerts_; }
  size_t count() const { return alerts_.size(); }
  size_t count_for_rule(std::string_view rule) const {
    size_t n = 0;
    for (const auto& a : alerts_) {
      if (a.rule == rule) ++n;
    }
    return n;
  }
  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
  Callback callback_;
};

}  // namespace scidive::core
