// Alerts — the Rule Matching Engine's verdicts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "scidive/trail.h"

namespace scidive::core {

enum class Severity { kInfo, kWarning, kCritical };

constexpr std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

struct Alert {
  std::string rule;     // which rule fired
  Severity severity = Severity::kWarning;
  SessionId session;
  SimTime time = 0;
  std::string message;

  std::string to_string() const;
};

/// Collects alerts; an optional callback sees each one as it fires.
///
/// Storage is bounded: soak runs must not grow memory without limit, so
/// beyond `capacity` newly raised alerts are dropped from the retained
/// vector and counted in dropped(). The callback and total_raised() still
/// see every alert — only retention is capped, never notification.
class AlertSink {
 public:
  using Callback = std::function<void(const Alert&)>;

  static constexpr size_t kDefaultCapacity = 65536;

  explicit AlertSink(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void raise(Alert alert) {
    ++total_raised_;
    if (callback_) callback_(alert);
    if (alerts_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    alerts_.push_back(std::move(alert));
  }

  void set_callback(Callback cb) { callback_ = std::move(cb); }
  void set_capacity(size_t capacity) { capacity_ = capacity == 0 ? 1 : capacity; }

  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Retained alerts (≤ capacity). See total_raised() for the true count.
  size_t count() const { return alerts_.size(); }
  /// Every alert ever raised, including ones dropped from retention.
  uint64_t total_raised() const { return total_raised_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }
  size_t count_for_rule(std::string_view rule) const {
    size_t n = 0;
    for (const auto& a : alerts_) {
      if (a.rule == rule) ++n;
    }
    return n;
  }
  void clear() {
    alerts_.clear();
    total_raised_ = 0;
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<Alert> alerts_;
  uint64_t total_raised_ = 0;
  uint64_t dropped_ = 0;
  Callback callback_;
};

}  // namespace scidive::core
