#include "netsim/network.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "pkt/fragment.h"

namespace scidive::netsim {

void Network::attach(NetworkNode& node, LinkConfig link) {
  assert(find(node) == nullptr && "node already attached");
  attachments_.push_back(Attachment{&node, link});
}

void Network::detach(NetworkNode& node) {
  std::erase_if(attachments_, [&](const Attachment& a) { return a.node == &node; });
}

void Network::set_link(NetworkNode& node, LinkConfig link) {
  Attachment* a = find(node);
  assert(a != nullptr && "node not attached");
  a->link = link;
}

void Network::set_gateway(NetworkNode& node) {
  assert(find(node) != nullptr && "gateway must be attached");
  gateway_ = &node;
}

Network::Attachment* Network::find(NetworkNode& node) {
  for (auto& a : attachments_) {
    if (a.node == &node) return &a;
  }
  return nullptr;
}

void Network::send(NetworkNode& from, pkt::Packet packet) {
  Attachment* a = find(from);
  assert(a != nullptr && "sender not attached");
  transmit(a->link, a->burst_bad, std::move(packet));
}

void Network::inject(pkt::Packet packet, const LinkConfig& link) {
  transmit(link, inject_burst_bad_, std::move(packet));
}

void Network::transmit(const LinkConfig& uplink, bool& burst_bad, pkt::Packet packet) {
  ++stats_.packets_sent;

  // Fragment at the sender if the datagram exceeds the uplink MTU.
  std::vector<Bytes> wire_units;
  auto frags = pkt::fragment_ipv4(packet.data, uplink.mtu);
  if (frags.ok()) {
    wire_units = std::move(frags.value());
    if (wire_units.size() > 1) stats_.fragments_created += wire_units.size() - 1;
  } else {
    // Unfragmentable (DF set / malformed): carry as-is; receivers will
    // judge it. A real hub forwards bytes it cannot interpret.
    wire_units.push_back(std::move(packet.data));
  }

  const FaultConfig& faults = uplink.faults;
  for (auto& unit : wire_units) {
    // Uplink: sender -> hub.
    if (faults.burst_enter > 0) {
      // Gilbert-Elliott two-state chain, advanced once per wire unit.
      if (burst_bad) {
        if (rng_.chance(faults.burst_exit)) burst_bad = false;
      } else if (rng_.chance(faults.burst_enter)) {
        burst_bad = true;
      }
      if (burst_bad && rng_.chance(faults.burst_loss)) {
        ++stats_.packets_lost;
        ++stats_.packets_lost_burst;
        continue;
      }
    }
    // Loss draws are gated on a nonzero probability, like every other fault
    // knob: zero-probability configs must consume no RNG draws, so the
    // packet schedule of a fault-free run is independent of which fault
    // knobs *exist* (export determinism depends on this).
    if (uplink.loss > 0 && rng_.chance(uplink.loss)) {
      ++stats_.packets_lost;
      continue;
    }
    if (faults.corrupt > 0 && !unit.empty() && rng_.chance(faults.corrupt)) {
      // Damage the unit in place; checksums are left stale on purpose.
      size_t n = 1 + static_cast<size_t>(rng_.uniform_int(
                         0, static_cast<int64_t>(faults.corrupt_max_bytes) - 1));
      for (size_t i = 0; i < n; ++i) {
        size_t at = static_cast<size_t>(
            rng_.uniform_int(0, static_cast<int64_t>(unit.size()) - 1));
        unit[at] = static_cast<uint8_t>(rng_.next_u32());
      }
      ++stats_.packets_corrupted;
    }
    const int copies =
        (faults.duplicate > 0 && rng_.chance(faults.duplicate)) ? 2 : 1;
    if (copies == 2) ++stats_.packets_duplicated;
    for (int c = 0; c < copies; ++c) {
      SimDuration up_delay = uplink.delay.sample(rng_);
      if (faults.reorder > 0 && rng_.chance(faults.reorder)) {
        up_delay += faults.reorder_window;
        ++stats_.packets_reordered;
      }
      pkt::Packet on_wire;
      on_wire.data = (c + 1 < copies) ? unit : std::move(unit);
      sim_.after(up_delay, [this, on_wire = std::move(on_wire)]() mutable {
        on_wire.timestamp = sim_.now();
        deliver_fragment(std::move(on_wire));
      });
    }
  }
}

void Network::deliver_fragment(pkt::Packet fragment) {
  // The packet is now "on the hub": every tap sees it.
  for (auto& tap : taps_) tap(fragment);

  auto parsed = pkt::parse_ipv4(fragment.data);
  if (!parsed) return;  // unparseable bytes still reached the taps
  pkt::Ipv4Address dst = parsed.value().header.dst;

  bool delivered = false;
  for (auto& a : attachments_) {
    if (a.node->address() != dst) continue;
    // Downlink: hub -> receiver.
    if (a.link.loss > 0 && rng_.chance(a.link.loss)) {
      ++stats_.packets_lost;
      delivered = true;  // routable, just lost
      continue;
    }
    SimDuration down_delay = a.link.delay.sample(rng_);
    NetworkNode* node = a.node;
    pkt::Packet copy = fragment;
    sim_.after(down_delay, [this, node, copy = std::move(copy)]() mutable {
      copy.timestamp = sim_.now();
      ++stats_.packets_delivered;
      node->on_packet(copy);
    });
    delivered = true;
  }
  if (!delivered && gateway_ != nullptr && gateway_->address() != parsed.value().header.src) {
    // Off-segment destination: hand to the gateway (its own traffic is not
    // looped back to it).
    Attachment* gw = find(*gateway_);
    if (gw != nullptr) {
      if (gw->link.loss > 0 && rng_.chance(gw->link.loss)) {
        ++stats_.packets_lost;
        return;
      }
      SimDuration down_delay = gw->link.delay.sample(rng_);
      NetworkNode* node = gw->node;
      pkt::Packet copy = fragment;
      sim_.after(down_delay, [this, node, copy = std::move(copy)]() mutable {
        copy.timestamp = sim_.now();
        ++stats_.packets_delivered;
        node->on_packet(copy);
      });
      return;
    }
  }
  if (!delivered) {
    ++stats_.packets_unroutable;
    LOG_TRACE("netsim", "unroutable packet to %s", dst.to_string().c_str());
  }
}

}  // namespace scidive::netsim
