#include "netsim/network.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "pkt/fragment.h"

namespace scidive::netsim {

void Network::attach(NetworkNode& node, LinkConfig link) {
  assert(find(node) == nullptr && "node already attached");
  attachments_.push_back(Attachment{&node, link});
}

void Network::detach(NetworkNode& node) {
  std::erase_if(attachments_, [&](const Attachment& a) { return a.node == &node; });
}

void Network::set_link(NetworkNode& node, LinkConfig link) {
  Attachment* a = find(node);
  assert(a != nullptr && "node not attached");
  a->link = link;
}

void Network::set_gateway(NetworkNode& node) {
  assert(find(node) != nullptr && "gateway must be attached");
  gateway_ = &node;
}

Network::Attachment* Network::find(NetworkNode& node) {
  for (auto& a : attachments_) {
    if (a.node == &node) return &a;
  }
  return nullptr;
}

void Network::send(NetworkNode& from, pkt::Packet packet) {
  Attachment* a = find(from);
  assert(a != nullptr && "sender not attached");
  transmit(a, a->link, std::move(packet));
}

void Network::inject(pkt::Packet packet, const LinkConfig& link) {
  transmit(nullptr, link, std::move(packet));
}

void Network::transmit(const Attachment* from_attachment, const LinkConfig& uplink,
                       pkt::Packet packet) {
  ++stats_.packets_sent;

  // Fragment at the sender if the datagram exceeds the uplink MTU.
  std::vector<Bytes> wire_units;
  auto frags = pkt::fragment_ipv4(packet.data, uplink.mtu);
  if (frags.ok()) {
    wire_units = std::move(frags.value());
    if (wire_units.size() > 1) stats_.fragments_created += wire_units.size() - 1;
  } else {
    // Unfragmentable (DF set / malformed): carry as-is; receivers will
    // judge it. A real hub forwards bytes it cannot interpret.
    wire_units.push_back(std::move(packet.data));
  }
  (void)from_attachment;

  for (auto& unit : wire_units) {
    // Uplink: sender -> hub.
    if (rng_.chance(uplink.loss)) {
      ++stats_.packets_lost;
      continue;
    }
    SimDuration up_delay = uplink.delay.sample(rng_);
    pkt::Packet on_wire;
    on_wire.data = std::move(unit);
    sim_.after(up_delay, [this, on_wire = std::move(on_wire)]() mutable {
      on_wire.timestamp = sim_.now();
      deliver_fragment(std::move(on_wire));
    });
  }
}

void Network::deliver_fragment(pkt::Packet fragment) {
  // The packet is now "on the hub": every tap sees it.
  for (auto& tap : taps_) tap(fragment);

  auto parsed = pkt::parse_ipv4(fragment.data);
  if (!parsed) return;  // unparseable bytes still reached the taps
  pkt::Ipv4Address dst = parsed.value().header.dst;

  bool delivered = false;
  for (auto& a : attachments_) {
    if (a.node->address() != dst) continue;
    // Downlink: hub -> receiver.
    if (rng_.chance(a.link.loss)) {
      ++stats_.packets_lost;
      delivered = true;  // routable, just lost
      continue;
    }
    SimDuration down_delay = a.link.delay.sample(rng_);
    NetworkNode* node = a.node;
    pkt::Packet copy = fragment;
    sim_.after(down_delay, [this, node, copy = std::move(copy)]() mutable {
      copy.timestamp = sim_.now();
      ++stats_.packets_delivered;
      node->on_packet(copy);
    });
    delivered = true;
  }
  if (!delivered && gateway_ != nullptr && gateway_->address() != parsed.value().header.src) {
    // Off-segment destination: hand to the gateway (its own traffic is not
    // looped back to it).
    Attachment* gw = find(*gateway_);
    if (gw != nullptr) {
      if (rng_.chance(gw->link.loss)) {
        ++stats_.packets_lost;
        return;
      }
      SimDuration down_delay = gw->link.delay.sample(rng_);
      NetworkNode* node = gw->node;
      pkt::Packet copy = fragment;
      sim_.after(down_delay, [this, node, copy = std::move(copy)]() mutable {
        copy.timestamp = sim_.now();
        ++stats_.packets_delivered;
        node->on_packet(copy);
      });
      return;
    }
  }
  if (!delivered) {
    ++stats_.packets_unroutable;
    LOG_TRACE("netsim", "unroutable packet to %s", dst.to_string().c_str());
  }
}

}  // namespace scidive::netsim
