#include "netsim/router.h"

#include "common/logging.h"

namespace scidive::netsim {

void Router::add_interface(Network& network, pkt::Ipv4Address prefix, int prefix_bits) {
  uint32_t mask = prefix_bits == 0 ? 0 : ~uint32_t{0} << (32 - prefix_bits);
  interfaces_.push_back(Interface{&network, prefix.value() & mask, mask});
}

void Router::on_packet(const pkt::Packet& packet) {
  auto parsed = pkt::parse_ipv4(packet.data);
  if (!parsed) {
    ++stats_.undecodable;
    return;
  }
  const pkt::Ipv4Header& header = parsed.value().header;
  if (header.ttl <= 1) {
    ++stats_.ttl_expired;
    LOG_TRACE("router", "%s: TTL expired for %s", name_.c_str(),
              header.dst.to_string().c_str());
    return;
  }

  // Longest-prefix match across interfaces.
  const Interface* best = nullptr;
  uint32_t best_mask = 0;
  for (const Interface& iface : interfaces_) {
    if ((header.dst.value() & iface.mask) == iface.prefix &&
        (best == nullptr || iface.mask > best_mask)) {
      best = &iface;
      best_mask = iface.mask;
    }
  }
  if (best == nullptr) {
    ++stats_.no_route;
    return;
  }

  // Inline enforcement point: the filter sees only routable packets (an
  // undeliverable packet needs no verdict) and drops before delivery, so a
  // blocked source's traffic never reaches the far segment.
  if (filter_ && !filter_(packet)) {
    ++stats_.filtered;
    return;
  }

  // Rewrite TTL (checksum is recomputed by the serializer).
  pkt::Ipv4Header out_header = header;
  out_header.ttl = static_cast<uint8_t>(header.ttl - 1);
  pkt::Packet out;
  out.data = pkt::serialize_ipv4(out_header, parsed.value().payload);
  out.timestamp = packet.timestamp;
  ++stats_.forwarded;
  best->network->send(*this, std::move(out));
}

}  // namespace scidive::netsim
