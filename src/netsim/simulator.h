// Discrete-event simulator: a time-ordered queue of callbacks plus the
// simulated clock. Single-threaded and deterministic: ties are broken by
// insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace scidive::netsim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return clock_.now(); }
  const SimClock& clock() const { return clock_; }

  /// Schedule a callback at an absolute time (>= now).
  void at(SimTime t, Callback fn);
  /// Schedule a callback after a delay.
  void after(SimDuration d, Callback fn) { at(now() + d, std::move(fn)); }

  /// Run the earliest pending event. Returns false if the queue is empty.
  bool step();
  /// Run all events with time <= t, then advance the clock to t.
  void run_until(SimTime t);
  /// Run until the event queue drains.
  void run();

  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO among same-time events
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace scidive::netsim
