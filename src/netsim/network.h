// The simulated LAN of the paper's Figure 4: hosts attached to a broadcast
// Hub through Links with configurable delay distributions, loss and MTU.
// Promiscuous taps on the hub model the IDS's sniffing position.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "netsim/simulator.h"
#include "pkt/packet.h"

namespace scidive::netsim {

/// A node that can be attached to the network and receive packets.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  /// Called when a packet addressed to this node's IP arrives.
  virtual void on_packet(const pkt::Packet& packet) = 0;
  virtual pkt::Ipv4Address address() const = 0;
  virtual std::string name() const = 0;
};

/// A promiscuous observer: sees every packet that crosses the hub, at the
/// moment it reaches the hub, regardless of addressing. The IDS attaches
/// here. `const Packet&` only — taps cannot modify traffic.
using PacketTap = std::function<void(const pkt::Packet&)>;

/// Per-link fault-injection knobs (adversarial/impaired network conditions
/// beyond the paper's independent-loss model). All faults are applied on the
/// uplink (sender -> hub) per wire unit, after MTU fragmentation, and are
/// driven by the network's seeded Rng — identical seeds replay identical
/// fault sequences.
struct FaultConfig {
  /// Per-unit probability of on-the-wire corruption: 1..corrupt_max_bytes
  /// random bytes are overwritten with random values. Checksums are NOT
  /// recomputed — receivers and the IDS see genuinely damaged datagrams.
  double corrupt = 0.0;
  size_t corrupt_max_bytes = 4;
  /// Per-unit probability the unit is delivered twice (both copies sample
  /// their own delay, so duplicates may also arrive out of order).
  double duplicate = 0.0;
  /// Per-unit probability the unit is held back an extra reorder_window
  /// before entering the hub, letting later traffic overtake it.
  double reorder = 0.0;
  SimDuration reorder_window = msec(20);
  /// Gilbert-Elliott burst loss: per-unit chance of entering the bad state
  /// (burst_enter), of leaving it again (burst_exit), and the loss rate
  /// while inside it. burst_enter == 0 disables the model entirely.
  double burst_enter = 0.0;
  double burst_exit = 0.3;
  double burst_loss = 0.9;

  bool any() const {
    return corrupt > 0 || duplicate > 0 || reorder > 0 || burst_enter > 0;
  }
};

/// Per-attachment link properties (host <-> hub).
struct LinkConfig {
  DelayModel delay = DelayModel::fixed(msec(1));
  double loss = 0.0;   // independent per-packet loss probability
  size_t mtu = 1500;   // fragmentation threshold on transmit
  FaultConfig faults;  // adversarial impairment knobs (default: none)
};

struct NetworkStats {
  uint64_t packets_sent = 0;       // send() calls
  uint64_t fragments_created = 0;  // extra fragments due to MTU
  uint64_t packets_delivered = 0;  // handed to a destination node
  uint64_t packets_lost = 0;       // dropped by link loss (incl. burst loss)
  uint64_t packets_unroutable = 0; // no attached node had the dst address
  uint64_t packets_corrupted = 0;  // units damaged by FaultConfig::corrupt
  uint64_t packets_duplicated = 0; // extra copies injected by duplicate
  uint64_t packets_reordered = 0;  // units held back by reorder
  uint64_t packets_lost_burst = 0; // subset of packets_lost from burst state
};

/// Single-segment broadcast network ("the hub"). All attached nodes share
/// the medium; delivery delay from A to B is sample(A.link) + sample(B.link).
class Network {
 public:
  Network(Simulator& sim, uint64_t seed) : sim_(sim), rng_(seed) {}

  /// Attach a node. The node must outlive the network.
  void attach(NetworkNode& node, LinkConfig link);
  void detach(NetworkNode& node);

  /// Replace the link configuration of an attached node (e.g. to change
  /// delay distribution mid-experiment).
  void set_link(NetworkNode& node, LinkConfig link);

  /// Designate an attached node as this segment's gateway: packets whose
  /// destination matches no attached node are handed to it instead of being
  /// dropped (multi-segment topologies; see netsim::Router).
  void set_gateway(NetworkNode& node);

  /// Transmit a packet from `from`. Fragmentation (per the sender's MTU),
  /// loss and delays are applied; the packet is delivered to the node(s)
  /// whose address equals the IP destination, and to every tap.
  void send(NetworkNode& from, pkt::Packet packet);

  /// Inject a packet as if it appeared on the wire from a node with the
  /// packet's source address (used by attackers forging sources).
  void inject(pkt::Packet packet, const LinkConfig& link);

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }

  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }

 private:
  struct Attachment {
    NetworkNode* node;
    LinkConfig link;
    /// Gilbert-Elliott burst-loss state for this node's uplink.
    bool burst_bad = false;
  };

  void transmit(const LinkConfig& uplink, bool& burst_bad, pkt::Packet packet);
  void deliver_fragment(pkt::Packet fragment);

  Attachment* find(NetworkNode& node);

  Simulator& sim_;
  Rng rng_;
  std::vector<Attachment> attachments_;
  std::vector<PacketTap> taps_;
  NetworkNode* gateway_ = nullptr;
  NetworkStats stats_;
  /// Burst-loss state for inject()ed traffic (no attachment to hold it).
  bool inject_burst_bad_ = false;
};

}  // namespace scidive::netsim
