#include "netsim/host.h"

#include "common/logging.h"

namespace scidive::netsim {

void Host::send_udp(uint16_t src_port, pkt::Endpoint dst, std::span<const uint8_t> payload) {
  pkt::Packet p =
      pkt::make_udp_packet({addr_, src_port}, dst, payload, next_ip_id_++);
  network_.send(*this, std::move(p));
}

void Host::on_packet(const pkt::Packet& packet) {
  // Kernel-style receive path: reassemble fragments, then demultiplex by
  // protocol and destination port.
  auto whole = reassembler_.push(packet.data, packet.timestamp);
  if (!whole) return;  // incomplete fragment or garbage

  auto udp = pkt::parse_udp_packet(whole.value());
  if (!udp) {
    LOG_TRACE("host", "%s: non-UDP or bad packet dropped (%s)", name_.c_str(),
              udp.error().to_string().c_str());
    return;
  }
  ++udp_received_;
  auto it = udp_handlers_.find(udp.value().dst_port);
  if (it == udp_handlers_.end()) {
    ++udp_dropped_no_handler_;
    return;
  }
  it->second(udp.value().source(), udp.value().payload, packet.timestamp);
}

}  // namespace scidive::netsim
