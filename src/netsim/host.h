// Host: a network node with an OS-like UDP socket interface. Applications
// (SIP UAs, the proxy, accounting, attackers) bind handlers to local ports
// and send datagrams; the host handles IP identification numbering, checksum
// construction and fragment reassembly, like a kernel would.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "netsim/network.h"
#include "pkt/fragment.h"
#include "pkt/packet.h"

namespace scidive::netsim {

class Host : public NetworkNode {
 public:
  /// Invoked with (source endpoint, payload bytes, arrival time).
  using UdpHandler =
      std::function<void(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now)>;

  Host(std::string name, pkt::Ipv4Address addr, Network& network)
      : name_(std::move(name)), addr_(addr), network_(network) {}

  // NetworkNode:
  void on_packet(const pkt::Packet& packet) override;
  pkt::Ipv4Address address() const override { return addr_; }
  std::string name() const override { return name_; }

  /// Bind a handler to a local UDP port. Replaces any previous handler.
  void bind_udp(uint16_t port, UdpHandler handler) { udp_handlers_[port] = std::move(handler); }
  void unbind_udp(uint16_t port) { udp_handlers_.erase(port); }

  /// Send a UDP datagram from a local port.
  void send_udp(uint16_t src_port, pkt::Endpoint dst, std::span<const uint8_t> payload);
  void send_udp(uint16_t src_port, pkt::Endpoint dst, const Bytes& payload) {
    send_udp(src_port, dst, std::span<const uint8_t>(payload));
  }
  void send_udp(uint16_t src_port, pkt::Endpoint dst, std::string_view payload) {
    send_udp(src_port, dst,
             std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(payload.data()),
                                      payload.size()));
  }

  /// Send a raw, caller-constructed IP packet (attackers use this to forge
  /// source addresses; normal applications never need it).
  void send_raw(pkt::Packet packet) { network_.send(*this, std::move(packet)); }

  /// Schedule a callback on the simulation clock.
  void after(SimDuration d, std::function<void()> fn) {
    network_.simulator().after(d, std::move(fn));
  }
  SimTime now() const { return network_.simulator().now(); }

  Network& network() { return network_; }

  uint64_t udp_received() const { return udp_received_; }
  uint64_t udp_dropped_no_handler() const { return udp_dropped_no_handler_; }

 private:
  std::string name_;
  pkt::Ipv4Address addr_;
  Network& network_;
  std::unordered_map<uint16_t, UdpHandler> udp_handlers_;
  pkt::Ipv4Reassembler reassembler_;
  uint16_t next_ip_id_ = 1;
  uint64_t udp_received_ = 0;
  uint64_t udp_dropped_no_handler_ = 0;
};

}  // namespace scidive::netsim
