// Router: joins two (or more) broadcast segments into a multi-domain
// topology (the paper's "distributed … typically under several different
// administrative domains", §1: a provider segment for the proxy and home
// segments for clients). Longest-prefix routing over /24-style prefixes,
// TTL decrement, and per-interface forwarding onto each segment's hub.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netsim/network.h"
#include "pkt/ipv4.h"

namespace scidive::netsim {

struct RouterStats {
  uint64_t forwarded = 0;
  uint64_t ttl_expired = 0;
  uint64_t no_route = 0;
  uint64_t undecodable = 0;
  uint64_t filtered = 0;  // dropped by the inline packet filter
};

/// Inline enforcement hook (SCIDIVE prevention mode): consulted before a
/// packet is forwarded. Return false to drop it — counted in
/// RouterStats::filtered, never silently. The router stays ignorant of who
/// decides (the IDS engine's standing block list, in practice): dependency
/// points outward only, netsim never links the detection core.
using PacketFilter = std::function<bool(const pkt::Packet&)>;

class Router : public NetworkNode {
 public:
  Router(std::string name, pkt::Ipv4Address address) : name_(std::move(name)), addr_(address) {}

  /// Attach an interface: packets matching `prefix`/`prefix_bits` leave
  /// through `network`. The router must also be attached to that network
  /// (and usually set as its gateway).
  void add_interface(Network& network, pkt::Ipv4Address prefix, int prefix_bits);

  // NetworkNode:
  void on_packet(const pkt::Packet& packet) override;
  pkt::Ipv4Address address() const override { return addr_; }
  std::string name() const override { return name_; }

  const RouterStats& stats() const { return stats_; }

  /// Install (or clear, with nullptr) the inline packet filter.
  void set_filter(PacketFilter filter) { filter_ = std::move(filter); }

 private:
  struct Interface {
    Network* network;
    uint32_t prefix;
    uint32_t mask;
  };

  std::string name_;
  pkt::Ipv4Address addr_;
  std::vector<Interface> interfaces_;
  PacketFilter filter_;
  RouterStats stats_;
};

}  // namespace scidive::netsim
