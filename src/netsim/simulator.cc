#include "netsim/simulator.h"

#include <cassert>

namespace scidive::netsim {

void Simulator::at(SimTime t, Callback fn) {
  assert(t >= now());
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out so the callback
  // can schedule further events (including at the same time) safely.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  clock_.advance_to(ev.time);
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  clock_.advance_to(t);
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace scidive::netsim
