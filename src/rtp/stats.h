// Per-stream RTP reception statistics per RFC 3550 Appendix A.8: extended
// highest sequence (with wraparound cycles), cumulative loss and interarrival
// jitter. Feeds both the endpoints' RTCP reports and the IDS's RtpJitter
// event generation.
#pragma once

#include <cstdint>
#include <optional>

#include "common/clock.h"

namespace scidive::rtp {

class RtpStreamStats {
 public:
  /// clock_rate in Hz (8000 for G.711).
  explicit RtpStreamStats(uint32_t clock_rate = 8000) : clock_rate_(clock_rate) {}

  /// Record a received packet. arrival is wall (sim) time; rtp_timestamp is
  /// the packet's media clock timestamp.
  void on_packet(uint16_t sequence, uint32_t rtp_timestamp, SimTime arrival);

  uint64_t packets_received() const { return received_; }
  /// Extended sequence number (cycles << 16 | highest seq).
  uint32_t extended_highest_seq() const;
  /// expected - received, clamped at 0 (duplicates can make it negative).
  int64_t cumulative_lost() const;
  /// RFC 3550 interarrival jitter estimate, in timestamp units.
  double jitter() const { return jitter_; }
  /// Jitter converted to milliseconds of media clock.
  double jitter_ms() const { return jitter_ / (static_cast<double>(clock_rate_) / 1000.0); }

  /// Largest forward jump between consecutive arriving packets seen so far
  /// (the paper's RTP attack signature: |gap| > 100).
  int32_t max_seq_jump() const { return max_seq_jump_; }

  bool started() const { return received_ > 0; }

 private:
  uint32_t clock_rate_;
  uint64_t received_ = 0;
  std::optional<uint16_t> base_seq_;
  uint16_t max_seq_ = 0;
  uint32_t cycles_ = 0;
  double jitter_ = 0;
  std::optional<int64_t> last_transit_;  // arrival(ts units) - rtp_timestamp
  std::optional<uint16_t> last_seq_;
  int32_t max_seq_jump_ = 0;
};

}  // namespace scidive::rtp
