#include "rtp/rtp.h"

namespace scidive::rtp {

Result<RtpView> parse_rtp(std::span<const uint8_t> data) {
  if (data.size() < kRtpMinHeaderLen) return Error{Errc::kTruncated, "rtp header"};
  uint8_t b0 = data[0];
  uint8_t version = b0 >> 6;
  if (version != 2) return Error{Errc::kUnsupported, "rtp version != 2"};
  bool padding = b0 & 0x20;
  bool extension = b0 & 0x10;
  uint8_t cc = b0 & 0x0f;

  RtpView v;
  uint8_t b1 = data[1];
  v.header.marker = b1 & 0x80;
  v.header.payload_type = b1 & 0x7f;

  BufReader r(data.subspan(2));
  v.header.sequence = r.u16().value();
  v.header.timestamp = r.u32().value();
  v.header.ssrc = r.u32().value();

  size_t offset = kRtpMinHeaderLen + static_cast<size_t>(cc) * 4;
  if (data.size() < offset) return Error{Errc::kTruncated, "rtp csrc list"};
  for (uint8_t i = 0; i < cc; ++i) {
    v.header.csrc.push_back(r.u32().value());
  }

  if (extension) {
    if (data.size() < offset + 4) return Error{Errc::kTruncated, "rtp extension header"};
    uint16_t ext_words = static_cast<uint16_t>(data[offset + 2] << 8 | data[offset + 3]);
    offset += 4 + static_cast<size_t>(ext_words) * 4;
    if (data.size() < offset) return Error{Errc::kTruncated, "rtp extension body"};
  }

  size_t end = data.size();
  if (padding) {
    if (end <= offset) return Error{Errc::kMalformed, "rtp padding without payload"};
    uint8_t pad_len = data[end - 1];
    if (pad_len == 0 || offset + pad_len > end)
      return Error{Errc::kMalformed, "rtp bad padding length"};
    end -= pad_len;
  }
  v.payload = data.subspan(offset, end - offset);
  return v;
}

Bytes serialize_rtp(const RtpHeader& header, std::span<const uint8_t> payload) {
  BufWriter w(kRtpMinHeaderLen + header.csrc.size() * 4 + payload.size());
  w.u8(static_cast<uint8_t>(0x80 | (header.csrc.size() & 0x0f)));  // V=2, no P/X
  w.u8(static_cast<uint8_t>((header.marker ? 0x80 : 0) | (header.payload_type & 0x7f)));
  w.u16(header.sequence);
  w.u32(header.timestamp);
  w.u32(header.ssrc);
  for (uint32_t c : header.csrc) w.u32(c);
  w.bytes(payload);
  return std::move(w).take();
}

}  // namespace scidive::rtp
