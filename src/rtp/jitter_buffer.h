// Playout jitter buffer model. Reproduces the client behaviours the paper
// observed under the RTP garbage attack (§4.2.4): packets with wildly
// forward sequence numbers take over the playout point, causing queued
// legitimate audio to be discarded (intermittent audio, Windows Messenger
// style) or crashing a fragile implementation outright (X-Lite style).
#pragma once

#include <cstdint>
#include <map>

#include "common/clock.h"
#include "rtp/rtp.h"

namespace scidive::rtp {

/// How an implementation reacts to a buffer takeover by garbage.
enum class CorruptionBehavior {
  kCrash,   // X-Lite: client dies on the first takeover
  kGlitch,  // Windows Messenger: audio gap, then resync
  kRobust,  // well-written client: ignores implausible jumps
};

class JitterBuffer {
 public:
  struct Config {
    size_t capacity = 16;            // packets held before playout
    int32_t takeover_threshold = 100;  // forward jump that resets playout
    CorruptionBehavior behavior = CorruptionBehavior::kGlitch;
  };

  JitterBuffer() = default;
  explicit JitterBuffer(Config config) : config_(config) {}

  /// Offer a received packet. Returns false if the client has crashed.
  bool push(const RtpHeader& header, SimTime now);

  /// Pop the next packet for playout, in sequence order, if any.
  bool pop_for_playout(RtpHeader* out);

  bool crashed() const { return crashed_; }
  uint64_t pushed() const { return pushed_; }
  uint64_t played() const { return played_; }
  uint64_t discarded_late() const { return discarded_late_; }
  uint64_t glitches() const { return glitches_; }

 private:
  Config config_;
  std::map<uint16_t, RtpHeader> buffer_;  // seq -> packet (bounded by capacity)
  bool have_playout_point_ = false;
  uint16_t next_play_seq_ = 0;
  bool crashed_ = false;
  uint64_t pushed_ = 0;
  uint64_t played_ = 0;
  uint64_t discarded_late_ = 0;
  uint64_t glitches_ = 0;
};

}  // namespace scidive::rtp
