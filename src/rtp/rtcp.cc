#include "rtp/rtcp.h"

namespace scidive::rtp {
namespace {

Result<RtcpReportBlock> parse_report_block(BufReader& r) {
  RtcpReportBlock b;
  auto ssrc = r.u32();
  if (!ssrc) return ssrc.error();
  b.ssrc = ssrc.value();
  auto word = r.u32();
  if (!word) return word.error();
  b.fraction_lost = static_cast<uint8_t>(word.value() >> 24);
  b.cumulative_lost = word.value() & 0xffffff;
  auto seq = r.u32();
  if (!seq) return seq.error();
  b.highest_seq = seq.value();
  auto jitter = r.u32();
  if (!jitter) return jitter.error();
  b.jitter = jitter.value();
  // last SR / delay-since-last-SR: carried but unused here.
  if (!r.skip(8).ok()) return Error{Errc::kTruncated, "report block lsr"};
  return b;
}

void write_report_block(BufWriter& w, const RtcpReportBlock& b) {
  w.u32(b.ssrc);
  w.u32(static_cast<uint32_t>(b.fraction_lost) << 24 | (b.cumulative_lost & 0xffffff));
  w.u32(b.highest_seq);
  w.u32(b.jitter);
  w.u32(0);  // LSR
  w.u32(0);  // DLSR
}

void write_header(BufWriter& w, RtcpType type, uint8_t count, uint16_t length_words) {
  w.u8(static_cast<uint8_t>(0x80 | (count & 0x1f)));  // V=2
  w.u8(static_cast<uint8_t>(type));
  w.u16(length_words);
}

}  // namespace

Result<RtcpPacket> parse_rtcp(std::span<const uint8_t> data) {
  if (data.size() < 4) return Error{Errc::kTruncated, "rtcp header"};
  uint8_t b0 = data[0];
  if ((b0 >> 6) != 2) return Error{Errc::kUnsupported, "rtcp version != 2"};
  uint8_t count = b0 & 0x1f;
  uint8_t type = data[1];
  uint16_t length_words = static_cast<uint16_t>(data[2] << 8 | data[3]);
  size_t total = (static_cast<size_t>(length_words) + 1) * 4;
  if (data.size() < total) return Error{Errc::kTruncated, "rtcp body"};

  BufReader r(data.subspan(4, total - 4));
  RtcpPacket out;
  switch (static_cast<RtcpType>(type)) {
    case RtcpType::kSenderReport: {
      RtcpSenderReport sr;
      auto ssrc = r.u32();
      if (!ssrc) return ssrc.error();
      sr.ssrc = ssrc.value();
      auto ntp = r.u64();
      if (!ntp) return ntp.error();
      sr.ntp_timestamp = ntp.value();
      auto rtp_ts = r.u32();
      if (!rtp_ts) return rtp_ts.error();
      sr.rtp_timestamp = rtp_ts.value();
      auto pc = r.u32();
      if (!pc) return pc.error();
      sr.packet_count = pc.value();
      auto oc = r.u32();
      if (!oc) return oc.error();
      sr.octet_count = oc.value();
      for (uint8_t i = 0; i < count; ++i) {
        auto b = parse_report_block(r);
        if (!b) return b.error();
        sr.reports.push_back(b.value());
      }
      out.sr = std::move(sr);
      return out;
    }
    case RtcpType::kReceiverReport: {
      RtcpReceiverReport rr;
      auto ssrc = r.u32();
      if (!ssrc) return ssrc.error();
      rr.ssrc = ssrc.value();
      for (uint8_t i = 0; i < count; ++i) {
        auto b = parse_report_block(r);
        if (!b) return b.error();
        rr.reports.push_back(b.value());
      }
      out.rr = std::move(rr);
      return out;
    }
    case RtcpType::kBye: {
      RtcpBye bye;
      for (uint8_t i = 0; i < count; ++i) {
        auto ssrc = r.u32();
        if (!ssrc) return ssrc.error();
        bye.ssrcs.push_back(ssrc.value());
      }
      if (!r.empty()) {
        auto len = r.u8();
        if (len.ok() && r.remaining() >= len.value()) {
          auto reason = r.copy(len.value());
          bye.reason = to_string_view_copy(reason.value());
        }
      }
      out.bye = std::move(bye);
      return out;
    }
    default:
      return Error{Errc::kUnsupported, "rtcp packet type"};
  }
}

Bytes serialize_rtcp(const RtcpSenderReport& sr) {
  BufWriter w;
  uint16_t words = static_cast<uint16_t>((24 + sr.reports.size() * 24) / 4);
  write_header(w, RtcpType::kSenderReport, static_cast<uint8_t>(sr.reports.size()), words);
  w.u32(sr.ssrc);
  w.u64(sr.ntp_timestamp);
  w.u32(sr.rtp_timestamp);
  w.u32(sr.packet_count);
  w.u32(sr.octet_count);
  for (const auto& b : sr.reports) write_report_block(w, b);
  return std::move(w).take();
}

Bytes serialize_rtcp(const RtcpReceiverReport& rr) {
  BufWriter w;
  uint16_t words = static_cast<uint16_t>((4 + rr.reports.size() * 24) / 4);
  write_header(w, RtcpType::kReceiverReport, static_cast<uint8_t>(rr.reports.size()), words);
  w.u32(rr.ssrc);
  for (const auto& b : rr.reports) write_report_block(w, b);
  return std::move(w).take();
}

Bytes serialize_rtcp(const RtcpBye& bye) {
  BufWriter w;
  size_t reason_len = bye.reason.empty() ? 0 : 1 + bye.reason.size();
  size_t padded_reason = (reason_len + 3) / 4 * 4;
  uint16_t words = static_cast<uint16_t>((bye.ssrcs.size() * 4 + padded_reason) / 4);
  write_header(w, RtcpType::kBye, static_cast<uint8_t>(bye.ssrcs.size()), words);
  for (uint32_t ssrc : bye.ssrcs) w.u32(ssrc);
  if (!bye.reason.empty()) {
    w.u8(static_cast<uint8_t>(bye.reason.size()));
    w.str(bye.reason);
    for (size_t i = reason_len; i < padded_reason; ++i) w.u8(0);
  }
  return std::move(w).take();
}

}  // namespace scidive::rtp
