// Minimal RTCP (RFC 3550 §6): Sender Report, Receiver Report and BYE — the
// control traffic a 2004 softphone emits alongside RTP. The IDS's Distiller
// decodes these into RTCP footprints.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace scidive::rtp {

enum class RtcpType : uint8_t {
  kSenderReport = 200,
  kReceiverReport = 201,
  kSdes = 202,
  kBye = 203,
};

struct RtcpReportBlock {
  uint32_t ssrc = 0;          // stream being reported on
  uint8_t fraction_lost = 0;  // fixed-point /256
  uint32_t cumulative_lost = 0;
  uint32_t highest_seq = 0;
  uint32_t jitter = 0;  // in timestamp units
};

struct RtcpSenderReport {
  uint32_t ssrc = 0;
  uint64_t ntp_timestamp = 0;
  uint32_t rtp_timestamp = 0;
  uint32_t packet_count = 0;
  uint32_t octet_count = 0;
  std::vector<RtcpReportBlock> reports;
};

struct RtcpReceiverReport {
  uint32_t ssrc = 0;
  std::vector<RtcpReportBlock> reports;
};

struct RtcpBye {
  std::vector<uint32_t> ssrcs;
  std::string reason;
};

struct RtcpPacket {
  std::optional<RtcpSenderReport> sr;
  std::optional<RtcpReceiverReport> rr;
  std::optional<RtcpBye> bye;
};

Result<RtcpPacket> parse_rtcp(std::span<const uint8_t> data);
Bytes serialize_rtcp(const RtcpSenderReport& sr);
Bytes serialize_rtcp(const RtcpReceiverReport& rr);
Bytes serialize_rtcp(const RtcpBye& bye);

}  // namespace scidive::rtp
