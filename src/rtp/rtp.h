// RTP packet codec (RFC 3550 §5.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace scidive::rtp {

constexpr size_t kRtpMinHeaderLen = 12;
constexpr uint8_t kPayloadTypePcmu = 0;

/// G.711 at 8 kHz, 20 ms packets: 160 samples / 160 bytes per packet.
constexpr uint32_t kSamplesPer20Ms = 160;

struct RtpHeader {
  uint8_t payload_type = kPayloadTypePcmu;
  bool marker = false;
  uint16_t sequence = 0;
  uint32_t timestamp = 0;
  uint32_t ssrc = 0;
  std::vector<uint32_t> csrc;  // contributing sources (mixers); usually empty
};

struct RtpView {
  RtpHeader header;
  std::span<const uint8_t> payload;
};

/// Parse an RTP packet. Validates version==2 and length; padding and
/// extensions are honored when computing the payload span.
Result<RtpView> parse_rtp(std::span<const uint8_t> data);

Bytes serialize_rtp(const RtpHeader& header, std::span<const uint8_t> payload);

/// Signed distance from seq a to b modulo 2^16 (positive if b is ahead).
inline int32_t seq_distance(uint16_t a, uint16_t b) {
  return static_cast<int16_t>(static_cast<uint16_t>(b - a));
}

}  // namespace scidive::rtp
