#include "rtp/stats.h"

#include <cmath>
#include <cstdlib>

#include "rtp/rtp.h"

namespace scidive::rtp {

void RtpStreamStats::on_packet(uint16_t sequence, uint32_t rtp_timestamp, SimTime arrival) {
  ++received_;
  if (!base_seq_) {
    base_seq_ = sequence;
    max_seq_ = sequence;
  } else {
    int32_t delta = seq_distance(max_seq_, sequence);
    if (delta > 0) {
      if (sequence < max_seq_) ++cycles_;  // wrapped
      max_seq_ = sequence;
    }
    if (last_seq_) {
      int32_t jump = seq_distance(*last_seq_, sequence);
      if (std::abs(jump) > std::abs(max_seq_jump_)) max_seq_jump_ = jump;
    }
  }
  last_seq_ = sequence;

  // Jitter (RFC 3550 §6.4.1): J += (|D| - J) / 16 with transit differences
  // measured in timestamp units.
  int64_t arrival_ts = arrival * clock_rate_ / kSecond;
  int64_t transit = arrival_ts - static_cast<int64_t>(rtp_timestamp);
  if (last_transit_) {
    double d = std::abs(static_cast<double>(transit - *last_transit_));
    jitter_ += (d - jitter_) / 16.0;
  }
  last_transit_ = transit;
}

uint32_t RtpStreamStats::extended_highest_seq() const {
  return (cycles_ << 16) | max_seq_;
}

int64_t RtpStreamStats::cumulative_lost() const {
  if (!base_seq_) return 0;
  int64_t extended_max = static_cast<int64_t>(cycles_) << 16 | max_seq_;
  int64_t expected = extended_max - *base_seq_ + 1;
  int64_t lost = expected - static_cast<int64_t>(received_);
  return lost > 0 ? lost : 0;
}

}  // namespace scidive::rtp
