#include "rtp/jitter_buffer.h"

#include <vector>

namespace scidive::rtp {

bool JitterBuffer::push(const RtpHeader& header, SimTime now) {
  (void)now;
  if (crashed_) return false;
  ++pushed_;

  if (!have_playout_point_) {
    have_playout_point_ = true;
    next_play_seq_ = header.sequence;
  }

  int32_t ahead = seq_distance(next_play_seq_, header.sequence);
  if (ahead < 0) {
    // Arrived after its playout slot: a real client drops it.
    ++discarded_late_;
    return true;
  }
  if (ahead > config_.takeover_threshold) {
    // Implausible forward jump — garbage takes over the playout point.
    switch (config_.behavior) {
      case CorruptionBehavior::kCrash:
        crashed_ = true;
        return false;
      case CorruptionBehavior::kGlitch:
        // Everything queued becomes "late" relative to the hijacked point.
        ++glitches_;
        discarded_late_ += buffer_.size();
        buffer_.clear();
        next_play_seq_ = header.sequence;
        break;
      case CorruptionBehavior::kRobust:
        // Treat as noise; drop the implausible packet.
        ++discarded_late_;
        return true;
    }
  }

  buffer_[header.sequence] = header;
  if (buffer_.size() > config_.capacity) {
    // Overflow: the oldest queued packet is forced out to playout.
    RtpHeader dummy;
    pop_for_playout(&dummy);
  }
  return true;
}

bool JitterBuffer::pop_for_playout(RtpHeader* out) {
  if (crashed_ || buffer_.empty()) return false;
  // Pick the packet closest ahead of the playout point (modulo-2^16 order;
  // the buffer is bounded so a linear scan is fine).
  auto best = buffer_.begin();
  int32_t best_dist = seq_distance(next_play_seq_, best->first);
  for (auto it = std::next(buffer_.begin()); it != buffer_.end(); ++it) {
    int32_t d = seq_distance(next_play_seq_, it->first);
    if (d < best_dist) {
      best = it;
      best_dist = d;
    }
  }
  *out = best->second;
  next_play_seq_ = static_cast<uint16_t>(best->second.sequence + 1);
  buffer_.erase(best);
  ++played_;
  return true;
}

}  // namespace scidive::rtp
