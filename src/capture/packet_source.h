// The capture boundary (ROADMAP item 3): everything that can produce or
// consume captured packets speaks one of two tiny interfaces, so the
// engines, the testbed, the benches and the CLI never care whether bytes
// came from netsim, a pcap file, a live socket or a statistical workload
// generator.
//
//   - PacketSource is pull-based: the consumer (an engine drive loop, the
//     CLI) calls next() until it returns false. File and generator sources
//     are exhausted then; live sources return false only after stop().
//   - PacketSink is push-based: taps, recorders and exporters implement
//     write(). A sink's tap() adapter plugs directly into
//     netsim::Network::add_tap (the PacketTap type is just std::function,
//     so no netsim dependency is needed here).
//
// In the paper's terms (§4.1) a PacketSource is one tap location: the
// client-side deployment of Figure 3 is a source at the endpoint, a
// proxy-side deployment is a source on the proxy segment, and the core
// deployment is a source behind a span port. The engine is placement-
// agnostic; only the source moves.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "pkt/packet.h"

namespace scidive::capture {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Pull the next packet. Returns false when the source is exhausted (file
  /// sources, bounded generators) or stopped (live sources). A false return
  /// is terminal for finite sources; live sources document their own
  /// semantics.
  virtual bool next(pkt::Packet* out) = 0;

  /// Stable label for metrics/diagnostics ("pcap", "udp", "carrier_mix").
  virtual std::string_view name() const = 0;
};

class PacketSink {
 public:
  virtual ~PacketSink() = default;

  virtual void write(const pkt::Packet& packet) = 0;

  /// Adapter for netsim::Network::add_tap (PacketTap is this exact
  /// std::function type).
  std::function<void(const pkt::Packet&)> tap() {
    return [this](const pkt::Packet& packet) { write(packet); };
  }
};

/// Drain a source into a callback. Returns the number of packets fed.
inline uint64_t drain(PacketSource& source,
                      const std::function<void(const pkt::Packet&)>& consumer) {
  pkt::Packet packet;
  uint64_t fed = 0;
  while (source.next(&packet)) {
    consumer(packet);
    ++fed;
  }
  return fed;
}

/// Materialize a whole (finite!) source. Test/CLI convenience.
inline std::vector<pkt::Packet> read_all(PacketSource& source) {
  std::vector<pkt::Packet> out;
  pkt::Packet packet;
  while (source.next(&packet)) out.push_back(std::move(packet));
  return out;
}

}  // namespace scidive::capture
