// Classic libpcap file format (the pre-pcapng .pcap every tool reads),
// hand-rolled like the rest of src/pkt/ — no external dependency. Scope:
//
//   - write: little-endian, microsecond timestamps, LINKTYPE_RAW (raw IPv4,
//     the repo's native unit) or LINKTYPE_ETHERNET (a synthetic Ethernet II
//     header is prepended so Wireshark's default dissector chain works);
//   - read: both byte orders, microsecond and nanosecond magics, both
//     supported link types (the Ethernet header is stripped again; non-IPv4
//     ethertypes are counted and skipped, not errors — real captures carry
//     ARP and IPv6 noise).
//
// The reader is total over adversarial input (fuzz_pcap drives it): record
// lengths are bounds-checked against the stream, the snaplen and a hard
// cap, so truncated files, snaplen lies and oversized claims fail with a
// diagnostic instead of an allocation or a crash.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "capture/packet_source.h"
#include "obs/metrics.h"
#include "pkt/packet.h"

namespace scidive::capture {

enum class PcapLinkType : uint32_t {
  kEthernet = 1,   // LINKTYPE_ETHERNET
  kRaw = 101,      // LINKTYPE_RAW: the packet begins at the IP header
};

/// Hard upper bound on a single record's captured length; anything larger
/// is a malformed file, not a packet (IPv4 datagrams cap at 64 KiB).
inline constexpr uint32_t kPcapMaxRecordBytes = 1u << 20;

struct PcapWriterOptions {
  PcapLinkType link = PcapLinkType::kRaw;
  uint32_t snaplen = 65535;  // records longer than this are truncated
};

/// Streams packets to an ostream as a pcap file. The global header is
/// written on construction; each record flushes nothing by itself (callers
/// own stream lifetime/flushing). Byte-deterministic: output depends only
/// on the packet sequence, never on wall clock or environment — the export
/// determinism tests pin this.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out, PcapWriterOptions options = {});

  void write(const pkt::Packet& packet);

  uint64_t packets_written() const { return packets_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// A recording tap: network.add_tap(writer.tap()) exports any netsim
  /// scenario — fault injection included — to a Wireshark-readable file.
  std::function<void(const pkt::Packet&)> tap() {
    return [this](const pkt::Packet& packet) { write(packet); };
  }

 private:
  std::ostream& out_;
  PcapWriterOptions options_;
  uint64_t packets_written_ = 0;
  uint64_t bytes_written_ = 0;
};

struct PcapReaderStats {
  uint64_t records_read = 0;      // records successfully decoded to packets
  uint64_t records_skipped = 0;   // non-IPv4 ethertype / runt Ethernet frames
  uint64_t records_truncated = 0; // incl_len < orig_len (snaplen cut the tail)
};

/// Incremental pcap decoder over an istream. Strict on structure (a corrupt
/// capture must fail loudly, not half-feed an IDS), tolerant of foreign
/// content (unknown ethertypes are skipped and counted).
class PcapReader {
 public:
  explicit PcapReader(std::istream& in);

  /// Decode the next packet. Returns false at clean EOF and on the first
  /// structural error (error() distinguishes the two).
  bool next(pkt::Packet* out);

  bool header_ok() const { return header_ok_; }
  /// Empty while no structural error has been seen.
  const std::string& error() const { return error_; }
  PcapLinkType link_type() const { return link_type_; }
  uint32_t snaplen() const { return snaplen_; }
  const PcapReaderStats& stats() const { return stats_; }

 private:
  bool fail(std::string message);
  bool read_exact(uint8_t* dst, size_t n, bool* clean_eof);
  uint32_t read_u32(const uint8_t* p) const;
  uint16_t read_u16(const uint8_t* p) const;

  std::istream& in_;
  bool header_ok_ = false;
  bool swapped_ = false;       // file byte order != reader byte order
  bool nanosecond_ = false;    // 0xa1b23c4d family: sub-second field is ns
  PcapLinkType link_type_ = PcapLinkType::kRaw;
  uint32_t snaplen_ = 0;
  std::string error_;
  PcapReaderStats stats_;
};

struct PcapSourceOptions {
  /// When set, the source interns scidive_capture_packets_total{source} and
  /// scidive_capture_drops_total{source,reason} cells at construction and
  /// records into them allocation-free.
  obs::MetricsRegistry* metrics = nullptr;
};

/// PacketSource over a pcap stream or file — the replay path: any capture
/// (exported netsim scenario or real-world trace) feeds an engine via
/// ScidiveEngine::run / ShardedEngine::run.
class PcapFileSource : public PacketSource {
 public:
  /// Open `path`. Check ok()/error() before pulling.
  explicit PcapFileSource(const std::string& path, PcapSourceOptions options = {});
  /// Borrow an open stream (in-memory round trips, tests).
  explicit PcapFileSource(std::istream& in, PcapSourceOptions options = {});
  ~PcapFileSource() override;

  bool next(pkt::Packet* out) override;
  std::string_view name() const override { return "pcap"; }

  /// False when the file could not be opened or a structural error occurred.
  bool ok() const;
  std::string error() const;
  const PcapReader& reader() const { return *reader_; }

 private:
  void intern_instruments(obs::MetricsRegistry* metrics);

  std::unique_ptr<std::istream> owned_in_;  // file constructor only
  std::unique_ptr<PcapReader> reader_;
  std::string open_error_;
  obs::Counter* packets_total_ = nullptr;
  obs::Counter* drops_malformed_ = nullptr;
  obs::Counter* drops_skipped_ = nullptr;
};

/// PacketSink writing a pcap file — the export path. Also usable as a
/// netsim tap via PacketSink::tap().
class PcapFileSink : public PacketSink {
 public:
  explicit PcapFileSink(const std::string& path, PcapWriterOptions options = {});
  explicit PcapFileSink(std::ostream& out, PcapWriterOptions options = {});
  ~PcapFileSink() override;

  void write(const pkt::Packet& packet) override;
  bool ok() const { return writer_ != nullptr; }
  uint64_t packets_written() const { return writer_ ? writer_->packets_written() : 0; }

 private:
  std::unique_ptr<std::ostream> owned_out_;  // file constructor only
  std::unique_ptr<PcapWriter> writer_;
};

}  // namespace scidive::capture
