// Live capture: a nonblocking UDP socket behind the PacketSource interface,
// so an engine can front a real SIP proxy or media relay in a lab without
// touching netsim. The idiom follows fmus-3g's socket/transport split: a
// reader thread batches datagrams off the kernel (recvmmsg on Linux, a
// recvfrom loop elsewhere) into a bounded SpscQueue; the consumer thread
// pulls decoded packets with next().
//
// Each received payload is wrapped in a synthetic IPv4/UDP datagram (source
// = the sender's address, destination = the bound socket) because the IDS
// always re-parses from raw bytes — a UDP socket only surfaces L4 payloads,
// and the pipeline's unit is the L3 datagram.
//
// Backpressure is explicit, SCIDIVE-style: a full ring drops the datagram
// and counts it in scidive_capture_drops_total{source="udp",reason=
// "ring_full"} — packets are never silently lost. The consumer-side pop
// also feeds a scidive_capture_lag_ns histogram (receive -> next() delay),
// the live deployment's "is the engine keeping up" signal. All instruments
// are interned at construction; the steady-state path performs no
// allocation beyond the packet buffers themselves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "capture/packet_source.h"
#include "common/spsc_queue.h"
#include "obs/metrics.h"
#include "pkt/addr.h"

namespace scidive::capture {

struct UdpSourceConfig {
  /// Bind address/port. Port 0 binds an ephemeral port (tests); read the
  /// result from local_endpoint().
  std::string bind_address = "0.0.0.0";
  uint16_t port = 5060;
  size_t ring_capacity = 4096;   // rounded up to a power of two
  size_t recv_batch = 32;        // datagrams per recvmmsg call
  size_t max_datagram = 65535;   // receive buffer per datagram
  /// Consumer-side behaviour of next() on an empty ring: block (live drive
  /// loop) or return false immediately (polling integration).
  bool blocking = true;
  obs::MetricsRegistry* metrics = nullptr;
};

class UdpSocketSource : public PacketSource {
 public:
  explicit UdpSocketSource(UdpSourceConfig config = {});
  ~UdpSocketSource() override;

  UdpSocketSource(const UdpSocketSource&) = delete;
  UdpSocketSource& operator=(const UdpSocketSource&) = delete;

  /// False when the socket could not be opened/bound; error() says why.
  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  pkt::Endpoint local_endpoint() const { return local_; }

  /// Pull one packet. Blocking mode waits for traffic or stop(); polling
  /// mode returns false on an empty ring. After stop(), next() drains the
  /// ring and then returns false forever.
  bool next(pkt::Packet* out) override;
  std::string_view name() const override { return "udp"; }

  /// Ask the reader thread to exit; next() returns false once the ring is
  /// drained. Safe to call from any thread, idempotent.
  void stop();

  uint64_t packets_received() const { return received_.load(std::memory_order_relaxed); }
  uint64_t packets_dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    pkt::Packet packet;
    uint64_t recv_steady_ns = 0;  // lag measurement anchor
  };

  void reader_loop();
  /// Wrap one payload and push it; counts the drop when the ring is full.
  void enqueue(const uint8_t* payload, size_t len, uint32_t src_addr,
               uint16_t src_port, uint64_t recv_ns);

  UdpSourceConfig config_;
  int fd_ = -1;
  std::string error_;
  pkt::Endpoint local_;
  std::unique_ptr<SpscQueue<Slot>> ring_;
  std::thread reader_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> dropped_{0};
  uint64_t epoch_steady_ns_ = 0;  // timestamps are µs since source start

  obs::Counter* packets_total_ = nullptr;
  obs::Counter* drops_ring_full_ = nullptr;
  obs::Histogram* lag_ns_ = nullptr;
};

}  // namespace scidive::capture
