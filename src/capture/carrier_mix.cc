#include "capture/carrier_mix.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "rtp/rtp.h"
#include "sip/auth.h"
#include "sip/message.h"
#include "sip/sdp.h"

namespace scidive::capture {
namespace {

constexpr pkt::Ipv4Address kProxyAddr(192, 168, 0, 1);
constexpr uint16_t kSipPort = 5060;
constexpr char kDomain[] = "carrier.example";
constexpr char kRealm[] = "carrier.example";
/// User indices map into 10.0.0.0/8; the usable space bounds provisioning.
constexpr uint64_t kMaxProvisioned = (1u << 24) - 2;

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CarrierMixSource::CarrierMixSource(CarrierMixConfig config) : config_(std::move(config)) {
  if (config_.provisioned_users == 0) config_.provisioned_users = 1;
  if (config_.provisioned_users > kMaxProvisioned) config_.provisioned_users = kMaxProvisioned;
  if (config_.rtp_interval <= 0) config_.rtp_interval = msec(20);
  if (config_.max_active_calls == 0) config_.max_active_calls = 1;

  if (obs::MetricsRegistry* metrics = config_.metrics) {
    packets_total_ = &metrics->counter("scidive_capture_packets_total",
                                       "Packets delivered by a capture source",
                                       {{"source", "carrier_mix"}});
    drops_deferred_ = &metrics->counter(
        "scidive_capture_drops_total",
        "Packets a capture source could not deliver",
        {{"reason", "call_cap"}, {"source", "carrier_mix"}});
  }

  // Seed the three Poisson processes. A zero rate disables its process.
  now_ = sec(1);  // keep timestamps clear of the t=0 edge
  if (config_.call_rate_hz > 0) {
    schedule(now_ + arrival_gap(config_.call_rate_hz), EventKind::kCallArrival);
  }
  if (config_.im_rate_hz > 0) {
    schedule(now_ + arrival_gap(config_.im_rate_hz), EventKind::kImArrival);
  }
  if (config_.register_rate_hz > 0) {
    schedule(now_ + arrival_gap(config_.register_rate_hz), EventKind::kRegArrival);
  }
  if (config_.spit_callers > 0 && config_.spit_call_rate_hz > 0) {
    schedule(now_ + arrival_gap(config_.spit_call_rate_hz), EventKind::kSpitArrival);
  }
}

// --- counter-based PRNG ---------------------------------------------------

uint64_t CarrierMixSource::draw_u64() {
  return splitmix64(config_.seed ^ splitmix64(++draw_counter_));
}

double CarrierMixSource::draw_unit() {
  return static_cast<double>(draw_u64() >> 11) * 0x1.0p-53;
}

uint64_t CarrierMixSource::draw_below(uint64_t n) {
  return n == 0 ? 0 : draw_u64() % n;
}

double CarrierMixSource::draw_exp(double mean) {
  return -mean * std::log1p(-draw_unit());
}

double CarrierMixSource::diurnal_factor(SimTime t) const {
  if (config_.diurnal_amplitude <= 0 || config_.diurnal_period <= 0) return 1.0;
  const double phase = 2.0 * M_PI * static_cast<double>(t) /
                       static_cast<double>(config_.diurnal_period);
  const double f = 1.0 + config_.diurnal_amplitude * std::sin(phase);
  return f < 0.05 ? 0.05 : f;
}

SimDuration CarrierMixSource::arrival_gap(double base_rate_hz) {
  const double rate = base_rate_hz * diurnal_factor(now_);
  const double gap_sec = draw_exp(1.0 / rate);
  const SimDuration gap = static_cast<SimDuration>(gap_sec * kSecond);
  return gap < 1 ? 1 : gap;
}

void CarrierMixSource::schedule(SimTime at, EventKind kind, uint32_t slot) {
  heap_.push(Pending{at, next_seq_++, kind, slot});
}

// --- lazy user materialization --------------------------------------------

pkt::Ipv4Address CarrierMixSource::user_addr(uint32_t user) const {
  return pkt::Ipv4Address((10u << 24) + user + 1);
}

std::string_view CarrierMixSource::user_aor(uint32_t user) {
  auto [sym, inserted] = user_syms_.try_emplace(user, kInvalidSymbol);
  if (*sym == kInvalidSymbol) {
    char buf[48];
    const int n = snprintf(buf, sizeof(buf), "u%u@%s", user, kDomain);
    *sym = interner_.intern(std::string_view(buf, static_cast<size_t>(n)));
  }
  return interner_.name(*sym);
}

std::string_view CarrierMixSource::user_name(uint32_t user) {
  const std::string_view aor = user_aor(user);
  return aor.substr(0, aor.find('@'));
}

// --- packet plumbing ------------------------------------------------------

pkt::Packet CarrierMixSource::make_sip(uint32_t /*from_user*/, pkt::Endpoint src,
                                       pkt::Endpoint dst, const std::string& text) {
  return pkt::make_udp_packet(src, dst, from_string(text));
}

void CarrierMixSource::emit(pkt::Packet&& packet, pkt::Packet* out) {
  packet.timestamp = now_;
  ++packets_generated_;
  if (packets_total_ != nullptr) packets_total_->inc();
  *out = std::move(packet);
}

bool CarrierMixSource::next(pkt::Packet* out) {
  if (config_.max_packets != 0 && packets_generated_ >= config_.max_packets) return false;
  while (!heap_.empty()) {
    const Pending e = heap_.top();
    heap_.pop();
    if (e.at > now_) now_ = e.at;
    bool produced = false;
    switch (e.kind) {
      case EventKind::kCallArrival: produced = on_call_arrival(out); break;
      case EventKind::kCallAnswer: produced = on_call_answer(e.slot, out); break;
      case EventKind::kCallAck: produced = on_call_ack(e.slot, out); break;
      case EventKind::kCallMedia: produced = on_call_media(e.slot, out); break;
      case EventKind::kCallByeOk: produced = on_call_bye_ok(e.slot, out); break;
      case EventKind::kCallReinvite: produced = on_call_reinvite(e.slot, out); break;
      case EventKind::kCallReinviteOk: produced = on_call_reinvite_ok(e.slot, out); break;
      case EventKind::kImArrival: produced = on_im_arrival(out); break;
      case EventKind::kImOk: produced = on_im_ok(e.slot, out); break;
      case EventKind::kRegArrival: produced = on_reg_arrival(out); break;
      case EventKind::kRegStep: produced = on_reg_step(e.slot, out); break;
      case EventKind::kSpitArrival: produced = on_spit_arrival(out); break;
      case EventKind::kSpitCancel: produced = on_spit_cancel(e.slot, out); break;
    }
    if (produced) return true;
  }
  return false;  // all rates zero (or every process disabled)
}

// --- slot pools -----------------------------------------------------------

uint32_t CarrierMixSource::alloc_call() {
  if (!free_calls_.empty()) {
    const uint32_t slot = free_calls_.back();
    free_calls_.pop_back();
    return slot;
  }
  calls_.emplace_back();
  return static_cast<uint32_t>(calls_.size() - 1);
}

void CarrierMixSource::free_call(uint32_t slot) {
  calls_[slot].phase = CallPhase::kFree;
  free_calls_.push_back(slot);
  --active_call_count_;
}

uint32_t CarrierMixSource::alloc_reg() {
  if (!free_regs_.empty()) {
    const uint32_t slot = free_regs_.back();
    free_regs_.pop_back();
    return slot;
  }
  regs_.emplace_back();
  return static_cast<uint32_t>(regs_.size() - 1);
}

uint32_t CarrierMixSource::alloc_im() {
  if (!free_ims_.empty()) {
    const uint32_t slot = free_ims_.back();
    free_ims_.pop_back();
    return slot;
  }
  ims_.emplace_back();
  return static_cast<uint32_t>(ims_.size() - 1);
}

uint32_t CarrierMixSource::alloc_spit() {
  if (!free_spits_.empty()) {
    const uint32_t slot = free_spits_.back();
    free_spits_.pop_back();
    return slot;
  }
  spits_.emplace_back();
  return static_cast<uint32_t>(spits_.size() - 1);
}

// --- calls ----------------------------------------------------------------

bool CarrierMixSource::on_call_arrival(pkt::Packet* out) {
  schedule(now_ + arrival_gap(config_.call_rate_hz), EventKind::kCallArrival);

  // Draws happen unconditionally so the stream beyond a deferred arrival is
  // unchanged — the cap changes what is emitted, not what is drawn.
  const uint32_t caller = static_cast<uint32_t>(draw_below(config_.provisioned_users));
  uint32_t callee = static_cast<uint32_t>(draw_below(config_.provisioned_users));
  if (callee == caller) callee = (callee + 1) % static_cast<uint32_t>(config_.provisioned_users);

  if (active_call_count_ >= config_.max_active_calls) {
    ++calls_deferred_;
    if (drops_deferred_ != nullptr) drops_deferred_->inc();
    return false;
  }

  const uint32_t slot = alloc_call();
  Call& call = calls_[slot];
  call = Call{};
  call.id = call_counter_++;
  call.caller = caller;
  call.callee = callee;
  call.caller_port = static_cast<uint16_t>(16384 + (call.id * 4) % 16000);
  call.callee_port = static_cast<uint16_t>(call.caller_port + 2);
  call.phase = CallPhase::kInviting;
  ++active_call_count_;
  ++calls_started_;

  const pkt::Ipv4Address caller_addr = user_addr(caller);
  auto invite = sip::SipMessage::request(
      sip::Method::kInvite, sip::SipUri(std::string(user_name(callee)), kDomain));
  invite.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-1",
                                          caller_addr.to_string().c_str(), kSipPort,
                                          static_cast<unsigned long long>(call.id)));
  invite.headers().add("Max-Forwards", "70");
  invite.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                           static_cast<int>(user_aor(caller).size()),
                                           user_aor(caller).data(),
                                           static_cast<unsigned long long>(call.id)));
  invite.headers().add("To", str::format("<sip:%.*s>",
                                         static_cast<int>(user_aor(callee).size()),
                                         user_aor(callee).data()));
  invite.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  invite.headers().add("CSeq", "1 INVITE");
  invite.headers().add("Contact", str::format("<sip:%.*s@%s:%u>",
                                              static_cast<int>(user_name(caller).size()),
                                              user_name(caller).data(),
                                              caller_addr.to_string().c_str(), kSipPort));
  invite.set_body(
      sip::make_audio_sdp(caller_addr.to_string(), call.caller_port, call.id + 1, 1).to_string(),
      "application/sdp");

  schedule(now_ + msec(30), EventKind::kCallAnswer, slot);
  emit(make_sip(caller, {caller_addr, kSipPort}, {user_addr(callee), kSipPort},
                invite.to_string()),
       out);
  return true;
}

bool CarrierMixSource::on_call_answer(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kInviting) return false;
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);
  const pkt::Ipv4Address callee_addr = user_addr(call.callee);

  auto ok = sip::SipMessage::response(200, "OK");
  ok.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-1",
                                      caller_addr.to_string().c_str(), kSipPort,
                                      static_cast<unsigned long long>(call.id)));
  ok.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                       static_cast<int>(user_aor(call.caller).size()),
                                       user_aor(call.caller).data(),
                                       static_cast<unsigned long long>(call.id)));
  ok.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                     static_cast<int>(user_aor(call.callee).size()),
                                     user_aor(call.callee).data(),
                                     static_cast<unsigned long long>(call.id)));
  ok.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  ok.headers().add("CSeq", "1 INVITE");
  ok.headers().add("Contact", str::format("<sip:%.*s@%s:%u>",
                                          static_cast<int>(user_name(call.callee).size()),
                                          user_name(call.callee).data(),
                                          callee_addr.to_string().c_str(), kSipPort));
  ok.set_body(
      sip::make_audio_sdp(callee_addr.to_string(), call.callee_port, call.id + 1, 1).to_string(),
      "application/sdp");

  call.phase = CallPhase::kAnswered;
  schedule(now_ + msec(20), EventKind::kCallAck, slot);
  emit(make_sip(call.callee, {callee_addr, kSipPort}, {caller_addr, kSipPort}, ok.to_string()),
       out);
  return true;
}

bool CarrierMixSource::on_call_ack(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kAnswered) return false;
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);

  auto ack = sip::SipMessage::request(
      sip::Method::kAck, sip::SipUri(std::string(user_name(call.callee)), kDomain));
  ack.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-2",
                                       caller_addr.to_string().c_str(), kSipPort,
                                       static_cast<unsigned long long>(call.id)));
  ack.headers().add("Max-Forwards", "70");
  ack.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                        static_cast<int>(user_aor(call.caller).size()),
                                        user_aor(call.caller).data(),
                                        static_cast<unsigned long long>(call.id)));
  ack.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                      static_cast<int>(user_aor(call.callee).size()),
                                      user_aor(call.callee).data(),
                                      static_cast<unsigned long long>(call.id)));
  ack.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  ack.headers().add("CSeq", "1 ACK");

  call.phase = CallPhase::kEstablished;
  const double hold_sec = draw_exp(config_.mean_call_hold_sec);
  call.end_at = now_ + static_cast<SimDuration>(hold_sec * kSecond);
  if (call.end_at <= now_) call.end_at = now_ + config_.rtp_interval;
  if (draw_chance(config_.reinvite_probability)) {
    call.reinvite_pending = true;
    const double frac = 0.2 + 0.6 * draw_unit();
    schedule(now_ + static_cast<SimDuration>(hold_sec * frac * kSecond),
             EventKind::kCallReinvite, slot);
  }
  schedule(now_ + config_.rtp_interval, EventKind::kCallMedia, slot);
  emit(make_sip(call.caller, {caller_addr, kSipPort}, {user_addr(call.callee), kSipPort},
                ack.to_string()),
       out);
  return true;
}

bool CarrierMixSource::on_call_media(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kEstablished) return false;
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);
  const pkt::Ipv4Address callee_addr = user_addr(call.callee);

  if (now_ >= call.end_at) {
    // Hold expired: the caller hangs up. Media stops *before* the BYE by
    // construction — this workload must never bait the BYE-attack rule.
    auto bye = sip::SipMessage::request(
        sip::Method::kBye, sip::SipUri(std::string(user_name(call.callee)), kDomain));
    bye.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-bye",
                                         caller_addr.to_string().c_str(), kSipPort,
                                         static_cast<unsigned long long>(call.id)));
    bye.headers().add("Max-Forwards", "70");
    bye.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                          static_cast<int>(user_aor(call.caller).size()),
                                          user_aor(call.caller).data(),
                                          static_cast<unsigned long long>(call.id)));
    bye.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                        static_cast<int>(user_aor(call.callee).size()),
                                        user_aor(call.callee).data(),
                                        static_cast<unsigned long long>(call.id)));
    bye.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
    bye.headers().add("CSeq", "10 BYE");
    call.phase = CallPhase::kClosing;
    schedule(now_ + msec(20), EventKind::kCallByeOk, slot);
    emit(make_sip(call.caller, {caller_addr, kSipPort}, {callee_addr, kSipPort},
                  bye.to_string()),
         out);
    return true;
  }

  rtp::RtpHeader h;
  h.ssrc = static_cast<uint32_t>(0x52000000u ^ (call.id * 2 + (call.toward_callee ? 1 : 0)));
  h.timestamp = call.media_clock;
  call.media_clock += 160;
  pkt::Endpoint src, dst;
  if (call.toward_callee) {
    h.sequence = call.seq_a++;
    src = {caller_addr, call.caller_port};
    dst = {callee_addr, call.callee_port};
  } else {
    h.sequence = call.seq_b++;
    src = {callee_addr, call.callee_port};
    dst = {caller_addr, call.caller_port};
  }
  call.toward_callee = !call.toward_callee;
  Bytes payload(160, 0xd5);
  schedule(now_ + config_.rtp_interval, EventKind::kCallMedia, slot);
  emit(pkt::make_udp_packet(src, dst, rtp::serialize_rtp(h, payload)), out);
  return true;
}

bool CarrierMixSource::on_call_bye_ok(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kClosing) return false;
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);
  const pkt::Ipv4Address callee_addr = user_addr(call.callee);

  auto ok = sip::SipMessage::response(200, "OK");
  ok.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-bye",
                                      caller_addr.to_string().c_str(), kSipPort,
                                      static_cast<unsigned long long>(call.id)));
  ok.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                       static_cast<int>(user_aor(call.caller).size()),
                                       user_aor(call.caller).data(),
                                       static_cast<unsigned long long>(call.id)));
  ok.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                     static_cast<int>(user_aor(call.callee).size()),
                                     user_aor(call.callee).data(),
                                     static_cast<unsigned long long>(call.id)));
  ok.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  ok.headers().add("CSeq", "10 BYE");

  const uint32_t callee = call.callee;
  free_call(slot);
  emit(make_sip(callee, {callee_addr, kSipPort}, {caller_addr, kSipPort}, ok.to_string()), out);
  return true;
}

bool CarrierMixSource::on_call_reinvite(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kEstablished || now_ >= call.end_at || !call.reinvite_pending) {
    return false;  // the call ended (or is ending) before mobility kicked in
  }
  call.reinvite_pending = false;
  call.pending_port = static_cast<uint16_t>(32768 + (call.id * 4) % 16000);
  // The client has already moved when it signals: caller media flows from
  // the new port from this instant. RTP from the *old* endpoint after a
  // re-INVITE is exactly what the hijack rule flags, and benign mobility
  // must not bait it.
  call.caller_port = call.pending_port;
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);
  ++reinvites_;

  auto reinvite = sip::SipMessage::request(
      sip::Method::kInvite, sip::SipUri(std::string(user_name(call.callee)), kDomain));
  reinvite.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-3",
                                            caller_addr.to_string().c_str(), kSipPort,
                                            static_cast<unsigned long long>(call.id)));
  reinvite.headers().add("Max-Forwards", "70");
  reinvite.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                             static_cast<int>(user_aor(call.caller).size()),
                                             user_aor(call.caller).data(),
                                             static_cast<unsigned long long>(call.id)));
  reinvite.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                           static_cast<int>(user_aor(call.callee).size()),
                                           user_aor(call.callee).data(),
                                           static_cast<unsigned long long>(call.id)));
  reinvite.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  reinvite.headers().add("CSeq", "2 INVITE");
  reinvite.headers().add("Contact", str::format("<sip:%.*s@%s:%u>",
                                                static_cast<int>(user_name(call.caller).size()),
                                                user_name(call.caller).data(),
                                                caller_addr.to_string().c_str(), kSipPort));
  reinvite.set_body(
      sip::make_audio_sdp(caller_addr.to_string(), call.pending_port, call.id + 1, 2).to_string(),
      "application/sdp");

  schedule(now_ + msec(20), EventKind::kCallReinviteOk, slot);
  emit(make_sip(call.caller, {caller_addr, kSipPort}, {user_addr(call.callee), kSipPort},
                reinvite.to_string()),
       out);
  return true;
}

bool CarrierMixSource::on_call_reinvite_ok(uint32_t slot, pkt::Packet* out) {
  Call& call = calls_[slot];
  if (call.phase != CallPhase::kEstablished) return false;  // raced with BYE
  const pkt::Ipv4Address caller_addr = user_addr(call.caller);
  const pkt::Ipv4Address callee_addr = user_addr(call.callee);

  auto ok = sip::SipMessage::response(200, "OK");
  ok.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-cm%llu-3",
                                      caller_addr.to_string().c_str(), kSipPort,
                                      static_cast<unsigned long long>(call.id)));
  ok.headers().add("From", str::format("<sip:%.*s>;tag=c%llu",
                                       static_cast<int>(user_aor(call.caller).size()),
                                       user_aor(call.caller).data(),
                                       static_cast<unsigned long long>(call.id)));
  ok.headers().add("To", str::format("<sip:%.*s>;tag=e%llu",
                                     static_cast<int>(user_aor(call.callee).size()),
                                     user_aor(call.callee).data(),
                                     static_cast<unsigned long long>(call.id)));
  ok.headers().add("Call-ID", str::format("cm-%llu", static_cast<unsigned long long>(call.id)));
  ok.headers().add("CSeq", "2 INVITE");
  ok.set_body(
      sip::make_audio_sdp(callee_addr.to_string(), call.callee_port, call.id + 1, 2).to_string(),
      "application/sdp");

  emit(make_sip(call.callee, {callee_addr, kSipPort}, {caller_addr, kSipPort}, ok.to_string()),
       out);
  return true;
}

// --- instant messages -----------------------------------------------------

bool CarrierMixSource::on_im_arrival(pkt::Packet* out) {
  schedule(now_ + arrival_gap(config_.im_rate_hz), EventKind::kImArrival);

  const uint32_t slot = alloc_im();
  ImExchange& im = ims_[slot];
  im.from = static_cast<uint32_t>(draw_below(config_.provisioned_users));
  im.to = static_cast<uint32_t>(draw_below(config_.provisioned_users));
  if (im.to == im.from) im.to = (im.to + 1) % static_cast<uint32_t>(config_.provisioned_users);
  im.id = im_counter_++;
  im.free = false;
  ++ims_sent_;

  const pkt::Ipv4Address from_addr = user_addr(im.from);
  auto msg = sip::SipMessage::request(
      sip::Method::kMessage, sip::SipUri(std::string(user_name(im.to)), kDomain));
  msg.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-im%llu",
                                       from_addr.to_string().c_str(), kSipPort,
                                       static_cast<unsigned long long>(im.id)));
  msg.headers().add("Max-Forwards", "70");
  msg.headers().add("From", str::format("<sip:%.*s>;tag=m%llu",
                                        static_cast<int>(user_aor(im.from).size()),
                                        user_aor(im.from).data(),
                                        static_cast<unsigned long long>(im.id)));
  msg.headers().add("To", str::format("<sip:%.*s>",
                                      static_cast<int>(user_aor(im.to).size()),
                                      user_aor(im.to).data()));
  msg.headers().add("Call-ID", str::format("im-%llu", static_cast<unsigned long long>(im.id)));
  msg.headers().add("CSeq", "1 MESSAGE");
  msg.set_body("carrier mix instant message", "text/plain");

  schedule(now_ + msec(25), EventKind::kImOk, slot);
  emit(make_sip(im.from, {from_addr, kSipPort}, {user_addr(im.to), kSipPort}, msg.to_string()),
       out);
  return true;
}

bool CarrierMixSource::on_im_ok(uint32_t slot, pkt::Packet* out) {
  ImExchange& im = ims_[slot];
  if (im.free) return false;
  const pkt::Ipv4Address from_addr = user_addr(im.from);
  const pkt::Ipv4Address to_addr = user_addr(im.to);

  auto ok = sip::SipMessage::response(200, "OK");
  ok.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-im%llu",
                                      from_addr.to_string().c_str(), kSipPort,
                                      static_cast<unsigned long long>(im.id)));
  ok.headers().add("From", str::format("<sip:%.*s>;tag=m%llu",
                                       static_cast<int>(user_aor(im.from).size()),
                                       user_aor(im.from).data(),
                                       static_cast<unsigned long long>(im.id)));
  ok.headers().add("To", str::format("<sip:%.*s>;tag=mr%llu",
                                     static_cast<int>(user_aor(im.to).size()),
                                     user_aor(im.to).data(),
                                     static_cast<unsigned long long>(im.id)));
  ok.headers().add("Call-ID", str::format("im-%llu", static_cast<unsigned long long>(im.id)));
  ok.headers().add("CSeq", "1 MESSAGE");

  im.free = true;
  free_ims_.push_back(slot);
  emit(make_sip(im.to, {to_addr, kSipPort}, {from_addr, kSipPort}, ok.to_string()), out);
  return true;
}

// --- registration churn ---------------------------------------------------

bool CarrierMixSource::on_reg_arrival(pkt::Packet* out) {
  schedule(now_ + arrival_gap(config_.register_rate_hz), EventKind::kRegArrival);

  const uint32_t slot = alloc_reg();
  RegExchange& reg = regs_[slot];
  reg.user = static_cast<uint32_t>(draw_below(config_.provisioned_users));
  reg.step = 0;
  reg.challenged = draw_chance(config_.digest_challenge_probability);
  reg.fails = reg.challenged && draw_chance(config_.digest_failure_probability);
  reg.free = false;
  ++registrations_;
  reg.id = reg_counter_++;
  const uint64_t reg_id = reg.id;

  const pkt::Ipv4Address addr = user_addr(reg.user);
  auto reg_msg = sip::SipMessage::request(sip::Method::kRegister, sip::SipUri("", kDomain));
  reg_msg.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-rg%llu-0",
                                           addr.to_string().c_str(), kSipPort,
                                           static_cast<unsigned long long>(reg_id)));
  reg_msg.headers().add("Max-Forwards", "70");
  reg_msg.headers().add("From", str::format("<sip:%.*s>;tag=r%llu",
                                            static_cast<int>(user_aor(reg.user).size()),
                                            user_aor(reg.user).data(),
                                            static_cast<unsigned long long>(reg_id)));
  reg_msg.headers().add("To", str::format("<sip:%.*s>",
                                          static_cast<int>(user_aor(reg.user).size()),
                                          user_aor(reg.user).data()));
  reg_msg.headers().add("Call-ID", str::format("reg-%llu", static_cast<unsigned long long>(reg_id)));
  reg_msg.headers().add("CSeq", "1 REGISTER");
  reg_msg.headers().add("Contact", str::format("<sip:%.*s@%s:%u>",
                                               static_cast<int>(user_name(reg.user).size()),
                                               user_name(reg.user).data(),
                                               addr.to_string().c_str(), kSipPort));
  reg_msg.headers().add("Expires", "3600");

  schedule(now_ + msec(20), EventKind::kRegStep, slot);
  emit(make_sip(reg.user, {addr, kSipPort}, {kProxyAddr, kSipPort}, reg_msg.to_string()), out);
  return true;
}

bool CarrierMixSource::on_reg_step(uint32_t slot, pkt::Packet* out) {
  RegExchange& reg = regs_[slot];
  if (reg.free) return false;
  const uint64_t reg_id = reg.id;
  const pkt::Ipv4Address addr = user_addr(reg.user);

  auto finish = [&](sip::SipMessage msg, bool from_proxy, bool done) {
    if (done) {
      reg.free = true;
      free_regs_.push_back(slot);
    } else {
      schedule(now_ + msec(from_proxy ? 30 : 20), EventKind::kRegStep, slot);
    }
    const pkt::Endpoint user_ep{addr, kSipPort};
    const pkt::Endpoint proxy_ep{kProxyAddr, kSipPort};
    emit(make_sip(reg.user, from_proxy ? proxy_ep : user_ep, from_proxy ? user_ep : proxy_ep,
                  msg.to_string()),
         out);
  };

  const std::string nonce = str::format("n%llu", static_cast<unsigned long long>(reg_id));
  if (reg.step == 0) {
    if (reg.challenged) {
      auto challenge = sip::SipMessage::response(401, "Unauthorized");
      challenge.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-rg%llu-0",
                                                 addr.to_string().c_str(), kSipPort,
                                                 static_cast<unsigned long long>(reg_id)));
      challenge.headers().add("From", str::format("<sip:%.*s>;tag=r%llu",
                                                  static_cast<int>(user_aor(reg.user).size()),
                                                  user_aor(reg.user).data(),
                                                  static_cast<unsigned long long>(reg_id)));
      challenge.headers().add("To", str::format("<sip:%.*s>;tag=p%llu",
                                                static_cast<int>(user_aor(reg.user).size()),
                                                user_aor(reg.user).data(),
                                                static_cast<unsigned long long>(reg_id)));
      challenge.headers().add("Call-ID",
                              str::format("reg-%llu", static_cast<unsigned long long>(reg_id)));
      challenge.headers().add("CSeq", "1 REGISTER");
      sip::DigestChallenge dc{kRealm, nonce};
      challenge.headers().add("WWW-Authenticate", dc.to_header_value());
      reg.step = 1;
      finish(std::move(challenge), /*from_proxy=*/true, /*done=*/false);
    } else {
      auto ok = sip::SipMessage::response(200, "OK");
      ok.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-rg%llu-0",
                                          addr.to_string().c_str(), kSipPort,
                                          static_cast<unsigned long long>(reg_id)));
      ok.headers().add("From", str::format("<sip:%.*s>;tag=r%llu",
                                           static_cast<int>(user_aor(reg.user).size()),
                                           user_aor(reg.user).data(),
                                           static_cast<unsigned long long>(reg_id)));
      ok.headers().add("To", str::format("<sip:%.*s>;tag=p%llu",
                                         static_cast<int>(user_aor(reg.user).size()),
                                         user_aor(reg.user).data(),
                                         static_cast<unsigned long long>(reg_id)));
      ok.headers().add("Call-ID",
                       str::format("reg-%llu", static_cast<unsigned long long>(reg_id)));
      ok.headers().add("CSeq", "1 REGISTER");
      ok.headers().add("Expires", "3600");
      finish(std::move(ok), /*from_proxy=*/true, /*done=*/true);
    }
    return true;
  }

  if (reg.step == 1) {
    // Authorized retry. A failing exchange answers with the wrong password;
    // the IDS only sees that the registrar rejects it again.
    auto retry = sip::SipMessage::request(sip::Method::kRegister, sip::SipUri("", kDomain));
    retry.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-rg%llu-1",
                                           addr.to_string().c_str(), kSipPort,
                                           static_cast<unsigned long long>(reg_id)));
    retry.headers().add("Max-Forwards", "70");
    retry.headers().add("From", str::format("<sip:%.*s>;tag=r%llu",
                                            static_cast<int>(user_aor(reg.user).size()),
                                            user_aor(reg.user).data(),
                                            static_cast<unsigned long long>(reg_id)));
    retry.headers().add("To", str::format("<sip:%.*s>",
                                          static_cast<int>(user_aor(reg.user).size()),
                                          user_aor(reg.user).data()));
    retry.headers().add("Call-ID",
                        str::format("reg-%llu", static_cast<unsigned long long>(reg_id)));
    retry.headers().add("CSeq", "2 REGISTER");
    retry.headers().add("Contact", str::format("<sip:%.*s@%s:%u>",
                                               static_cast<int>(user_name(reg.user).size()),
                                               user_name(reg.user).data(),
                                               addr.to_string().c_str(), kSipPort));
    retry.headers().add("Expires", "3600");
    sip::DigestChallenge dc{kRealm, nonce};
    sip::DigestCredentials creds = sip::answer_challenge(
        dc, user_name(reg.user), reg.fails ? "wrong-password" : "right-password", "REGISTER",
        str::format("sip:%s", kDomain));
    retry.headers().add("Authorization", creds.to_header_value());
    reg.step = 2;
    finish(std::move(retry), /*from_proxy=*/false, /*done=*/false);
    return true;
  }

  // step == 2: the registrar's verdict on the authorized retry.
  auto verdict = reg.fails ? sip::SipMessage::response(401, "Unauthorized")
                           : sip::SipMessage::response(200, "OK");
  verdict.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-rg%llu-1",
                                           addr.to_string().c_str(), kSipPort,
                                           static_cast<unsigned long long>(reg_id)));
  verdict.headers().add("From", str::format("<sip:%.*s>;tag=r%llu",
                                            static_cast<int>(user_aor(reg.user).size()),
                                            user_aor(reg.user).data(),
                                            static_cast<unsigned long long>(reg_id)));
  verdict.headers().add("To", str::format("<sip:%.*s>;tag=p%llu",
                                          static_cast<int>(user_aor(reg.user).size()),
                                          user_aor(reg.user).data(),
                                          static_cast<unsigned long long>(reg_id)));
  verdict.headers().add("Call-ID",
                        str::format("reg-%llu", static_cast<unsigned long long>(reg_id)));
  verdict.headers().add("CSeq", "2 REGISTER");
  if (reg.fails) {
    sip::DigestChallenge dc{kRealm, nonce};
    verdict.headers().add("WWW-Authenticate", dc.to_header_value());
    ++digest_failures_;
  } else {
    verdict.headers().add("Expires", "3600");
  }
  finish(std::move(verdict), /*from_proxy=*/true, /*done=*/true);
  return true;
}

// --- SPIT cohort ----------------------------------------------------------

pkt::Ipv4Address CarrierMixSource::spit_addr(uint32_t k) {
  // 172.16/12: disjoint from the 10/8 user space and the 192.168.0.1 proxy,
  // so blocking a spammer's source can never collateral-damage a subscriber.
  return pkt::Ipv4Address((172u << 24) | (16u << 16) | (k + 1));
}

std::string CarrierMixSource::spit_aor(uint32_t k) {
  return str::format("spit%u@%s", k, kDomain);
}

bool CarrierMixSource::on_spit_arrival(pkt::Packet* out) {
  schedule(now_ + arrival_gap(config_.spit_call_rate_hz), EventKind::kSpitArrival);

  const uint32_t spammer = static_cast<uint32_t>(draw_below(config_.spit_callers));
  const uint32_t victim = static_cast<uint32_t>(draw_below(config_.provisioned_users));

  const uint32_t slot = alloc_spit();
  SpitAttempt& at = spits_[slot];
  at.spammer = spammer;
  at.victim = victim;
  at.id = spit_counter_++;
  at.free = false;
  ++spit_attempts_;

  const pkt::Ipv4Address src = spit_addr(spammer);
  const std::string aor = spit_aor(spammer);
  auto invite = sip::SipMessage::request(
      sip::Method::kInvite, sip::SipUri(std::string(user_name(victim)), kDomain));
  invite.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-sp%llu",
                                          src.to_string().c_str(), kSipPort,
                                          static_cast<unsigned long long>(at.id)));
  invite.headers().add("Max-Forwards", "70");
  invite.headers().add("From", str::format("<sip:%s>;tag=s%llu", aor.c_str(),
                                           static_cast<unsigned long long>(at.id)));
  invite.headers().add("To", str::format("<sip:%.*s>",
                                         static_cast<int>(user_aor(victim).size()),
                                         user_aor(victim).data()));
  invite.headers().add("Call-ID",
                       str::format("spit-%llu", static_cast<unsigned long long>(at.id)));
  invite.headers().add("CSeq", "1 INVITE");
  invite.headers().add("Contact", str::format("<sip:spit%u@%s:%u>", spammer,
                                              src.to_string().c_str(), kSipPort));
  invite.set_body(
      sip::make_audio_sdp(src.to_string(), static_cast<uint16_t>(17000 + spammer * 2),
                          at.id + 1, 1)
          .to_string(),
      "application/sdp");

  schedule(now_ + config_.spit_hold, EventKind::kSpitCancel, slot);
  emit(make_sip(0, {src, kSipPort}, {user_addr(victim), kSipPort}, invite.to_string()), out);
  return true;
}

bool CarrierMixSource::on_spit_cancel(uint32_t slot, pkt::Packet* out) {
  SpitAttempt& at = spits_[slot];
  if (at.free) return false;
  const pkt::Ipv4Address src = spit_addr(at.spammer);
  const std::string aor = spit_aor(at.spammer);

  auto cancel = sip::SipMessage::request(
      sip::Method::kCancel, sip::SipUri(std::string(user_name(at.victim)), kDomain));
  cancel.headers().add("Via", str::format("SIP/2.0/UDP %s:%u;branch=z9hG4bK-sp%llu",
                                          src.to_string().c_str(), kSipPort,
                                          static_cast<unsigned long long>(at.id)));
  cancel.headers().add("Max-Forwards", "70");
  cancel.headers().add("From", str::format("<sip:%s>;tag=s%llu", aor.c_str(),
                                           static_cast<unsigned long long>(at.id)));
  cancel.headers().add("To", str::format("<sip:%.*s>",
                                         static_cast<int>(user_aor(at.victim).size()),
                                         user_aor(at.victim).data()));
  cancel.headers().add("Call-ID",
                       str::format("spit-%llu", static_cast<unsigned long long>(at.id)));
  cancel.headers().add("CSeq", "1 CANCEL");

  const uint32_t victim = at.victim;
  at.free = true;
  free_spits_.push_back(slot);
  ++spit_cancels_;
  emit(make_sip(0, {src, kSipPort}, {user_addr(victim), kSipPort}, cancel.to_string()), out);
  return true;
}

}  // namespace scidive::capture
