#include "capture/pcap.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/strings.h"

namespace scidive::capture {
namespace {

constexpr uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr uint32_t kMagicNano = 0xa1b23c4d;
constexpr uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr size_t kGlobalHeaderBytes = 24;
constexpr size_t kRecordHeaderBytes = 16;
constexpr size_t kEthernetHeaderBytes = 14;
constexpr uint16_t kEtherTypeIpv4 = 0x0800;

/// The synthetic Ethernet II header prepended under LINKTYPE_ETHERNET.
/// Locally-administered unicast MACs spelling "SCIDV" — recognizable in
/// Wireshark, impossible on a real wire.
constexpr uint8_t kSyntheticEthernet[kEthernetHeaderBytes] = {
    0x02, 0x53, 0x43, 0x49, 0x44, 0x56,  // dst 02:53:43:49:44:56
    0x02, 0x53, 0x43, 0x49, 0x44, 0x00,  // src 02:53:43:49:44:00
    0x08, 0x00,                          // ethertype IPv4
};

void put_u16le(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_u32le(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

// --- PcapWriter -----------------------------------------------------------

PcapWriter::PcapWriter(std::ostream& out, PcapWriterOptions options)
    : out_(out), options_(options) {
  if (options_.snaplen == 0) options_.snaplen = 65535;
  std::string header;
  header.reserve(kGlobalHeaderBytes);
  put_u32le(header, kMagicMicro);
  put_u16le(header, kVersionMajor);
  put_u16le(header, kVersionMinor);
  put_u32le(header, 0);  // thiszone: GMT
  put_u32le(header, 0);  // sigfigs
  put_u32le(header, options_.snaplen);
  put_u32le(header, static_cast<uint32_t>(options_.link));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  bytes_written_ += header.size();
}

void PcapWriter::write(const pkt::Packet& packet) {
  const bool ethernet = options_.link == PcapLinkType::kEthernet;
  const size_t frame_len =
      packet.data.size() + (ethernet ? kEthernetHeaderBytes : 0);
  const uint32_t orig_len = static_cast<uint32_t>(frame_len);
  const uint32_t incl_len =
      orig_len > options_.snaplen ? options_.snaplen : orig_len;

  // SimTime is microseconds since simulation start; negative timestamps
  // cannot appear on the wire format, so clamp defensively.
  const SimTime ts = packet.timestamp < 0 ? 0 : packet.timestamp;
  std::string record;
  record.reserve(kRecordHeaderBytes + incl_len);
  put_u32le(record, static_cast<uint32_t>(ts / kSecond));
  put_u32le(record, static_cast<uint32_t>(ts % kSecond));
  put_u32le(record, incl_len);
  put_u32le(record, orig_len);

  uint32_t remaining = incl_len;
  if (ethernet) {
    const uint32_t n = remaining < kEthernetHeaderBytes
                           ? remaining
                           : static_cast<uint32_t>(kEthernetHeaderBytes);
    record.append(reinterpret_cast<const char*>(kSyntheticEthernet), n);
    remaining -= n;
  }
  record.append(reinterpret_cast<const char*>(packet.data.data()), remaining);

  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  bytes_written_ += record.size();
  ++packets_written_;
}

// --- PcapReader -----------------------------------------------------------

PcapReader::PcapReader(std::istream& in) : in_(in) {
  uint8_t h[kGlobalHeaderBytes];
  bool clean_eof = false;
  if (!read_exact(h, sizeof(h), &clean_eof)) {
    fail(clean_eof ? "empty input (no pcap global header)"
                   : "truncated pcap global header");
    return;
  }
  uint32_t magic;
  std::memcpy(&magic, h, 4);
  switch (magic) {
    case kMagicMicro: break;
    case kMagicNano: nanosecond_ = true; break;
    case kMagicMicroSwapped: swapped_ = true; break;
    case kMagicNanoSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default:
      fail(str::format("bad pcap magic 0x%08x", magic));
      return;
  }
  const uint16_t major = read_u16(h + 4);
  if (major != kVersionMajor) {
    fail(str::format("unsupported pcap version %u", major));
    return;
  }
  snaplen_ = read_u32(h + 16);
  const uint32_t link = read_u32(h + 20);
  if (link != static_cast<uint32_t>(PcapLinkType::kEthernet) &&
      link != static_cast<uint32_t>(PcapLinkType::kRaw)) {
    fail(str::format("unsupported linktype %u (need ETHERNET=1 or RAW=101)", link));
    return;
  }
  link_type_ = static_cast<PcapLinkType>(link);
  header_ok_ = true;
}

bool PcapReader::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
  return false;
}

bool PcapReader::read_exact(uint8_t* dst, size_t n, bool* clean_eof) {
  in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_.gcount()) == n) return true;
  if (clean_eof != nullptr) *clean_eof = in_.gcount() == 0;
  return false;
}

uint32_t PcapReader::read_u32(const uint8_t* p) const {
  uint32_t v;
  std::memcpy(&v, p, 4);
  if (swapped_) v = __builtin_bswap32(v);
  return v;
}

uint16_t PcapReader::read_u16(const uint8_t* p) const {
  uint16_t v;
  std::memcpy(&v, p, 2);
  if (swapped_) v = __builtin_bswap16(v);
  return v;
}

bool PcapReader::next(pkt::Packet* out) {
  if (!header_ok_ || !error_.empty()) return false;
  for (;;) {
    uint8_t rh[kRecordHeaderBytes];
    bool clean_eof = false;
    if (!read_exact(rh, sizeof(rh), &clean_eof)) {
      if (clean_eof) return false;  // normal end of capture
      return fail("truncated record header");
    }
    const uint32_t ts_sec = read_u32(rh);
    uint32_t ts_sub = read_u32(rh + 4);
    const uint32_t incl_len = read_u32(rh + 8);
    const uint32_t orig_len = read_u32(rh + 12);

    // Bounds before any allocation: a record may not exceed the declared
    // snaplen (a "snaplen lie"), the hard cap, or the bytes that remain.
    if (incl_len > kPcapMaxRecordBytes) {
      return fail(str::format("record incl_len %u exceeds hard cap", incl_len));
    }
    if (snaplen_ != 0 && incl_len > snaplen_) {
      return fail(str::format("record incl_len %u exceeds snaplen %u", incl_len,
                              snaplen_));
    }
    Bytes frame(incl_len);
    if (incl_len > 0 && !read_exact(frame.data(), incl_len, nullptr)) {
      return fail("truncated record body");
    }
    if (incl_len < orig_len) ++stats_.records_truncated;

    if (nanosecond_) ts_sub /= 1000;  // normalize to microseconds
    // A nonsense sub-second field (>= 1s) would break timestamp round
    // trips; normalize instead of trusting it.
    const SimTime timestamp =
        static_cast<SimTime>(ts_sec) * kSecond + (ts_sub % kSecond);

    if (link_type_ == PcapLinkType::kEthernet) {
      if (frame.size() < kEthernetHeaderBytes) {
        ++stats_.records_skipped;  // runt frame: skip, keep reading
        continue;
      }
      const uint16_t ethertype =
          static_cast<uint16_t>(frame[12]) << 8 | frame[13];
      if (ethertype != kEtherTypeIpv4) {
        ++stats_.records_skipped;  // ARP/IPv6/VLAN noise in real captures
        continue;
      }
      frame.erase(frame.begin(), frame.begin() + kEthernetHeaderBytes);
    }

    out->data = std::move(frame);
    out->timestamp = timestamp;
    ++stats_.records_read;
    return true;
  }
}

// --- PcapFileSource -------------------------------------------------------

PcapFileSource::PcapFileSource(const std::string& path, PcapSourceOptions options) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!file->good()) {
    open_error_ = "cannot open " + path;
  } else {
    owned_in_ = std::move(file);
    reader_ = std::make_unique<PcapReader>(*owned_in_);
  }
  intern_instruments(options.metrics);
}

PcapFileSource::PcapFileSource(std::istream& in, PcapSourceOptions options)
    : reader_(std::make_unique<PcapReader>(in)) {
  intern_instruments(options.metrics);
}

PcapFileSource::~PcapFileSource() = default;

void PcapFileSource::intern_instruments(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  packets_total_ = &metrics->counter("scidive_capture_packets_total",
                                     "Packets delivered by a capture source",
                                     {{"source", "pcap"}});
  drops_malformed_ = &metrics->counter(
      "scidive_capture_drops_total",
      "Packets a capture source could not deliver",
      {{"reason", "malformed"}, {"source", "pcap"}});
  drops_skipped_ = &metrics->counter(
      "scidive_capture_drops_total",
      "Packets a capture source could not deliver",
      {{"reason", "non_ip"}, {"source", "pcap"}});
}

bool PcapFileSource::next(pkt::Packet* out) {
  if (reader_ == nullptr) return false;
  const uint64_t skipped_before = reader_->stats().records_skipped;
  const bool got = reader_->next(out);
  if (drops_skipped_ != nullptr) {
    drops_skipped_->inc(reader_->stats().records_skipped - skipped_before);
  }
  if (got) {
    if (packets_total_ != nullptr) packets_total_->inc();
    return true;
  }
  if (!reader_->error().empty() && drops_malformed_ != nullptr) {
    drops_malformed_->inc();
  }
  return false;
}

bool PcapFileSource::ok() const {
  return open_error_.empty() && reader_ != nullptr && reader_->header_ok() &&
         reader_->error().empty();
}

std::string PcapFileSource::error() const {
  if (!open_error_.empty()) return open_error_;
  return reader_ != nullptr ? reader_->error() : std::string();
}

// --- PcapFileSink ---------------------------------------------------------

PcapFileSink::PcapFileSink(const std::string& path, PcapWriterOptions options) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!file->good()) return;  // ok() reports the failure
  owned_out_ = std::move(file);
  writer_ = std::make_unique<PcapWriter>(*owned_out_, options);
}

PcapFileSink::PcapFileSink(std::ostream& out, PcapWriterOptions options)
    : writer_(std::make_unique<PcapWriter>(out, options)) {}

PcapFileSink::~PcapFileSink() = default;

void PcapFileSink::write(const pkt::Packet& packet) {
  if (writer_ != nullptr) writer_->write(packet);
}

}  // namespace scidive::capture
