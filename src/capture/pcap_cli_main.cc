// scidive_pcap: the capture subsystem's operator tool.
//
//   scidive_pcap export SCENARIO OUT.pcap [--seed N] [--link raw|ethernet]
//                [--users N] [--packets N]
//       Run a deterministic scenario and record every hub packet to a pcap
//       file. Scenarios: bye_attack, fake_im, call_hijack, rtp_flood,
//       benign, carrier_mix. The same seed always produces the same bytes.
//
//   scidive_pcap inspect FILE.pcap
//       Decode the capture and print link type, record counts, skip/
//       truncation counters and the covered time span.
//
//   scidive_pcap replay FILE.pcap [--workers N] [--home IP]... [--metrics]
//       Feed the capture through a ScidiveEngine (or a ShardedEngine with
//       --workers > 1) and print the alerts it raises. --home scopes the
//       deployment to an endpoint (testbed client A is 10.0.0.1); default
//       is to inspect everything. --metrics dumps the full Prometheus
//       exposition after the run.
#include <cstdio>
#include <set>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "capture/carrier_mix.h"
#include "capture/pcap.h"
#include "obs/metrics.h"
#include "scidive/engine.h"
#include "scidive/sharded_engine.h"
#include "testbed/testbed.h"
#include "testbed/workload.h"

namespace {

using scidive::capture::CarrierMixConfig;
using scidive::capture::CarrierMixSource;
using scidive::capture::PcapFileSink;
using scidive::capture::PcapFileSource;
using scidive::capture::PcapLinkType;
using scidive::capture::PcapWriterOptions;
namespace pkt = scidive::pkt;

int usage(int status) {
  std::fprintf(
      status == 0 ? stdout : stderr,
      "usage: scidive_pcap export SCENARIO OUT.pcap [--seed N] [--link raw|ethernet]\n"
      "                    [--users N] [--packets N]\n"
      "       scidive_pcap inspect FILE.pcap\n"
      "       scidive_pcap replay FILE.pcap [--workers N] [--home IP]... [--metrics]\n"
      "scenarios: bye_attack fake_im call_hijack rtp_flood benign carrier_mix\n");
  return status;
}

bool run_scenario(const std::string& name, uint64_t seed, scidive::capture::PacketSink& sink) {
  using scidive::testbed::Testbed;
  using scidive::testbed::TestbedConfig;

  if (name == "carrier_mix") return false;  // handled by the caller
  TestbedConfig cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.net().add_tap(sink.tap());
  if (name == "bye_attack") {
    tb.establish_call(scidive::sec(3));
    tb.inject_bye_attack();
    tb.run_for(scidive::sec(1));
  } else if (name == "fake_im") {
    tb.register_all();
    tb.client_b().add_contact(tb.client_a().aor(), tb.client_a().sip_endpoint());
    tb.client_b().send_im("alice", "lunch at noon? - bob");
    tb.run_for(scidive::sec(1));
    tb.inject_fake_im();
    tb.run_for(scidive::sec(1));
  } else if (name == "call_hijack") {
    tb.establish_call(scidive::sec(3));
    tb.inject_call_hijack();
    tb.run_for(scidive::sec(1));
  } else if (name == "rtp_flood") {
    tb.establish_call(scidive::sec(3));
    tb.inject_rtp_flood(30);
    tb.run_for(scidive::sec(1));
  } else if (name == "benign") {
    tb.register_all();
    scidive::testbed::BenignWorkload workload(tb, {});
    workload.schedule();
    tb.run_for(scidive::sec(70));
  } else {
    return false;
  }
  return true;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage(2);
  const std::string scenario = args[0];
  const std::string out_path = args[1];
  uint64_t seed = 2004;
  uint64_t users = 100000;
  uint64_t packets = 20000;
  PcapWriterOptions options;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::stoull(args[++i]);
    } else if (args[i] == "--users" && i + 1 < args.size()) {
      users = std::stoull(args[++i]);
    } else if (args[i] == "--packets" && i + 1 < args.size()) {
      packets = std::stoull(args[++i]);
    } else if (args[i] == "--link" && i + 1 < args.size()) {
      const std::string& link = args[++i];
      if (link == "raw") {
        options.link = PcapLinkType::kRaw;
      } else if (link == "ethernet") {
        options.link = PcapLinkType::kEthernet;
      } else {
        std::fprintf(stderr, "scidive_pcap: unknown link type '%s'\n", link.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "scidive_pcap: bad export argument '%s'\n", args[i].c_str());
      return 2;
    }
  }

  PcapFileSink sink(out_path, options);
  if (!sink.ok()) {
    std::fprintf(stderr, "scidive_pcap: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (scenario == "carrier_mix") {
    CarrierMixConfig cfg;
    cfg.seed = seed;
    cfg.provisioned_users = users;
    cfg.max_packets = packets;
    CarrierMixSource source(cfg);
    pkt::Packet packet;
    while (source.next(&packet)) sink.write(packet);
  } else if (!run_scenario(scenario, seed, sink)) {
    std::fprintf(stderr, "scidive_pcap: unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }
  std::printf("%s: %llu packets\n", out_path.c_str(),
              static_cast<unsigned long long>(sink.packets_written()));
  return 0;
}

int cmd_inspect(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage(2);
  std::ifstream in(args[0], std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "scidive_pcap: cannot open %s\n", args[0].c_str());
    return 1;
  }
  scidive::capture::PcapReader reader(in);
  if (!reader.header_ok()) {
    std::fprintf(stderr, "scidive_pcap: %s: %s\n", args[0].c_str(), reader.error().c_str());
    return 1;
  }
  std::printf("link: %s  snaplen: %u\n",
              reader.link_type() == PcapLinkType::kEthernet ? "ethernet" : "raw",
              reader.snaplen());

  pkt::Packet packet;
  scidive::SimTime first = 0, last = 0;
  bool any = false;
  uint64_t bytes = 0;
  while (reader.next(&packet)) {
    if (!any) first = packet.timestamp;
    last = packet.timestamp;
    bytes += packet.data.size();
    any = true;
  }
  const auto& stats = reader.stats();
  std::printf("records: %llu decoded, %llu skipped (non-IP), %llu truncated, %llu bytes\n",
              static_cast<unsigned long long>(stats.records_read),
              static_cast<unsigned long long>(stats.records_skipped),
              static_cast<unsigned long long>(stats.records_truncated),
              static_cast<unsigned long long>(bytes));
  if (any) {
    std::printf("span: %.6fs .. %.6fs (%.6fs)\n",
                static_cast<double>(first) / scidive::kSecond,
                static_cast<double>(last) / scidive::kSecond,
                static_cast<double>(last - first) / scidive::kSecond);
  }
  if (!reader.error().empty()) {
    std::fprintf(stderr, "scidive_pcap: %s: %s\n", args[0].c_str(), reader.error().c_str());
    return 1;
  }
  return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  if (args.empty()) return usage(2);
  const std::string path = args[0];
  size_t workers = 1;
  bool dump_metrics = false;
  std::set<pkt::Ipv4Address> home;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--workers" && i + 1 < args.size()) {
      workers = std::stoul(args[++i]);
    } else if (args[i] == "--home" && i + 1 < args.size()) {
      auto addr = pkt::Ipv4Address::parse(args[++i]);
      if (!addr) {
        std::fprintf(stderr, "scidive_pcap: bad address '%s'\n", args[i].c_str());
        return 2;
      }
      home.insert(*addr);
    } else if (args[i] == "--metrics") {
      dump_metrics = true;
    } else {
      std::fprintf(stderr, "scidive_pcap: bad replay argument '%s'\n", args[i].c_str());
      return 2;
    }
  }

  PcapFileSource source(path);
  if (!source.ok()) {
    std::fprintf(stderr, "scidive_pcap: %s: %s\n", path.c_str(), source.error().c_str());
    return 1;
  }

  scidive::core::EngineConfig engine_config;
  engine_config.home_addresses = home;
  std::vector<scidive::core::Alert> alerts;
  uint64_t fed = 0;
  std::string exposition;
  if (workers <= 1) {
    scidive::core::ScidiveEngine engine(engine_config);
    fed = engine.run(source);
    alerts.assign(engine.alerts().alerts().begin(), engine.alerts().alerts().end());
    if (dump_metrics) exposition = scidive::obs::to_prometheus(engine.metrics_snapshot());
  } else {
    scidive::core::ShardedEngineConfig cfg;
    cfg.engine = engine_config;
    cfg.num_shards = workers;
    scidive::core::ShardedEngine engine(cfg);
    fed = engine.run(source);
    alerts = engine.merged_alerts();
    if (dump_metrics) exposition = scidive::obs::to_prometheus(engine.metrics_snapshot());
    engine.stop();
  }
  if (!source.error().empty()) {
    std::fprintf(stderr, "scidive_pcap: %s: %s\n", path.c_str(), source.error().c_str());
  }

  std::printf("replayed %llu packets through %zu worker%s: %zu alert%s\n",
              static_cast<unsigned long long>(fed), workers, workers == 1 ? "" : "s",
              alerts.size(), alerts.size() == 1 ? "" : "s");
  for (const auto& alert : alerts) std::printf("  %s\n", alert.to_string().c_str());
  if (dump_metrics) std::fputs(exposition.c_str(), stdout);
  return source.error().empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "--help" || command == "-h") return usage(0);
  if (command == "export") return cmd_export(args);
  if (command == "inspect") return cmd_inspect(args);
  if (command == "replay") return cmd_replay(args);
  std::fprintf(stderr, "scidive_pcap: unknown command '%s'\n", command.c_str());
  return usage(2);
}
