// CarrierMixSource: a statistical million-user workload behind the
// PacketSource interface. Everything the scalability story needed and
// netsim could not give it: registration churn with digest challenges and
// failures, Poisson call arrivals with exponential holds and in-call RTP,
// instant messages, re-INVITE mid-call mobility, and a diurnal load curve —
// for 1M+ provisioned AORs with memory bounded by *active* sessions.
//
// How 1M users cost nothing: a provisioned user is just an index in
// [0, provisioned_users). Picking who registers, calls or messages is a
// PRNG draw of an index; the AOR spelling ("u<idx>@carrier.example") and
// its address (10.0.0.0/8 + idx) are derived on demand. A user only
// materializes — one SymbolTable interning of the AOR plus a FlatMap slot —
// the first time traffic touches them, so resident state scales with the
// users the run actually exercised, never with the provisioned count.
//
// Determinism: every stochastic decision comes from a counter-based
// splitmix64 draw (seed, draw-index) — 16 bytes of generator state, no
// hidden stream — and the internal event heap breaks time ties by
// insertion sequence. Identical configs therefore replay byte-identical
// packet streams, timestamps included; the replay test pins this.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "capture/packet_source.h"
#include "common/clock.h"
#include "common/flat_map.h"
#include "common/symbol.h"
#include "obs/metrics.h"
#include "pkt/addr.h"

namespace scidive::capture {

struct CarrierMixConfig {
  uint64_t seed = 2004;
  uint64_t provisioned_users = 1'000'000;

  /// Poisson arrival rates at diurnal load 1.0, in events per simulated
  /// second across the whole deployment.
  double call_rate_hz = 50.0;
  double im_rate_hz = 20.0;
  double register_rate_hz = 30.0;

  double mean_call_hold_sec = 30.0;  // exponential call duration
  SimDuration rtp_interval = msec(20);

  /// Fraction of calls that move their media mid-call (mobility re-INVITE,
  /// the paper's false-alarm bait: benign when the IDS sees the signaling).
  double reinvite_probability = 0.05;
  /// Fraction of REGISTERs the registrar challenges (401 + digest retry).
  double digest_challenge_probability = 0.3;
  /// Fraction of challenged retries that fail again (wrong password —
  /// ambient auth failure noise, not an attack ramp).
  double digest_failure_probability = 0.05;

  /// Sinusoidal load modulation: rate(t) = base * (1 + A sin(2πt/period)),
  /// floored at 5% of base. 0 disables (flat load).
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = sec(600);

  /// SPIT spam cohort riding on the benign mix (0 disables). This many
  /// dedicated spam identities (addresses in 172.16/12, AORs
  /// "spit<k>@carrier.example") place call attempts as one Poisson process
  /// at spit_call_rate_hz total across the cohort; each attempt rings for
  /// spit_hold and is then CANCELled — the ring-and-abandon shape the SPIT
  /// graylisting rule keys on, with victims drawn from the benign users.
  size_t spit_callers = 0;
  double spit_call_rate_hz = 5.0;
  SimDuration spit_hold = msec(400);

  /// Hard bound on concurrent calls: arrivals beyond it are skipped and
  /// counted, so memory stays bounded no matter the rate/hold product.
  size_t max_active_calls = 65536;
  /// Stop after this many packets (0 = unbounded; callers must bound
  /// elsewhere — the generator never exhausts on its own).
  uint64_t max_packets = 0;

  obs::MetricsRegistry* metrics = nullptr;
};

class CarrierMixSource : public PacketSource {
 public:
  explicit CarrierMixSource(CarrierMixConfig config = {});

  bool next(pkt::Packet* out) override;
  std::string_view name() const override { return "carrier_mix"; }

  // --- introspection (benches/tests) ---
  SimTime now() const { return now_; }
  uint64_t packets_generated() const { return packets_generated_; }
  size_t active_calls() const { return active_call_count_; }
  uint64_t calls_started() const { return calls_started_; }
  uint64_t calls_deferred() const { return calls_deferred_; }
  uint64_t ims_sent() const { return ims_sent_; }
  uint64_t registrations() const { return registrations_; }
  uint64_t digest_failures() const { return digest_failures_; }
  uint64_t reinvites() const { return reinvites_; }
  uint64_t spit_attempts() const { return spit_attempts_; }
  uint64_t spit_cancels() const { return spit_cancels_; }
  /// AOR spelling of spam identity `k`, for tests asserting who got flagged.
  static std::string spit_aor(uint32_t k);
  /// Users that have materialized (interned AOR + slot); the memory-bound
  /// claim is that this tracks traffic touched, not provisioned_users.
  size_t users_materialized() const { return interner_.size(); }

 private:
  enum class EventKind : uint8_t {
    kCallArrival,    // Poisson process tick: maybe start a call
    kCallAnswer,     // 200 OK to the INVITE
    kCallAck,        // ACK completing setup
    kCallMedia,      // one RTP packet, or the BYE once the hold expires
    kCallByeOk,      // 200 OK to the BYE; call slot is freed
    kCallReinvite,   // mid-call mobility re-INVITE
    kCallReinviteOk, // 200 OK adopting the new media endpoint
    kImArrival,      // Poisson tick: MESSAGE
    kImOk,           // 200 OK to the MESSAGE
    kRegArrival,     // Poisson tick: REGISTER
    kRegStep,        // 401 / authorized retry / 200 OK state machine
    kSpitArrival,    // Poisson tick: spam INVITE from the SPIT cohort
    kSpitCancel,     // ring-and-abandon: CANCEL after spit_hold
  };

  struct Pending {
    SimTime at = 0;
    uint64_t seq = 0;   // FIFO among same-time events
    EventKind kind;
    uint32_t slot = 0;  // call/exchange pool index (kind-dependent)
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  enum class CallPhase : uint8_t { kInviting, kAnswered, kEstablished, kClosing, kFree };

  struct Call {
    uint64_t id = 0;          // dense call number -> Call-ID "cm-<id>"
    uint32_t caller = 0;      // user indices
    uint32_t callee = 0;
    uint16_t caller_port = 0; // current caller media port (re-INVITE moves it)
    uint16_t callee_port = 0;
    uint16_t pending_port = 0;  // proposed by an in-flight re-INVITE
    uint16_t seq_a = 0;       // RTP sequence, caller->callee direction
    uint16_t seq_b = 0;
    uint32_t media_clock = 0; // shared RTP timestamp base
    SimTime end_at = 0;
    CallPhase phase = CallPhase::kFree;
    bool reinvite_pending = false;
    bool toward_callee = false;  // RTP direction alternator
  };

  struct RegExchange {
    uint64_t id = 0;  // dense exchange number -> Call-ID "reg-<id>"
    uint32_t user = 0;
    uint8_t step = 0;      // 0: sent REGISTER; 1: sent 401; 2: sent auth retry
    bool challenged = false;
    bool fails = false;
    bool free = true;
  };

  struct ImExchange {
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t id = 0;
    bool free = true;
  };

  struct SpitAttempt {
    uint32_t spammer = 0;  // cohort index, not a user index
    uint32_t victim = 0;   // benign user index
    uint64_t id = 0;       // dense attempt number -> Call-ID "spit-<id>"
    bool free = true;
  };

  // Counter-based PRNG: draw i of seed s is splitmix64(s ^ mix(i)). Pure
  // function of (seed, index) — replay-identical by construction.
  uint64_t draw_u64();
  double draw_unit();                       // [0, 1)
  uint64_t draw_below(uint64_t n);          // [0, n)
  double draw_exp(double mean);
  bool draw_chance(double p) { return p > 0 && draw_unit() < p; }

  double diurnal_factor(SimTime t) const;
  /// Next Poisson inter-arrival at the current diurnal load.
  SimDuration arrival_gap(double base_rate_hz);

  void schedule(SimTime at, EventKind kind, uint32_t slot = 0);

  // --- lazy user materialization ---
  pkt::Ipv4Address user_addr(uint32_t user) const;
  /// Interned AOR spelling; materializes the user on first touch.
  std::string_view user_aor(uint32_t user);
  std::string_view user_name(uint32_t user);  // the part left of '@'

  // --- packet synthesis (each returns one complete UDP/IPv4 datagram) ---
  pkt::Packet make_sip(uint32_t from_user, pkt::Endpoint src, pkt::Endpoint dst,
                       const std::string& text);
  void emit(pkt::Packet&& packet, pkt::Packet* out);

  // --- event handlers; return true when they produced a packet in *out ---
  bool on_call_arrival(pkt::Packet* out);
  bool on_call_answer(uint32_t slot, pkt::Packet* out);
  bool on_call_ack(uint32_t slot, pkt::Packet* out);
  bool on_call_media(uint32_t slot, pkt::Packet* out);
  bool on_call_bye_ok(uint32_t slot, pkt::Packet* out);
  bool on_call_reinvite(uint32_t slot, pkt::Packet* out);
  bool on_call_reinvite_ok(uint32_t slot, pkt::Packet* out);
  bool on_im_arrival(pkt::Packet* out);
  bool on_im_ok(uint32_t slot, pkt::Packet* out);
  bool on_reg_arrival(pkt::Packet* out);
  bool on_reg_step(uint32_t slot, pkt::Packet* out);
  bool on_spit_arrival(pkt::Packet* out);
  bool on_spit_cancel(uint32_t slot, pkt::Packet* out);

  static pkt::Ipv4Address spit_addr(uint32_t k);

  uint32_t alloc_call();
  void free_call(uint32_t slot);
  uint32_t alloc_reg();
  uint32_t alloc_im();
  uint32_t alloc_spit();

  CarrierMixConfig config_;
  uint64_t draw_counter_ = 0;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, Later> heap_;

  std::vector<Call> calls_;
  std::vector<uint32_t> free_calls_;
  size_t active_call_count_ = 0;
  std::vector<RegExchange> regs_;
  std::vector<uint32_t> free_regs_;
  std::vector<ImExchange> ims_;
  std::vector<uint32_t> free_ims_;
  std::vector<SpitAttempt> spits_;
  std::vector<uint32_t> free_spits_;

  SymbolTable interner_;                  // AOR spellings, interned on first touch
  FlatMap<uint32_t, Symbol> user_syms_;   // user index -> interned AOR

  uint64_t packets_generated_ = 0;
  uint64_t call_counter_ = 0;
  uint64_t im_counter_ = 0;
  uint64_t reg_counter_ = 0;
  uint64_t calls_started_ = 0;
  uint64_t calls_deferred_ = 0;
  uint64_t ims_sent_ = 0;
  uint64_t registrations_ = 0;
  uint64_t digest_failures_ = 0;
  uint64_t reinvites_ = 0;
  uint64_t spit_counter_ = 0;
  uint64_t spit_attempts_ = 0;
  uint64_t spit_cancels_ = 0;

  obs::Counter* packets_total_ = nullptr;
  obs::Counter* drops_deferred_ = nullptr;
};

}  // namespace scidive::capture
