#include "capture/udp_source.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "pkt/packet.h"

namespace scidive::capture {
namespace {

uint64_t steady_ns() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

UdpSocketSource::UdpSocketSource(UdpSourceConfig config) : config_(std::move(config)) {
  auto bind_addr = pkt::Ipv4Address::parse(config_.bind_address);
  if (!bind_addr) {
    error_ = "bad bind address: " + config_.bind_address;
    return;
  }

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + strerror(errno);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_addr->value());
  addr.sin_port = htons(config_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("bind: ") + strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  local_ = {pkt::Ipv4Address(ntohl(addr.sin_addr.s_addr)), ntohs(addr.sin_port)};

  if (config_.ring_capacity < 2) config_.ring_capacity = 2;
  if (config_.recv_batch == 0) config_.recv_batch = 1;
  ring_ = std::make_unique<SpscQueue<Slot>>(config_.ring_capacity);
  epoch_steady_ns_ = steady_ns();

  if (obs::MetricsRegistry* metrics = config_.metrics) {
    packets_total_ = &metrics->counter("scidive_capture_packets_total",
                                       "Packets delivered by a capture source",
                                       {{"source", "udp"}});
    drops_ring_full_ = &metrics->counter(
        "scidive_capture_drops_total",
        "Packets a capture source could not deliver",
        {{"reason", "ring_full"}, {"source", "udp"}});
    lag_ns_ = &metrics->histogram("scidive_capture_lag_ns",
                                  "Receive-to-consume delay of the live source",
                                  obs::latency_ns_bounds(), {{"source", "udp"}});
  }

  reader_ = std::thread([this] { reader_loop(); });
}

UdpSocketSource::~UdpSocketSource() {
  stop();
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocketSource::stop() { stopping_.store(true, std::memory_order_release); }

void UdpSocketSource::enqueue(const uint8_t* payload, size_t len, uint32_t src_addr,
                              uint16_t src_port, uint64_t recv_ns) {
  Slot slot;
  slot.packet = pkt::make_udp_packet({pkt::Ipv4Address(src_addr), src_port}, local_,
                                     std::span<const uint8_t>(payload, len));
  slot.packet.timestamp =
      static_cast<SimTime>((recv_ns - epoch_steady_ns_) / 1000);  // µs since start
  slot.recv_steady_ns = recv_ns;
  received_.fetch_add(1, std::memory_order_relaxed);
  if (!ring_->try_push(std::move(slot))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (drops_ring_full_ != nullptr) drops_ring_full_->inc();
  }
}

void UdpSocketSource::reader_loop() {
  const size_t batch = config_.recv_batch;
  const size_t buf_len = config_.max_datagram;
  std::vector<uint8_t> buffers(batch * buf_len);

#ifdef __linux__
  // recvmmsg: one syscall per batch. Per-message state is rebuilt each
  // round (the kernel scribbles on msg_len / address lengths).
  std::vector<mmsghdr> msgs(batch);
  std::vector<iovec> iovs(batch);
  std::vector<sockaddr_in> addrs(batch);
#endif

  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_

#ifdef __linux__
    for (size_t i = 0; i < batch; ++i) {
      iovs[i] = {buffers.data() + i * buf_len, buf_len};
      msgs[i] = {};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    }
    const int n = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(batch),
                             MSG_DONTWAIT, nullptr);
    if (n <= 0) continue;
    const uint64_t now_ns = steady_ns();
    for (int i = 0; i < n; ++i) {
      enqueue(buffers.data() + static_cast<size_t>(i) * buf_len, msgs[i].msg_len,
              ntohl(addrs[static_cast<size_t>(i)].sin_addr.s_addr),
              ntohs(addrs[static_cast<size_t>(i)].sin_port), now_ns);
    }
#else
    for (size_t i = 0; i < batch; ++i) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t got =
          ::recvfrom(fd_, buffers.data(), buf_len, MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (got < 0) break;
      enqueue(buffers.data(), static_cast<size_t>(got), ntohl(from.sin_addr.s_addr),
              ntohs(from.sin_port), steady_ns());
    }
#endif
  }
}

bool UdpSocketSource::next(pkt::Packet* out) {
  if (ring_ == nullptr) return false;
  Slot slot;
  for (;;) {
    if (ring_->try_pop(slot)) {
      if (lag_ns_ != nullptr) {
        const uint64_t now = steady_ns();
        lag_ns_->observe(now > slot.recv_steady_ns ? now - slot.recv_steady_ns : 0);
      }
      if (packets_total_ != nullptr) packets_total_->inc();
      *out = std::move(slot.packet);
      return true;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain race: the reader may have pushed between the failed pop and
      // the stop check; one more pop attempt settles it.
      if (ring_->try_pop(slot)) {
        *out = std::move(slot.packet);
        return true;
      }
      return false;
    }
    if (!config_.blocking) return false;
    pollfd pfd{fd_, POLLIN, 0};
    ::poll(&pfd, 1, /*timeout_ms=*/10);  // cheap wait; reader fills the ring
  }
}

}  // namespace scidive::capture
