#include "voip/attack.h"

#include "common/strings.h"
#include "rtp/rtcp.h"
#include "rtp/rtp.h"
#include "sip/sdp.h"

namespace scidive::voip {

using sip::Method;
using sip::SipMessage;

// --- CallSniffer ---

netsim::PacketTap CallSniffer::tap() {
  return [this](const pkt::Packet& packet) {
    auto udp = pkt::parse_udp_packet(packet.data);
    if (!udp) return;
    auto msg = SipMessage::parse(udp.value().payload);
    if (!msg) return;
    ++sip_seen_;
    on_sip(msg.value(), udp.value().source(), udp.value().destination());
  };
}

void CallSniffer::on_sip(const SipMessage& msg, pkt::Endpoint src, pkt::Endpoint dst) {
  auto call_id = msg.call_id();
  if (!call_id) return;
  auto from = msg.from();
  auto to = msg.to();
  if (!from.ok() || !to.ok()) return;

  if (msg.is_request() && msg.method() == Method::kInvite) {
    // An in-dialog re-INVITE (To carries a tag) means the media moved; it
    // must not overwrite what we learned about the original caller.
    if (to.value().tag()) {
      auto existing = by_call_id_.find(*call_id);
      if (existing != by_call_id_.end()) existing->second.migrated = true;
      return;
    }
    auto cs = msg.cseq();
    auto [it, inserted] = by_call_id_.try_emplace(*call_id);
    ObservedCall& call = it->second;
    if (inserted) {
      order_.push_back(*call_id);
      call.call_id = *call_id;
      call.caller_aor = from.value().uri.address_of_record();
      call.callee_aor = to.value().uri.address_of_record();
      call.caller_tag = from.value().tag().value_or("");
    }
    if (cs.ok()) call.last_caller_cseq = std::max(call.last_caller_cseq, cs.value().number);
    // The caller's SIP endpoint comes from its Contact header (the packet
    // source may be the proxy on the second hop).
    auto contact = msg.contact();
    if (contact.ok()) {
      if (auto ip = pkt::Ipv4Address::parse(contact.value().uri.host()))
        call.caller_sip = {*ip, contact.value().uri.port_or_default()};
    }
    auto sdp = sip::Sdp::parse(msg.body());
    if (sdp.ok() && sdp.value().audio() != nullptr) {
      if (auto ip = pkt::Ipv4Address::parse(sdp.value().connection_addr))
        call.caller_media = {*ip, sdp.value().audio()->port};
    }
    (void)src;
    (void)dst;
    return;
  }

  auto it = by_call_id_.find(*call_id);
  if (it == by_call_id_.end()) return;
  ObservedCall& call = it->second;

  if (msg.is_response() && msg.status_code() == 200) {
    auto cs = msg.cseq();
    if (cs.ok() && cs.value().method == "INVITE") {
      call.confirmed = true;
      if (to.value().tag()) call.callee_tag = *to.value().tag();
      auto contact = msg.contact();
      if (contact.ok()) {
        if (auto ip = pkt::Ipv4Address::parse(contact.value().uri.host()))
          call.callee_sip = {*ip, contact.value().uri.port_or_default()};
      }
      auto sdp = sip::Sdp::parse(msg.body());
      if (sdp.ok() && sdp.value().audio() != nullptr) {
        if (auto ip = pkt::Ipv4Address::parse(sdp.value().connection_addr))
          call.callee_media = {*ip, sdp.value().audio()->port};
      }
    }
    return;
  }
  if (msg.is_request() && msg.method() == Method::kBye) {
    call.torn_down = true;
  }
}

std::vector<ObservedCall> CallSniffer::calls() const {
  std::vector<ObservedCall> out;
  out.reserve(order_.size());
  for (const auto& id : order_) out.push_back(by_call_id_.at(id));
  return out;
}

std::optional<ObservedCall> CallSniffer::latest_active_call() const {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const ObservedCall& call = by_call_id_.at(*it);
    if (call.confirmed && !call.torn_down) return call;
  }
  return std::nullopt;
}

std::optional<ObservedCall> CallSniffer::latest_active_call_of(const std::string& aor) const {
  // Prefer two-way calls whose media positions are still as signaled at
  // setup (an already-migrated call makes a poor forgery target: one side
  // has legitimately gone silent).
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const ObservedCall& call = by_call_id_.at(*it);
    if (call.confirmed && !call.torn_down && !call.migrated &&
        (call.caller_aor == aor || call.callee_aor == aor))
      return call;
  }
  return std::nullopt;
}

// --- ByeAttacker ---

void ByeAttacker::attack(const ObservedCall& call, bool attack_caller) {
  // Victim = the side that receives the forged BYE; impostor = the peer the
  // BYE pretends to come from.
  pkt::Endpoint victim = attack_caller ? call.caller_sip : call.callee_sip;
  pkt::Endpoint impostor = attack_caller ? call.callee_sip : call.caller_sip;
  const std::string& victim_aor = attack_caller ? call.caller_aor : call.callee_aor;
  const std::string& impostor_aor = attack_caller ? call.callee_aor : call.caller_aor;
  const std::string& victim_tag = attack_caller ? call.caller_tag : call.callee_tag;
  const std::string& impostor_tag = attack_caller ? call.callee_tag : call.caller_tag;

  auto bye = SipMessage::request(
      Method::kBye, sip::SipUri(victim_aor.substr(0, victim_aor.find('@')),
                                victim.addr.to_string(), victim.port));
  sip::Via via;
  via.host = impostor.addr.to_string();
  via.port = impostor.port;
  via.params["branch"] = str::format("z9hG4bK-forged-%llu",
                                     static_cast<unsigned long long>(byes_sent_ + 1));
  bye.headers().add("Via", via.to_string());
  bye.headers().add("Max-Forwards", "70");
  bye.headers().add("From", "<sip:" + impostor_aor + ">;tag=" + impostor_tag);
  bye.headers().add("To", "<sip:" + victim_aor + ">;tag=" + victim_tag);
  bye.headers().add("Call-ID", call.call_id);
  bye.headers().add("CSeq", str::format("%u BYE", call.last_caller_cseq + 100));

  // Spoof the source IP: on a shared 2004-era segment nothing stops this.
  auto packet = pkt::make_udp_packet(impostor, victim, from_string(bye.to_string()));
  host_.send_raw(std::move(packet));
  ++byes_sent_;
}

// --- FakeImAttacker ---

void FakeImAttacker::send(pkt::Endpoint victim_sip, const std::string& claimed_from_aor,
                          const std::string& text) {
  auto msg = SipMessage::request(
      Method::kMessage, sip::SipUri("", victim_sip.addr.to_string(), victim_sip.port));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = 5060;
  via.params["branch"] = str::format("z9hG4bK-fakeim-%llu",
                                     static_cast<unsigned long long>(counter_));
  msg.headers().add("Via", via.to_string());
  msg.headers().add("Max-Forwards", "70");
  msg.headers().add("From", "<sip:" + claimed_from_aor + ">;tag=" +
                                str::format("t%llu", static_cast<unsigned long long>(counter_)));
  msg.headers().add("To", "<sip:" + claimed_from_aor + ">");  // victim display irrelevant
  msg.headers().add("Call-ID",
                    str::format("fakeim-%llu", static_cast<unsigned long long>(counter_)));
  msg.headers().add("CSeq", "1 MESSAGE");
  msg.set_body(text, "text/plain");
  ++counter_;
  // Sent from the attacker's own address: the header lies, the IP doesn't.
  host_.send_udp(5060, victim_sip, msg.to_string());
  ++messages_sent_;
}

void FakeImAttacker::send_spoofed(pkt::Endpoint victim_sip, const std::string& claimed_from_aor,
                                  pkt::Endpoint spoofed_source, const std::string& text) {
  auto msg = SipMessage::request(
      Method::kMessage, sip::SipUri("", victim_sip.addr.to_string(), victim_sip.port));
  sip::Via via;
  via.host = spoofed_source.addr.to_string();
  via.port = spoofed_source.port;
  via.params["branch"] = str::format("z9hG4bK-fakeim-sp-%llu",
                                     static_cast<unsigned long long>(counter_));
  msg.headers().add("Via", via.to_string());
  msg.headers().add("Max-Forwards", "70");
  msg.headers().add("From", "<sip:" + claimed_from_aor + ">;tag=" +
                                str::format("sp%llu", static_cast<unsigned long long>(counter_)));
  msg.headers().add("To", "<sip:" + claimed_from_aor + ">");
  msg.headers().add("Call-ID",
                    str::format("fakeim-sp-%llu", static_cast<unsigned long long>(counter_)));
  msg.headers().add("CSeq", "1 MESSAGE");
  msg.set_body(text, "text/plain");
  ++counter_;
  auto packet = pkt::make_udp_packet(spoofed_source, victim_sip, from_string(msg.to_string()));
  host_.send_raw(std::move(packet));
  ++messages_sent_;
}

// --- CallHijacker ---

void CallHijacker::attack(const ObservedCall& call, pkt::Endpoint new_media,
                          bool attack_caller) {
  pkt::Endpoint victim = attack_caller ? call.caller_sip : call.callee_sip;
  pkt::Endpoint impostor = attack_caller ? call.callee_sip : call.caller_sip;
  const std::string& victim_aor = attack_caller ? call.caller_aor : call.callee_aor;
  const std::string& impostor_aor = attack_caller ? call.callee_aor : call.caller_aor;
  const std::string& victim_tag = attack_caller ? call.caller_tag : call.callee_tag;
  const std::string& impostor_tag = attack_caller ? call.callee_tag : call.caller_tag;

  auto reinvite = SipMessage::request(
      Method::kInvite, sip::SipUri(victim_aor.substr(0, victim_aor.find('@')),
                                   victim.addr.to_string(), victim.port));
  sip::Via via;
  via.host = impostor.addr.to_string();
  via.port = impostor.port;
  via.params["branch"] = str::format("z9hG4bK-hijack-%llu",
                                     static_cast<unsigned long long>(reinvites_sent_ + 1));
  reinvite.headers().add("Via", via.to_string());
  reinvite.headers().add("Max-Forwards", "70");
  reinvite.headers().add("From", "<sip:" + impostor_aor + ">;tag=" + impostor_tag);
  reinvite.headers().add("To", "<sip:" + victim_aor + ">;tag=" + victim_tag);
  reinvite.headers().add("Call-ID", call.call_id);
  reinvite.headers().add("CSeq", str::format("%u INVITE", call.last_caller_cseq + 100));
  reinvite.headers().add("Contact", "<sip:" + impostor_aor.substr(0, impostor_aor.find('@')) +
                                        "@" + new_media.addr.to_string() + ">");
  auto sdp = sip::make_audio_sdp(new_media.addr.to_string(), new_media.port, 999, 2);
  reinvite.set_body(sdp.to_string(), "application/sdp");

  auto packet = pkt::make_udp_packet(impostor, victim, from_string(reinvite.to_string()));
  host_.send_raw(std::move(packet));
  ++reinvites_sent_;
}

// --- RtcpByeForger ---

void RtcpByeForger::attack(const ObservedCall& call, bool attack_caller) {
  // The forged RTCP BYE claims the impostor's stream ended; it is aimed at
  // the victim's RTCP port with the impostor's media address spoofed.
  pkt::Endpoint victim_media = attack_caller ? call.caller_media : call.callee_media;
  pkt::Endpoint impostor_media = attack_caller ? call.callee_media : call.caller_media;
  rtp::RtcpBye bye;
  bye.ssrcs = {0xdeadbeef};  // SSRC is unauthenticated; any value passes
  bye.reason = "forged";
  pkt::Endpoint src{impostor_media.addr, static_cast<uint16_t>(impostor_media.port + 1)};
  pkt::Endpoint dst{victim_media.addr, static_cast<uint16_t>(victim_media.port + 1)};
  auto packet = pkt::make_udp_packet(src, dst, rtp::serialize_rtcp(bye));
  host_.send_raw(std::move(packet));
  ++byes_sent_;
}

// --- RtpInjector ---

void RtpInjector::start(pkt::Endpoint victim_media, Options options) {
  tick(victim_media, options, options.count);
}

void RtpInjector::tick(pkt::Endpoint victim, Options options, int remaining) {
  if (remaining <= 0) return;
  Bytes garbage(rtp::kRtpMinHeaderLen + options.payload_len);
  for (auto& b : garbage) b = static_cast<uint8_t>(rng_.next_u32());
  if (options.keep_version_bits) {
    garbage[0] = 0x80;  // V=2, no padding/extension/CSRC
    garbage[1] &= 0x7f; // sane payload type byte
  }
  host_.send_udp(40000, victim, garbage);
  ++packets_sent_;
  host_.after(options.interval, [this, victim, options, remaining] {
    tick(victim, options, remaining - 1);
  });
}

// --- RegisterFlooder ---

RegisterFlooder::RegisterFlooder(netsim::Host& host, pkt::Endpoint proxy, std::string user,
                                 std::string domain, uint16_t local_port)
    : host_(host),
      proxy_(proxy),
      user_(std::move(user)),
      domain_(std::move(domain)),
      local_port_(local_port),
      call_id_(str::format("flood-%s@%s", user_.c_str(), host.address().to_string().c_str())) {
  host_.bind_udp(local_port_, [this](pkt::Endpoint, std::span<const uint8_t> payload, SimTime) {
    auto rsp = SipMessage::parse(payload);
    if (rsp.ok() && rsp.value().is_response() && rsp.value().status_code() == 401)
      ++responses_401_;  // noted — and pointedly ignored
  });
}

void RegisterFlooder::start(int count, SimDuration interval) {
  if (count <= 0) return;
  auto req = SipMessage::request(Method::kRegister, sip::SipUri("", domain_));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = local_port_;
  via.params["branch"] = str::format("z9hG4bK-flood-%u", ++cseq_);
  req.headers().add("Via", via.to_string());
  req.headers().add("Max-Forwards", "70");
  std::string aor = "<sip:" + user_ + "@" + domain_ + ">";
  req.headers().add("From", aor + ";tag=flood");
  req.headers().add("To", aor);
  req.headers().add("Call-ID", call_id_);
  req.headers().add("CSeq", str::format("%u REGISTER", cseq_));
  req.headers().add("Contact", "<sip:" + user_ + "@" + host_.address().to_string() +
                                   str::format(":%u", local_port_) + ">");
  host_.send_udp(local_port_, proxy_, req.to_string());
  ++sent_;
  host_.after(interval, [this, count, interval] { start(count - 1, interval); });
}

// --- PasswordGuesser ---

PasswordGuesser::PasswordGuesser(netsim::Host& host, pkt::Endpoint proxy, std::string user,
                                 std::string domain, uint16_t local_port)
    : host_(host),
      proxy_(proxy),
      user_(std::move(user)),
      domain_(std::move(domain)),
      local_port_(local_port),
      call_id_(str::format("guess-%s@%s", user_.c_str(), host.address().to_string().c_str())) {
  host_.bind_udp(local_port_, [this](pkt::Endpoint, std::span<const uint8_t> payload, SimTime) {
    auto rsp = SipMessage::parse(payload);
    if (rsp.ok() && rsp.value().is_response()) on_response(rsp.value());
  });
}

void PasswordGuesser::start(std::vector<std::string> guesses, SimDuration interval) {
  guesses_ = std::move(guesses);
  interval_ = interval;
  next_guess_ = 0;
  send_register(nullptr);  // first request unauthenticated, to earn a challenge
}

void PasswordGuesser::send_register(const std::string* guess) {
  auto req = SipMessage::request(Method::kRegister, sip::SipUri("", domain_));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = local_port_;
  via.params["branch"] = str::format("z9hG4bK-guess-%u", ++cseq_);
  req.headers().add("Via", via.to_string());
  req.headers().add("Max-Forwards", "70");
  std::string aor = "<sip:" + user_ + "@" + domain_ + ">";
  req.headers().add("From", aor + ";tag=guess");
  req.headers().add("To", aor);
  req.headers().add("Call-ID", call_id_);
  req.headers().add("CSeq", str::format("%u REGISTER", cseq_));
  req.headers().add("Contact", "<sip:" + user_ + "@" + host_.address().to_string() +
                                   str::format(":%u", local_port_) + ">");
  if (guess != nullptr && challenge_) {
    auto creds = sip::answer_challenge(*challenge_, user_, *guess, "REGISTER",
                                       "sip:" + domain_);
    req.headers().add("Authorization", creds.to_header_value());
    ++attempts_;
  }
  host_.send_udp(local_port_, proxy_, req.to_string());
}

void PasswordGuesser::on_response(const SipMessage& rsp) {
  if (succeeded_) return;
  if (rsp.status_code() == 200) {
    auto cs = rsp.cseq();
    if (cs.ok() && cs.value().method == "REGISTER" && attempts_ > 0) succeeded_ = true;
    return;
  }
  if (rsp.status_code() != 401) return;
  auto challenge_header = rsp.headers().get("WWW-Authenticate");
  if (challenge_header) {
    auto ch = sip::DigestChallenge::parse(*challenge_header);
    if (ch.ok()) challenge_ = ch.value();
  }
  if (next_guess_ >= guesses_.size() || !challenge_) return;  // dictionary exhausted
  std::string guess = guesses_[next_guess_++];
  host_.after(interval_, [this, guess] { send_register(&guess); });
}

// --- SpitCampaigner ---

SpitCampaigner::SpitCampaigner(netsim::Host& host, pkt::Endpoint proxy,
                               std::string caller_user, std::string domain, uint16_t sip_port)
    : host_(host),
      proxy_(proxy),
      caller_user_(std::move(caller_user)),
      domain_(std::move(domain)),
      sip_port_(sip_port) {
  host_.bind_udp(sip_port_, [this](pkt::Endpoint, std::span<const uint8_t> payload, SimTime) {
    auto rsp = SipMessage::parse(payload);
    if (rsp.ok() && rsp.value().is_response() && rsp.value().status_code() == 503)
      ++rejected_503_;  // graylisted — noted, and pointedly ignored
  });
}

void SpitCampaigner::start(std::vector<std::string> targets, int count, SimDuration interval,
                           SimDuration hold) {
  if (targets.empty() || count <= 0) return;
  targets_ = std::move(targets);
  interval_ = interval;
  hold_ = hold;
  place_next(count);
}

void SpitCampaigner::place_next(int remaining) {
  if (remaining <= 0) return;
  const std::string& target = targets_[next_target_++ % targets_.size()];
  const uint64_t n = ++counter_;
  std::string call_id = str::format("spit-%llu@%s", static_cast<unsigned long long>(n),
                                    host_.address().to_string().c_str());
  std::string tag = str::format("spittag-%llu", static_cast<unsigned long long>(n));
  std::string branch = str::format("z9hG4bK-spit-%llu", static_cast<unsigned long long>(n));
  std::string from = "<sip:" + caller_user_ + "@" + domain_ + ">;tag=" + tag;
  std::string to = "<sip:" + target + "@" + domain_ + ">";

  auto invite = SipMessage::request(Method::kInvite, sip::SipUri(target, domain_));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = sip_port_;
  via.params["branch"] = branch;
  invite.headers().add("Via", via.to_string());
  invite.headers().add("Max-Forwards", "70");
  invite.headers().add("From", from);
  invite.headers().add("To", to);
  invite.headers().add("Call-ID", call_id);
  invite.headers().add("CSeq", "1 INVITE");
  invite.headers().add("Contact", "<sip:" + caller_user_ + "@" +
                                      host_.address().to_string() +
                                      str::format(":%u", sip_port_) + ">");
  auto sdp = sip::make_audio_sdp(host_.address().to_string(), 17002, n);
  invite.set_body(sdp.to_string(), "application/sdp");
  host_.send_udp(sip_port_, proxy_, invite.to_string());
  ++invites_sent_;

  // Hang up before anyone can meaningfully answer: a CANCEL on the same
  // transaction (same branch, same CSeq number) `hold` later.
  host_.after(hold_, [this, call_id, tag, branch, from, to, target] {
    auto cancel = SipMessage::request(Method::kCancel, sip::SipUri(target, domain_));
    sip::Via via2;
    via2.host = host_.address().to_string();
    via2.port = sip_port_;
    via2.params["branch"] = branch;
    cancel.headers().add("Via", via2.to_string());
    cancel.headers().add("Max-Forwards", "70");
    cancel.headers().add("From", from);
    cancel.headers().add("To", to);
    cancel.headers().add("Call-ID", call_id);
    cancel.headers().add("CSeq", "1 CANCEL");
    host_.send_udp(sip_port_, proxy_, cancel.to_string());
  });
  host_.after(interval_, [this, remaining] { place_next(remaining - 1); });
}

// --- BillingFraudster ---

BillingFraudster::BillingFraudster(netsim::Host& host, pkt::Endpoint proxy, std::string domain,
                                   uint16_t sip_port, uint16_t rtp_port)
    : host_(host),
      proxy_(proxy),
      domain_(std::move(domain)),
      sip_port_(sip_port),
      rtp_port_(rtp_port) {
  host_.bind_udp(sip_port_, [this](pkt::Endpoint from, std::span<const uint8_t> payload,
                                   SimTime) { on_sip(from, payload); });
}

void BillingFraudster::place_fraudulent_call(const std::string& target_user,
                                             const std::string& billed_aor) {
  active_call_id_ = str::format("fraud-%llu@%s", static_cast<unsigned long long>(counter_++),
                                host_.address().to_string().c_str());
  local_tag_ = str::format("fraudtag-%llu", static_cast<unsigned long long>(counter_));

  auto invite = SipMessage::request(Method::kInvite, sip::SipUri(target_user, domain_));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = sip_port_;
  via.params["branch"] = str::format("z9hG4bK-fraud-%llu",
                                     static_cast<unsigned long long>(counter_));
  invite.headers().add("Via", via.to_string());
  invite.headers().add("Max-Forwards", "70");
  // The From header is the attacker's own (a throwaway identity)…
  invite.headers().add("From", "<sip:mallory@" + domain_ + ">;tag=" + local_tag_);
  invite.headers().add("To", "<sip:" + target_user + "@" + domain_ + ">");
  invite.headers().add("Call-ID", active_call_id_);
  invite.headers().add("CSeq", "1 INVITE");
  invite.headers().add("Contact", "<sip:mallory@" + host_.address().to_string() +
                                      str::format(":%u", sip_port_) + ">");
  // …while the crafted header exploits the proxy's billing bug (§3.2).
  invite.headers().add("X-Billing-Identity", billed_aor);
  auto sdp = sip::make_audio_sdp(host_.address().to_string(), rtp_port_, counter_);
  invite.set_body(sdp.to_string(), "application/sdp");
  host_.send_udp(sip_port_, proxy_, invite.to_string());
  ++calls_placed_;
}

void BillingFraudster::on_sip(pkt::Endpoint from, std::span<const uint8_t> payload) {
  auto msg = SipMessage::parse(payload);
  if (!msg.ok() || !msg.value().is_response()) return;
  const auto& rsp = msg.value();
  if (rsp.status_code() != 200 || rsp.call_id() != active_call_id_) return;
  auto cs = rsp.cseq();
  if (!cs.ok() || cs.value().method != "INVITE") return;

  // Complete the handshake: ACK direct to the callee's contact, then stream.
  pkt::Endpoint remote_sip = from;
  auto contact = rsp.contact();
  if (contact.ok()) {
    if (auto ip = pkt::Ipv4Address::parse(contact.value().uri.host()))
      remote_sip = {*ip, contact.value().uri.port_or_default()};
  }
  auto to_hdr = rsp.to();
  std::string remote_tag = to_hdr.ok() ? to_hdr.value().tag().value_or("") : "";

  auto ack = SipMessage::request(
      Method::kAck, sip::SipUri("", remote_sip.addr.to_string(), remote_sip.port));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = sip_port_;
  via.params["branch"] = str::format("z9hG4bK-fraudack-%llu",
                                     static_cast<unsigned long long>(counter_));
  ack.headers().add("Via", via.to_string());
  ack.headers().add("From", "<sip:mallory@" + domain_ + ">;tag=" + local_tag_);
  ack.headers().add("To", to_hdr.ok() ? to_hdr.value().to_string() : "<sip:x@y>");
  ack.headers().add("Call-ID", active_call_id_);
  ack.headers().add("CSeq", "1 ACK");
  host_.send_udp(sip_port_, remote_sip, ack.to_string());

  auto sdp = sip::Sdp::parse(rsp.body());
  if (sdp.ok() && sdp.value().audio() != nullptr) {
    if (auto ip = pkt::Ipv4Address::parse(sdp.value().connection_addr)) {
      media_tick({*ip, sdp.value().audio()->port}, 100);
    }
  }
}

void BillingFraudster::media_tick(pkt::Endpoint remote, int remaining) {
  if (remaining <= 0) return;
  rtp::RtpHeader h;
  h.sequence = static_cast<uint16_t>(1000 + 100 - remaining);
  h.timestamp = static_cast<uint32_t>((100 - remaining) * rtp::kSamplesPer20Ms);
  h.ssrc = 0xf4a0d;
  Bytes payload(160, 0xd5);
  host_.send_udp(rtp_port_, remote, rtp::serialize_rtp(h, payload));
  host_.after(msec(20), [this, remote, remaining] { media_tick(remote, remaining - 1); });
}

}  // namespace scidive::voip
