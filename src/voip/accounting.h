// The accounting subsystem of the §3.2 billing-fraud example: the proxy's
// AccountingClient sends CDR transactions over a tiny line-based UDP
// protocol ("ACC") to a BillingDatabase host, which stores them and acks.
// The IDS decodes ACC datagrams into accounting footprints and correlates
// them with the SIP trail.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "netsim/host.h"

namespace scidive::voip {

/// One accounting transaction on the wire.
struct AccRecord {
  enum class Kind { kStart, kStop };
  Kind kind = Kind::kStart;
  std::string call_id;
  std::string from_aor;  // the billed party
  std::string to_aor;
  SimTime timestamp = 0;

  /// Wire format: "ACC START|STOP call_id=<..> from=<..> to=<..> t=<usec>"
  std::string serialize() const;
  static Result<AccRecord> parse(std::string_view line);
};

constexpr uint16_t kAccPort = 9009;

/// Runs on the proxy host; fires CDR transactions at the database.
class AccountingClient {
 public:
  AccountingClient(netsim::Host& host, pkt::Endpoint database, uint16_t local_port = 9010)
      : host_(host), database_(database), local_port_(local_port) {}

  void call_started(const std::string& call_id, const std::string& from_aor,
                    const std::string& to_aor);
  void call_stopped(const std::string& call_id, const std::string& from_aor,
                    const std::string& to_aor);

  uint64_t records_sent() const { return records_sent_; }

 private:
  void send(AccRecord record);

  netsim::Host& host_;
  pkt::Endpoint database_;
  uint16_t local_port_;
  uint64_t records_sent_ = 0;
};

/// The database server: stores CDRs, replies "OK <n>".
class BillingDatabase {
 public:
  explicit BillingDatabase(netsim::Host& host);

  const std::vector<AccRecord>& records() const { return records_; }
  /// Total billed call-starts per AOR (who pays).
  std::map<std::string, int> bill_counts() const;

 private:
  netsim::Host& host_;
  std::vector<AccRecord> records_;
};

}  // namespace scidive::voip
