#include "voip/user_agent.h"

#include "common/logging.h"
#include "common/strings.h"
#include "rtp/rtcp.h"
#include "rtp/rtp.h"

namespace scidive::voip {

using sip::Method;
using sip::SipMessage;

namespace {

/// Turn a SIP URI whose host is a dotted-quad into a transport endpoint.
std::optional<pkt::Endpoint> uri_to_endpoint(const sip::SipUri& uri) {
  auto addr = pkt::Ipv4Address::parse(uri.host());
  if (!addr) return std::nullopt;
  return pkt::Endpoint{*addr, uri.port_or_default()};
}

}  // namespace

UserAgent::UserAgent(netsim::Host& host, UserAgentConfig config)
    : host_(host),
      config_(std::move(config)),
      tm_(sip::TransactionEnv{
          .send_message =
              [this](const SipMessage& m, pkt::Endpoint dst) {
                if (crashed_) return;
                host_.send_udp(config_.sip_port, dst, m.to_string());
              },
          .schedule = [this](SimDuration d,
                             std::function<void()> fn) { host_.after(d, std::move(fn)); },
          .now = [this] { return host_.now(); },
      }),
      jitter_buffer_(rtp::JitterBuffer::Config{.behavior = config_.jitter_behavior}),
      media_local_{host.address(), config_.rtp_port},
      next_rtp_port_(config_.rtp_port) {
  tm_.set_request_handler(
      [this](const SipMessage& req, pkt::Endpoint from) { handle_request(req, from); });
  tm_.set_stray_response_handler([this](const SipMessage& rsp, pkt::Endpoint) {
    // A retransmitted 200 to our INVITE means our ACK was lost: re-ACK
    // (RFC 3261 §13.2.2.4).
    if (rsp.status_code() != 200) return;
    auto cs = rsp.cseq();
    if (!cs.ok() || cs.value().method != "INVITE") return;
    auto call_id = rsp.call_id();
    if (!call_id) return;
    Call* call = find_call_mut(*call_id);
    if (call != nullptr && call->we_are_caller &&
        call->dialog->state() == sip::DialogState::kConfirmed) {
      send_ack(*call);
    }
  });
  host_.bind_udp(config_.sip_port,
                 [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now) {
                   on_sip_datagram(from, payload, now);
                 });
}

uint16_t UserAgent::allocate_rtp_port() {
  uint16_t port = next_rtp_port_;
  next_rtp_port_ += 2;  // keep ports even; port+1 is the RTCP convention
  host_.bind_udp(port,
                 [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now) {
                   on_rtp_datagram(from, payload, now);
                 });
  return port;
}

std::string UserAgent::new_tag() {
  return str::format("%s-tag-%llu", config_.user.c_str(),
                     static_cast<unsigned long long>(next_id_++));
}

std::string UserAgent::new_call_id() {
  return str::format("%s-call-%llu@%s", config_.user.c_str(),
                     static_cast<unsigned long long>(next_id_++),
                     host_.address().to_string().c_str());
}

sip::Sdp UserAgent::local_sdp(uint16_t rtp_port, uint64_t session_version) const {
  return sip::make_audio_sdp(host_.address().to_string(), rtp_port,
                             /*session_id=*/next_id_, session_version);
}

SipMessage UserAgent::make_request(Method method, sip::SipUri request_uri) {
  auto m = SipMessage::request(method, std::move(request_uri));
  sip::Via via;
  via.host = host_.address().to_string();
  via.port = config_.sip_port;
  via.params["branch"] = tm_.make_branch();
  m.headers().add("Via", via.to_string());
  m.headers().add("Max-Forwards", "70");
  return m;
}

void UserAgent::on_sip_datagram(pkt::Endpoint from, std::span<const uint8_t> payload,
                                SimTime now) {
  (void)now;
  if (crashed_) return;
  auto msg = SipMessage::parse(payload);
  if (!msg) {
    LOG_DEBUG("ua", "%s: unparseable SIP datagram: %s", aor().c_str(),
              msg.error().to_string().c_str());
    return;
  }
  tm_.on_message(msg.value(), from);
}

// --- registration ---

void UserAgent::register_now(std::function<void(bool)> on_done) {
  auto finish = [this, on_done](bool ok) {
    registered_ = ok;
    if (ok)
      ++stats_.register_ok;
    else
      ++stats_.register_failed;
    if (on_done) on_done(ok);
  };

  sip::SipUri registrar_uri("", config_.domain);
  auto req = make_request(Method::kRegister, registrar_uri);
  std::string call_id = new_call_id();
  std::string tag = new_tag();
  std::string aor_uri = "<sip:" + aor() + ">";
  req.headers().add("From", aor_uri + ";tag=" + tag);
  req.headers().add("To", aor_uri);
  req.headers().add("Call-ID", call_id);
  req.headers().add("CSeq", "1 REGISTER");
  req.headers().add("Contact", "<sip:" + config_.user + "@" +
                                   host_.address().to_string() +
                                   str::format(":%u", config_.sip_port) + ">");
  req.headers().add("Expires", str::format("%u", config_.register_expires));

  tm_.send_request(req, config_.proxy, [this, req, finish](const sip::ClientResult& r) mutable {
    if (r.timed_out) return finish(false);
    int code = r.response.status_code();
    if (code == 200) return finish(true);
    if (code != 401) return finish(false);

    // Digest challenge: answer once.
    auto challenge_header = r.response.headers().get("WWW-Authenticate");
    if (!challenge_header) return finish(false);
    auto challenge = sip::DigestChallenge::parse(*challenge_header);
    if (!challenge) return finish(false);
    std::string uri = "sip:" + config_.domain;
    auto creds = sip::answer_challenge(challenge.value(), config_.user, config_.password,
                                       "REGISTER", uri);
    SipMessage retry = req;
    // Fresh branch + bumped CSeq for the new transaction.
    sip::Via via;
    via.host = host_.address().to_string();
    via.port = config_.sip_port;
    via.params["branch"] = tm_.make_branch();
    retry.headers().set("Via", via.to_string());
    retry.headers().set("CSeq", "2 REGISTER");
    retry.headers().set("Authorization", creds.to_header_value());
    tm_.send_request(retry, config_.proxy, [finish](const sip::ClientResult& r2) {
      finish(!r2.timed_out && r2.response.status_code() == 200);
    });
  });
}

// --- outgoing calls ---

std::string UserAgent::call(const std::string& target_aor) {
  std::string target = target_aor.find('@') == std::string::npos
                           ? target_aor + "@" + config_.domain
                           : target_aor;
  auto at = str::split_once(target, '@');
  sip::SipUri target_uri(std::string(at->first), std::string(at->second));

  std::string call_id = new_call_id();
  std::string local_tag = new_tag();

  Call call_state;
  call_state.we_are_caller = true;
  call_state.ssrc = static_cast<uint32_t>(next_id_ * 2654435761u);
  call_state.local_rtp_port = allocate_rtp_port();
  call_state.dialog = std::make_unique<sip::Dialog>(
      sip::DialogId{call_id, local_tag, ""}, sip::SipUri(config_.user, config_.domain),
      target_uri);
  call_state.dialog->set_local_media({host_.address(), call_state.local_rtp_port});
  call_state.dialog->set_local_cseq(1);  // the INVITE consumes CSeq 1
  uint16_t local_rtp_port = call_state.local_rtp_port;
  calls_[call_id] = std::move(call_state);
  ++stats_.calls_placed;

  auto req = make_request(Method::kInvite, target_uri);
  req.headers().add("From", "<sip:" + aor() + ">;tag=" + local_tag);
  req.headers().add("To", "<sip:" + target + ">");
  req.headers().add("Call-ID", call_id);
  req.headers().add("CSeq", "1 INVITE");
  req.headers().add("Contact", "<sip:" + config_.user + "@" + host_.address().to_string() +
                                   str::format(":%u", config_.sip_port) + ">");
  req.set_body(local_sdp(local_rtp_port).to_string(), "application/sdp");

  tm_.send_request(req, config_.proxy, [this, call_id](const sip::ClientResult& r) {
    Call* call = find_call_mut(call_id);
    if (call == nullptr) return;
    if (r.timed_out) {
      end_call(call_id);
      return;
    }
    int code = r.response.status_code();
    if (sip::status_class(code) == 1) return;  // ringing etc.
    if (code != 200) {
      end_call(call_id);
      return;
    }
    // Dialog confirmed: learn remote tag, contact, media; then ACK.
    auto to = r.response.to();
    if (to.ok() && to.value().tag()) {
      // DialogId is immutable in sip::Dialog; rebuild with the remote tag.
      sip::DialogId id{call_id, call->dialog->id().local_tag, *to.value().tag()};
      auto rebuilt = std::make_unique<sip::Dialog>(id, call->dialog->local_uri(),
                                                   call->dialog->remote_uri());
      rebuilt->set_local_media({host_.address(), call->local_rtp_port});
      rebuilt->set_local_cseq(call->dialog->local_cseq());
      call->dialog = std::move(rebuilt);
    }
    auto contact = r.response.contact();
    if (contact.ok()) {
      if (auto ep = uri_to_endpoint(contact.value().uri)) call->dialog->set_remote_target(*ep);
      learn_contact(r.response, r.peer);
    }
    auto sdp = sip::Sdp::parse(r.response.body());
    if (sdp.ok() && sdp.value().audio() != nullptr) {
      if (auto addr = pkt::Ipv4Address::parse(sdp.value().connection_addr)) {
        call->dialog->set_remote_media({*addr, sdp.value().audio()->port});
      }
    }
    call->dialog->confirm(host_.now());
    ++stats_.calls_established;
    if (on_call_established) on_call_established(call_id);

    send_ack(*call);
    start_media(*find_call_mut(call_id));
  });
  return call_id;
}

void UserAgent::send_ack(const Call& call) {
  // ACK goes end-to-end to the remote target.
  auto remote = call.dialog->remote_target().value_or(config_.proxy);
  auto ack = make_request(Method::kAck, call.dialog->remote_uri());
  ack.headers().add("From", "<sip:" + aor() + ">;tag=" + call.dialog->id().local_tag);
  ack.headers().add("To", "<sip:" + call.dialog->remote_uri().address_of_record() + ">;tag=" +
                              call.dialog->id().remote_tag);
  ack.headers().add("Call-ID", call.dialog->id().call_id);
  ack.headers().add("CSeq", "1 ACK");
  tm_.send_stateless(ack, remote);
}

// --- incoming requests ---

void UserAgent::handle_request(const SipMessage& req, pkt::Endpoint from) {
  switch (req.method()) {
    case Method::kInvite:
      handle_invite(req, from);
      return;
    case Method::kAck:
      handle_ack(req);
      return;
    case Method::kBye:
      handle_bye(req, from);
      return;
    case Method::kMessage:
      handle_message(req, from);
      return;
    case Method::kOptions: {
      tm_.respond(req, sip::TransactionManager::make_response_for(req, 200, "OK"), from);
      return;
    }
    default: {
      tm_.respond(req, sip::TransactionManager::make_response_for(req, 501, "Not Implemented"),
                  from);
      return;
    }
  }
}

UserAgent::Call* UserAgent::match_dialog(const SipMessage& req) {
  auto call_id = req.call_id();
  if (!call_id) return nullptr;
  auto it = calls_.find(*call_id);
  if (it == calls_.end()) return nullptr;
  // For a mid-dialog request: To tag must be our tag, From tag the peer's.
  auto to = req.to();
  auto from_hdr = req.from();
  if (!to.ok() || !from_hdr.ok()) return nullptr;
  const sip::DialogId& id = it->second.dialog->id();
  auto to_tag = to.value().tag();
  auto from_tag = from_hdr.value().tag();
  if (to_tag && *to_tag != id.local_tag) return nullptr;
  if (!id.remote_tag.empty() && from_tag && *from_tag != id.remote_tag) return nullptr;
  return &it->second;
}

void UserAgent::handle_invite(const SipMessage& req, pkt::Endpoint from) {
  auto call_id = req.call_id();
  if (!call_id || !req.well_formed()) {
    tm_.respond(req, sip::TransactionManager::make_response_for(req, 400, "Bad Request"), from);
    return;
  }

  if (Call* existing = match_dialog(req)) {
    // re-INVITE: target refresh / call migration (§4.2.3). Update where we
    // send media, answer with our current SDP.
    auto cs = req.cseq();
    if (cs.ok() && !existing->dialog->accept_remote_cseq(cs.value().number)) {
      tm_.respond(req, sip::TransactionManager::make_response_for(req, 500, "Server Internal Error"),
                  from);
      return;
    }
    auto sdp = sip::Sdp::parse(req.body());
    if (sdp.ok() && sdp.value().audio() != nullptr) {
      if (auto addr = pkt::Ipv4Address::parse(sdp.value().connection_addr)) {
        existing->dialog->set_remote_media({*addr, sdp.value().audio()->port});
      }
    }
    auto contact = req.contact();
    if (contact.ok()) {
      if (auto ep = uri_to_endpoint(contact.value().uri))
        existing->dialog->set_remote_target(*ep);
    }
    auto rsp = sip::TransactionManager::make_response_for(req, 200, "OK");
    rsp.headers().add("Contact", "<sip:" + config_.user + "@" + host_.address().to_string() +
                                     str::format(":%u", config_.sip_port) + ">");
    rsp.set_body(local_sdp(existing->local_rtp_port, 2).to_string(), "application/sdp");
    tm_.respond(req, rsp, from);
    return;
  }

  if (!config_.auto_answer) {
    tm_.respond(req, sip::TransactionManager::make_response_for(req, 486, "Busy Here"), from);
    return;
  }

  // New incoming call.
  auto from_hdr = req.from();
  std::string remote_tag = from_hdr.value().tag().value_or("");
  std::string local_tag = new_tag();

  Call call_state;
  call_state.we_are_caller = false;
  call_state.ssrc = static_cast<uint32_t>(next_id_ * 2246822519u);
  call_state.local_rtp_port = allocate_rtp_port();
  call_state.dialog = std::make_unique<sip::Dialog>(
      sip::DialogId{*call_id, local_tag, remote_tag},
      sip::SipUri(config_.user, config_.domain), from_hdr.value().uri);
  call_state.dialog->set_local_media({host_.address(), call_state.local_rtp_port});
  auto cs = req.cseq();
  if (cs.ok()) call_state.dialog->accept_remote_cseq(cs.value().number);

  auto sdp = sip::Sdp::parse(req.body());
  if (sdp.ok() && sdp.value().audio() != nullptr) {
    if (auto addr = pkt::Ipv4Address::parse(sdp.value().connection_addr)) {
      call_state.dialog->set_remote_media({*addr, sdp.value().audio()->port});
    }
  }
  auto contact = req.contact();
  if (contact.ok()) {
    if (auto ep = uri_to_endpoint(contact.value().uri))
      call_state.dialog->set_remote_target(*ep);
  }
  learn_contact(req, from);
  calls_[*call_id] = std::move(call_state);
  ++stats_.calls_answered;

  // Ring, then answer.
  auto ringing = sip::TransactionManager::make_response_for(req, 180, "Ringing");
  {
    // 180 carries our To tag so the caller can form the early dialog.
    auto to = req.to();
    if (to.ok()) {
      auto na = to.value();
      na.set_tag(local_tag);
      ringing.headers().set("To", na.to_string());
    }
  }
  tm_.respond(req, ringing, from);

  std::string id = *call_id;
  host_.after(config_.answer_delay, [this, req, from, id, local_tag] {
    Call* call = find_call_mut(id);
    if (call == nullptr || crashed_) return;
    auto rsp = sip::TransactionManager::make_response_for(req, 200, "OK");
    auto to = req.to();
    if (to.ok()) {
      auto na = to.value();
      na.set_tag(local_tag);
      rsp.headers().set("To", na.to_string());
    }
    rsp.headers().add("Contact", "<sip:" + config_.user + "@" + host_.address().to_string() +
                                     str::format(":%u", config_.sip_port) + ">");
    rsp.set_body(local_sdp(call->local_rtp_port).to_string(), "application/sdp");
    tm_.respond(req, rsp, from);
    retransmit_200_until_ack(id, rsp, from, sip::kTimerT1, host_.now());
  });
}

void UserAgent::retransmit_200_until_ack(const std::string& call_id, sip::SipMessage rsp,
                                         pkt::Endpoint to, SimDuration interval,
                                         SimTime started) {
  host_.after(interval, [this, call_id, rsp = std::move(rsp), to, interval, started] {
    Call* call = find_call_mut(call_id);
    if (call == nullptr || crashed_) return;
    if (call->dialog->state() != sip::DialogState::kEarly) return;  // ACKed (or ended)
    if (host_.now() - started >= sip::kTimerB) {
      // No ACK ever came: give the call up (RFC 3261 §13.3.1.4).
      end_call(call_id);
      return;
    }
    host_.send_udp(config_.sip_port, to, rsp.to_string());
    retransmit_200_until_ack(call_id, rsp,
                             to, std::min<SimDuration>(interval * 2, sec(4)), started);
  });
}

void UserAgent::handle_ack(const SipMessage& req) {
  Call* call = match_dialog(req);
  if (call == nullptr) return;
  if (call->dialog->state() == sip::DialogState::kEarly) {
    call->dialog->confirm(host_.now());
    ++stats_.calls_established;
    if (on_call_established) on_call_established(call->dialog->id().call_id);
    start_media(*call);
  }
}

void UserAgent::handle_bye(const SipMessage& req, pkt::Endpoint from) {
  Call* call = match_dialog(req);
  if (call == nullptr) {
    tm_.respond(req,
                sip::TransactionManager::make_response_for(req, 481,
                                                           "Call/Transaction Does Not Exist"),
                from);
    return;
  }
  auto cs = req.cseq();
  if (cs.ok() && !call->dialog->accept_remote_cseq(cs.value().number)) {
    tm_.respond(req, sip::TransactionManager::make_response_for(req, 500, "Stale CSeq"), from);
    return;
  }
  tm_.respond(req, sip::TransactionManager::make_response_for(req, 200, "OK"), from);
  end_call(call->dialog->id().call_id);
}

void UserAgent::handle_message(const SipMessage& req, pkt::Endpoint from) {
  auto from_hdr = req.from();
  ImRecord im;
  im.from_aor = from_hdr.ok() ? from_hdr.value().uri.address_of_record() : "?";
  im.text = req.body();
  im.source = from;
  im.received_at = host_.now();
  ims_.push_back(im);
  if (on_im) on_im(ims_.back());
  tm_.respond(req, sip::TransactionManager::make_response_for(req, 200, "OK"), from);
}

// --- hangup / migration / IM ---

void UserAgent::hangup(const std::string& call_id) {
  Call* call = find_call_mut(call_id);
  if (call == nullptr || call->dialog->state() == sip::DialogState::kTerminated) return;
  auto remote = call->dialog->remote_target().value_or(config_.proxy);
  auto bye = make_request(Method::kBye, call->dialog->remote_uri());
  bye.headers().add("From", "<sip:" + aor() + ">;tag=" + call->dialog->id().local_tag);
  bye.headers().add("To", "<sip:" + call->dialog->remote_uri().address_of_record() + ">;tag=" +
                              call->dialog->id().remote_tag);
  bye.headers().add("Call-ID", call_id);
  bye.headers().add("CSeq", str::format("%u BYE", call->dialog->next_local_cseq()));
  tm_.send_request(bye, remote, [](const sip::ClientResult&) {});
  if (on_bye_sent) on_bye_sent(call_id);
  end_call(call_id);
}

void UserAgent::migrate_media(const std::string& call_id, pkt::Endpoint new_media) {
  Call* call = find_call_mut(call_id);
  if (call == nullptr || call->dialog->state() != sip::DialogState::kConfirmed) return;
  auto remote = call->dialog->remote_target().value_or(config_.proxy);
  auto reinvite = make_request(Method::kInvite, call->dialog->remote_uri());
  reinvite.headers().add("From", "<sip:" + aor() + ">;tag=" + call->dialog->id().local_tag);
  reinvite.headers().add("To", "<sip:" + call->dialog->remote_uri().address_of_record() +
                                   ">;tag=" + call->dialog->id().remote_tag);
  reinvite.headers().add("Call-ID", call_id);
  reinvite.headers().add("CSeq", str::format("%u INVITE", call->dialog->next_local_cseq()));
  reinvite.headers().add("Contact", "<sip:" + config_.user + "@" + new_media.addr.to_string() +
                                        ">");
  auto sdp = sip::make_audio_sdp(new_media.addr.to_string(), new_media.port, next_id_, 2);
  reinvite.set_body(sdp.to_string(), "application/sdp");
  tm_.send_request(reinvite, remote, [](const sip::ClientResult&) {});
  if (on_reinvite_sent) on_reinvite_sent(call_id);
  // The call has moved to the new device: this agent stops sourcing media.
  stop_media(*call);
}

void UserAgent::add_contact(const std::string& aor, pkt::Endpoint contact) {
  contact_cache_[aor] = contact;
}

void UserAgent::learn_contact(const SipMessage& msg, pkt::Endpoint from) {
  auto contact = msg.contact();
  auto hdr = msg.is_request() ? msg.from() : msg.to();
  if (!contact.ok() || !hdr.ok()) return;
  auto ep = uri_to_endpoint(contact.value().uri);
  contact_cache_[hdr.value().uri.address_of_record()] = ep.value_or(from);
}

void UserAgent::send_im(const std::string& target_aor, const std::string& text) {
  std::string target = target_aor.find('@') == std::string::npos
                           ? target_aor + "@" + config_.domain
                           : target_aor;
  auto at = str::split_once(target, '@');
  sip::SipUri target_uri(std::string(at->first), std::string(at->second));

  pkt::Endpoint dst = config_.proxy;
  auto cached = contact_cache_.find(target);
  if (cached != contact_cache_.end()) dst = cached->second;

  auto msg = make_request(Method::kMessage, target_uri);
  msg.headers().add("From", "<sip:" + aor() + ">;tag=" + new_tag());
  msg.headers().add("To", "<sip:" + target + ">");
  msg.headers().add("Call-ID", new_call_id());
  msg.headers().add("CSeq", "1 MESSAGE");
  msg.set_body(text, "text/plain");
  tm_.send_request(msg, dst, [](const sip::ClientResult&) {});
  if (on_im_sent) on_im_sent(target, text);
}

// --- media plane ---

void UserAgent::start_media(Call& call) {
  if (call.media_running || crashed_) return;
  call.media_running = true;
  media_tick(call.dialog->id().call_id);
  if (config_.rtcp_interval > 0) {
    std::string call_id = call.dialog->id().call_id;
    host_.after(config_.rtcp_interval, [this, call_id] { rtcp_tick(call_id); });
  }
}

void UserAgent::rtcp_tick(const std::string& call_id) {
  Call* call = find_call_mut(call_id);
  if (call == nullptr || !call->media_running || crashed_) return;
  if (call->dialog->state() != sip::DialogState::kConfirmed) return;
  auto remote = call->dialog->remote_media();
  if (remote) {
    rtp::RtcpSenderReport sr;
    sr.ssrc = call->ssrc;
    sr.ntp_timestamp = static_cast<uint64_t>(host_.now());
    sr.rtp_timestamp = call->rtp_timestamp;
    sr.packet_count = call->rtp_seq;
    sr.octet_count = static_cast<uint32_t>(call->rtp_seq) * 160;
    pkt::Endpoint rtcp_dst{remote->addr, static_cast<uint16_t>(remote->port + 1)};
    host_.send_udp(static_cast<uint16_t>(call->local_rtp_port + 1), rtcp_dst,
                   rtp::serialize_rtcp(sr));
    ++stats_.rtcp_sent;
  }
  host_.after(config_.rtcp_interval, [this, call_id] { rtcp_tick(call_id); });
}

void UserAgent::send_rtcp_bye(const Call& call) {
  if (config_.rtcp_interval <= 0) return;
  auto remote = call.dialog->remote_media();
  if (!remote) return;
  rtp::RtcpBye bye;
  bye.ssrcs = {call.ssrc};
  bye.reason = "teardown";
  pkt::Endpoint rtcp_dst{remote->addr, static_cast<uint16_t>(remote->port + 1)};
  host_.send_udp(static_cast<uint16_t>(call.local_rtp_port + 1), rtcp_dst,
                 rtp::serialize_rtcp(bye));
  ++stats_.rtcp_sent;
}

void UserAgent::stop_media(Call& call) { call.media_running = false; }

void UserAgent::media_tick(const std::string& call_id) {
  Call* call = find_call_mut(call_id);
  if (call == nullptr || !call->media_running || crashed_) return;
  if (call->dialog->state() != sip::DialogState::kConfirmed) return;
  auto remote = call->dialog->remote_media();
  if (remote) {
    rtp::RtpHeader h;
    h.payload_type = rtp::kPayloadTypePcmu;
    h.sequence = call->rtp_seq++;
    h.timestamp = call->rtp_timestamp;
    h.ssrc = call->ssrc;
    h.marker = (call->rtp_timestamp == 0);
    call->rtp_timestamp += rtp::kSamplesPer20Ms;
    Bytes payload(160, 0xd5);  // G.711 u-law silence
    host_.send_udp(call->local_rtp_port, *remote, rtp::serialize_rtp(h, payload));
    ++stats_.rtp_sent;
  }
  host_.after(config_.rtp_interval, [this, call_id] { media_tick(call_id); });
}

void UserAgent::on_rtp_datagram(pkt::Endpoint from, std::span<const uint8_t> payload,
                                SimTime now) {
  (void)from;
  if (crashed_) return;
  ++stats_.rtp_received;
  auto parsed = rtp::parse_rtp(payload);
  if (!parsed) return;  // garbage that does not even look like RTP
  const auto& h = parsed.value().header;
  auto [it, _] = rx_streams_.try_emplace(h.ssrc, rtp::RtpStreamStats(8000));
  it->second.on_packet(h.sequence, h.timestamp, now);
  rx_port_stats_.on_packet(h.sequence, h.timestamp, now);
  if (!jitter_buffer_.push(h, now)) {
    // X-Lite style crash (paper §4.2.4): the client dies.
    crashed_ = true;
    LOG_INFO("ua", "%s: client crashed on corrupt RTP", aor().c_str());
    for (auto& [id, call] : calls_) {
      stop_media(call);
      call.dialog->terminate(now);
    }
    return;
  }
  rtp::RtpHeader played;
  jitter_buffer_.pop_for_playout(&played);
}

// --- bookkeeping ---

void UserAgent::end_call(const std::string& call_id) {
  Call* call = find_call_mut(call_id);
  if (call == nullptr) return;
  bool was_streaming = call->media_running;
  stop_media(*call);
  if (was_streaming && !crashed_) send_rtcp_bye(*call);
  if (call->dialog->state() != sip::DialogState::kTerminated) {
    call->dialog->terminate(host_.now());
    ++stats_.calls_ended;
    if (on_call_ended) on_call_ended(call_id);
  }
}

UserAgent::Call* UserAgent::find_call_mut(const std::string& call_id) {
  auto it = calls_.find(call_id);
  return it == calls_.end() ? nullptr : &it->second;
}

const sip::Dialog* UserAgent::find_call(const std::string& call_id) const {
  auto it = calls_.find(call_id);
  return it == calls_.end() ? nullptr : it->second.dialog.get();
}

size_t UserAgent::active_calls() const {
  size_t n = 0;
  for (const auto& [id, call] : calls_) {
    if (call.dialog->state() == sip::DialogState::kConfirmed) ++n;
  }
  return n;
}

}  // namespace scidive::voip
