// The attack toolkit: reproductions of the paper's four attacks (§4.2) plus
// the two stateful-detection scenarios of §3.3 and the billing-fraud exploit
// of §3.2. An on-hub CallSniffer gives attackers the same vantage point the
// paper assumes (a shared segment where dialog identifiers can be learned).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/host.h"
#include "sip/auth.h"
#include "sip/message.h"

namespace scidive::voip {

/// Everything an on-hub observer can learn about a call in progress —
/// exactly the knowledge the BYE/hijack forgeries need.
struct ObservedCall {
  std::string call_id;
  std::string caller_aor;
  std::string callee_aor;
  std::string caller_tag;
  std::string callee_tag;
  pkt::Endpoint caller_sip;
  pkt::Endpoint callee_sip;
  pkt::Endpoint caller_media;
  pkt::Endpoint callee_media;
  uint32_t last_caller_cseq = 0;
  bool confirmed = false;  // saw the 200 to INVITE
  bool torn_down = false;  // saw a BYE
  bool migrated = false;   // saw an in-dialog re-INVITE (media moved)
};

/// Passive SIP observer for a broadcast segment. Attach to the Network as a
/// tap; it decodes SIP signaling and accumulates ObservedCall state.
class CallSniffer {
 public:
  /// The tap to register: network.add_tap(sniffer.tap()).
  netsim::PacketTap tap();

  std::vector<ObservedCall> calls() const;
  /// Most recent confirmed, not-yet-torn-down call, if any.
  std::optional<ObservedCall> latest_active_call() const;
  /// Most recent active call with the given AOR as caller or callee.
  std::optional<ObservedCall> latest_active_call_of(const std::string& aor) const;
  uint64_t sip_messages_seen() const { return sip_seen_; }

 private:
  void on_sip(const sip::SipMessage& msg, pkt::Endpoint src, pkt::Endpoint dst);

  std::map<std::string, ObservedCall> by_call_id_;
  std::vector<std::string> order_;  // call ids in first-seen order
  uint64_t sip_seen_ = 0;
};

/// §4.2.1 BYE attack: forge a BYE to the victim that appears to come from
/// the peer (spoofed source IP + correct dialog identifiers). The victim
/// stops its media; the unaware peer keeps streaming -> orphan RTP flow.
class ByeAttacker {
 public:
  explicit ByeAttacker(netsim::Host& host) : host_(host) {}

  /// Tear down `call` from the victim's point of view. If attack_caller is
  /// true the forged BYE goes to the caller (pretending to be the callee),
  /// otherwise to the callee.
  void attack(const ObservedCall& call, bool attack_caller = true);

  uint64_t byes_sent() const { return byes_sent_; }

 private:
  netsim::Host& host_;
  uint64_t byes_sent_ = 0;
};

/// §4.2.2 Fake Instant Messaging: a MESSAGE whose From header claims to be
/// a trusted user but which originates from the attacker's own address
/// (the rule's observable: source IP differs from the claimed user's usual
/// address).
class FakeImAttacker {
 public:
  explicit FakeImAttacker(netsim::Host& host) : host_(host) {}

  void send(pkt::Endpoint victim_sip, const std::string& claimed_from_aor,
            const std::string& text);

  /// The stronger variant the paper concedes defeats the endpoint rule:
  /// the source IP is spoofed to the claimed user's real endpoint, so the
  /// IP-consistency check passes. Only cooperative detection catches this.
  void send_spoofed(pkt::Endpoint victim_sip, const std::string& claimed_from_aor,
                    pkt::Endpoint spoofed_source, const std::string& text);

  uint64_t messages_sent() const { return messages_sent_; }

 private:
  netsim::Host& host_;
  uint64_t messages_sent_ = 0;
  uint64_t counter_ = 1;
};

/// §4.2.3 Call Hijacking: a forged in-dialog re-INVITE that redirects the
/// victim's outgoing media to the attacker's address.
class CallHijacker {
 public:
  explicit CallHijacker(netsim::Host& host) : host_(host) {}

  /// Redirect the media the victim (caller if attack_caller) is sending so
  /// it flows to new_media (typically a port on the attacker's host).
  void attack(const ObservedCall& call, pkt::Endpoint new_media, bool attack_caller = true);

  uint64_t reinvites_sent() const { return reinvites_sent_; }

 private:
  netsim::Host& host_;
  uint64_t reinvites_sent_ = 0;
};

/// Extension attack: a forged RTCP BYE claiming the peer's stream ended —
/// the RTCP-plane analogue of the §4.2.1 BYE attack. Clients that honor
/// RTCP BYE mute the caller; the IDS detects the stream continuing after
/// its own announced end.
class RtcpByeForger {
 public:
  explicit RtcpByeForger(netsim::Host& host) : host_(host) {}

  /// Forge "the callee's stream is over" toward the caller (or vice versa).
  void attack(const ObservedCall& call, bool attack_caller = true);

  uint64_t byes_sent() const { return byes_sent_; }

 private:
  netsim::Host& host_;
  uint64_t byes_sent_ = 0;
};

/// §4.2.4 RTP attack: flood the victim's media port with packets whose
/// header and payload are random bytes (optionally keeping the RTP version
/// bits valid so the garbage reaches the jitter buffer).
class RtpInjector {
 public:
  RtpInjector(netsim::Host& host, uint64_t seed) : host_(host), rng_(seed) {}

  struct Options {
    int count = 50;
    SimDuration interval = msec(5);
    bool keep_version_bits = true;  // true: garbage that parses as RTP
    size_t payload_len = 160;
  };

  void start(pkt::Endpoint victim_media, Options options);
  void start(pkt::Endpoint victim_media) { start(victim_media, Options{}); }

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  void tick(pkt::Endpoint victim, Options options, int remaining);

  netsim::Host& host_;
  Rng rng_;
  uint64_t packets_sent_ = 0;
};

/// §3.3 DoS: repeated unauthenticated REGISTERs that ignore the 401s.
class RegisterFlooder {
 public:
  RegisterFlooder(netsim::Host& host, pkt::Endpoint proxy, std::string user,
                  std::string domain, uint16_t local_port = 5080);

  void start(int count, SimDuration interval = msec(50));

  uint64_t sent() const { return sent_; }
  uint64_t responses_401() const { return responses_401_; }

 private:
  netsim::Host& host_;
  pkt::Endpoint proxy_;
  std::string user_;
  std::string domain_;
  uint16_t local_port_;
  std::string call_id_;
  uint32_t cseq_ = 0;
  uint64_t sent_ = 0;
  uint64_t responses_401_ = 0;
};

/// §3.3 password guessing: answer the registrar's digest challenge with a
/// dictionary of guesses, one per attempt, in a single REGISTER session.
class PasswordGuesser {
 public:
  PasswordGuesser(netsim::Host& host, pkt::Endpoint proxy, std::string user,
                  std::string domain, uint16_t local_port = 5081);

  void start(std::vector<std::string> guesses, SimDuration interval = msec(50));

  bool succeeded() const { return succeeded_; }
  uint64_t attempts() const { return attempts_; }

 private:
  void send_register(const std::string* guess);
  void on_response(const sip::SipMessage& rsp);

  netsim::Host& host_;
  pkt::Endpoint proxy_;
  std::string user_;
  std::string domain_;
  uint16_t local_port_;
  std::string call_id_;
  uint32_t cseq_ = 0;
  std::optional<sip::DigestChallenge> challenge_;
  std::vector<std::string> guesses_;
  size_t next_guess_ = 0;
  SimDuration interval_ = msec(50);
  bool succeeded_ = false;
  uint64_t attempts_ = 0;
};

/// SPIT campaign (voice spam, the prevention scenario): one caller identity
/// places many short call attempts in a burst — the high attempt rate and
/// near-zero hold time that distinguish a spam bot from a human caller.
/// Each attempt is CANCELed moments after it rings; the bot moves on.
class SpitCampaigner {
 public:
  SpitCampaigner(netsim::Host& host, pkt::Endpoint proxy, std::string caller_user,
                 std::string domain, uint16_t sip_port = 5083);

  /// Place `count` attempts to `targets` (round-robin), one every
  /// `interval`; each is CANCELed `hold` later.
  void start(std::vector<std::string> targets, int count, SimDuration interval = msec(500),
             SimDuration hold = msec(200));

  uint64_t invites_sent() const { return invites_sent_; }
  /// 503s the proxy answered with once the campaign was graylisted (the
  /// observable that inline enforcement kicked in).
  uint64_t rejected_503() const { return rejected_503_; }

 private:
  void place_next(int remaining);

  netsim::Host& host_;
  pkt::Endpoint proxy_;
  std::string caller_user_;
  std::string domain_;
  uint16_t sip_port_;
  std::vector<std::string> targets_;
  SimDuration interval_ = msec(500);
  SimDuration hold_ = msec(200);
  size_t next_target_ = 0;
  uint64_t counter_ = 0;
  uint64_t invites_sent_ = 0;
  uint64_t rejected_503_ = 0;
};

/// §3.2 billing fraud: exploit the proxy's billing-identity bug by placing
/// a call whose crafted X-Billing-Identity header bills someone else.
class BillingFraudster {
 public:
  BillingFraudster(netsim::Host& host, pkt::Endpoint proxy, std::string domain,
                   uint16_t sip_port = 5082, uint16_t rtp_port = 17000);

  /// Call `target_user`, billing the call to `billed_aor`. The fraudster
  /// completes the handshake (200/ACK) and streams RTP like a real caller.
  void place_fraudulent_call(const std::string& target_user, const std::string& billed_aor);

  uint64_t calls_placed() const { return calls_placed_; }

 private:
  void on_sip(pkt::Endpoint from, std::span<const uint8_t> payload);
  void media_tick(pkt::Endpoint remote, int remaining);

  netsim::Host& host_;
  pkt::Endpoint proxy_;
  std::string domain_;
  uint16_t sip_port_;
  uint16_t rtp_port_;
  uint64_t counter_ = 1;
  uint64_t calls_placed_ = 0;
  std::string active_call_id_;
  std::string local_tag_;
};

}  // namespace scidive::voip
