#include "voip/accounting.h"

#include "common/strings.h"

namespace scidive::voip {

std::string AccRecord::serialize() const {
  return str::format("ACC %s call_id=%s from=%s to=%s t=%lld",
                     kind == Kind::kStart ? "START" : "STOP", call_id.c_str(), from_aor.c_str(),
                     to_aor.c_str(), static_cast<long long>(timestamp));
}

Result<AccRecord> AccRecord::parse(std::string_view line) {
  auto parts = str::split(str::trim(line), ' ');
  if (parts.size() < 2 || parts[0] != "ACC") return Error{Errc::kMalformed, "not an ACC line"};
  AccRecord r;
  if (parts[1] == "START") {
    r.kind = Kind::kStart;
  } else if (parts[1] == "STOP") {
    r.kind = Kind::kStop;
  } else {
    return Error{Errc::kMalformed, "ACC kind"};
  }
  for (size_t i = 2; i < parts.size(); ++i) {
    auto kv = str::split_once(parts[i], '=');
    if (!kv) return Error{Errc::kMalformed, "ACC field without '='"};
    if (kv->first == "call_id") {
      r.call_id = std::string(kv->second);
    } else if (kv->first == "from") {
      r.from_aor = std::string(kv->second);
    } else if (kv->first == "to") {
      r.to_aor = std::string(kv->second);
    } else if (kv->first == "t") {
      auto t = str::parse_u64(kv->second);
      if (!t) return Error{Errc::kMalformed, "ACC bad timestamp"};
      r.timestamp = static_cast<SimTime>(*t);
    }
  }
  if (r.call_id.empty() || r.from_aor.empty())
    return Error{Errc::kMalformed, "ACC missing call_id/from"};
  return r;
}

void AccountingClient::call_started(const std::string& call_id, const std::string& from_aor,
                                    const std::string& to_aor) {
  send(AccRecord{AccRecord::Kind::kStart, call_id, from_aor, to_aor, host_.now()});
}

void AccountingClient::call_stopped(const std::string& call_id, const std::string& from_aor,
                                    const std::string& to_aor) {
  send(AccRecord{AccRecord::Kind::kStop, call_id, from_aor, to_aor, host_.now()});
}

void AccountingClient::send(AccRecord record) {
  host_.send_udp(local_port_, database_, record.serialize());
  ++records_sent_;
}

BillingDatabase::BillingDatabase(netsim::Host& host) : host_(host) {
  host_.bind_udp(kAccPort,
                 [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime) {
                   auto record = AccRecord::parse(std::string_view(
                       reinterpret_cast<const char*>(payload.data()), payload.size()));
                   if (!record) return;
                   records_.push_back(record.value());
                   host_.send_udp(kAccPort, from,
                                  str::format("OK %zu", records_.size()));
                 });
}

std::map<std::string, int> BillingDatabase::bill_counts() const {
  std::map<std::string, int> counts;
  for (const auto& r : records_) {
    if (r.kind == AccRecord::Kind::kStart) ++counts[r.from_aor];
  }
  return counts;
}

}  // namespace scidive::voip
