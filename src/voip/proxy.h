// SIP proxy + registrar (SIP Express Router stand-in): registrar bindings
// with optional digest authentication, stateless-ish forwarding of initial
// requests by registrar lookup, Via push/pop for responses, and accounting
// hooks that emit CDR transactions when calls are established (the third
// protocol of the §3.2 billing-fraud example).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "netsim/host.h"
#include "sip/auth.h"
#include "sip/message.h"
#include "voip/accounting.h"

namespace scidive::voip {

struct ProxyConfig {
  std::string domain = "lab.net";
  uint16_t sip_port = 5060;
  bool require_auth = false;            // digest-challenge REGISTER
  std::string realm;                    // defaults to domain
  uint32_t default_expires = 3600;
};

struct ProxyStats {
  uint64_t registers_accepted = 0;
  uint64_t registers_challenged = 0;
  uint64_t registers_rejected = 0;
  uint64_t requests_forwarded = 0;
  uint64_t responses_forwarded = 0;
  uint64_t not_found = 0;
  uint64_t loops_dropped = 0;
  uint64_t screened_dropped = 0;  // screen said drop/quarantine
  uint64_t screened_limited = 0;  // screen said rate-limit (503-rejected)
};

/// What the inline screen wants done with an incoming SIP datagram.
/// Mirrors the IDS core's escalation order without linking it (voip is a
/// layer below scidive_core): 0 pass < 1 rate-limit < 2 quarantine < 3 drop.
enum class ScreenAction : uint8_t {
  kPass = 0,
  kRateLimit = 1,
  kQuarantine = 2,
  kDrop = 3,
};

/// Inline enforcement hook (SCIDIVE prevention mode): consulted for every
/// SIP datagram before the proxy parses it. kDrop/kQuarantine discard
/// silently (the attacker learns nothing); kRateLimit answers requests with
/// 503 Service Unavailable so legitimate UAs back off cleanly.
using ProxyScreen =
    std::function<ScreenAction(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now)>;

class ProxyRegistrar {
 public:
  ProxyRegistrar(netsim::Host& host, ProxyConfig config);

  /// Provision a subscriber (user + digest password).
  void add_user(const std::string& user, const std::string& password);

  /// Attach the accounting client that receives call-start CDRs.
  void set_accounting(AccountingClient* accounting) { accounting_ = accounting; }

  /// Install (or clear, with nullptr) the inline screen.
  void set_screen(ProxyScreen screen) { screen_ = std::move(screen); }

  /// Current registered contact for an AOR, if any.
  std::optional<pkt::Endpoint> lookup(const std::string& aor) const;

  const ProxyStats& stats() const { return stats_; }
  size_t bindings() const { return bindings_.size(); }

  /// Exploitable parsing bug toggle for the §3.2 billing-fraud scenario:
  /// when on, a crafted INVITE carrying an "X-Billing-Identity" header makes
  /// the proxy bill the call to that identity instead of the real From user
  /// (modeling "a carefully crafted SIP message fools the proxy into
  /// believing the call is initiated by someone else").
  void set_billing_identity_bug(bool enabled) { billing_identity_bug_ = enabled; }

 private:
  struct Binding {
    pkt::Endpoint contact;
    SimTime expires_at = 0;
  };
  struct PendingBill {
    std::string call_id;
    std::string from_aor;
    std::string to_aor;
  };

  void on_datagram(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now);
  void handle_register(const sip::SipMessage& req, pkt::Endpoint from, SimTime now);
  void forward_request(sip::SipMessage req, pkt::Endpoint from);
  void forward_response(sip::SipMessage rsp);
  void reply(const sip::SipMessage& req, int code, const std::string& reason, pkt::Endpoint to);

  netsim::Host& host_;
  ProxyConfig config_;
  std::map<std::string, Binding> bindings_;          // aor -> contact
  std::map<std::string, std::string> passwords_;     // user -> password
  AccountingClient* accounting_ = nullptr;
  ProxyScreen screen_;
  std::map<std::string, PendingBill> pending_bills_;  // by our Via branch
  /// Transaction-stateful forwarding: a retransmitted request (same client
  /// branch/method/CSeq) is forwarded under the SAME proxy branch so the
  /// callee's transaction layer can absorb it instead of seeing a fresh
  /// transaction (real SER behaves this way).
  std::map<std::string, std::string> branch_map_;  // client tx key -> our branch
  ProxyStats stats_;
  uint64_t nonce_counter_ = 1;
  bool billing_identity_bug_ = false;
};

}  // namespace scidive::voip
