// SIP user agent: a simulated softphone (KPhone / Windows Messenger /
// X-Lite stand-in). Registers with the proxy (digest auth), originates and
// answers calls, sends 20 ms G.711 RTP during confirmed dialogs, supports
// in-dialog re-INVITE (mobility / call migration), instant messaging
// (MESSAGE), and models the jitter-buffer reaction to garbage RTP.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "rtp/jitter_buffer.h"
#include "rtp/stats.h"
#include "sip/auth.h"
#include "sip/dialog.h"
#include "sip/message.h"
#include "sip/sdp.h"
#include "sip/transaction.h"

namespace scidive::voip {

struct UserAgentConfig {
  std::string user;              // "alice"
  std::string domain;            // "lab.net" (the proxy's domain)
  std::string password;          // digest password at the registrar
  pkt::Endpoint proxy;           // outbound proxy / registrar
  uint16_t sip_port = 5060;
  /// Base of the media port range: each call gets its own even RTP port
  /// (base, base+2, base+4, ...) like real softphones; RTCP would sit at
  /// port+1.
  uint16_t rtp_port = 16384;
  SimDuration answer_delay = msec(500);  // ring time before auto-answer
  SimDuration rtp_interval = msec(20);
  /// RTCP sender-report cadence (0 disables RTCP entirely).
  SimDuration rtcp_interval = sec(2);
  uint32_t register_expires = 3600;
  rtp::CorruptionBehavior jitter_behavior = rtp::CorruptionBehavior::kGlitch;
  bool auto_answer = true;
};

/// A received instant message, as the user would see it — plus the network
/// source, which the human cannot see but the IDS can.
struct ImRecord {
  std::string from_aor;
  std::string text;
  pkt::Endpoint source;
  SimTime received_at = 0;
};

struct CallStats {
  uint64_t calls_placed = 0;
  uint64_t calls_answered = 0;
  uint64_t calls_established = 0;
  uint64_t calls_ended = 0;
  uint64_t rtp_sent = 0;
  uint64_t rtp_received = 0;
  uint64_t rtcp_sent = 0;
  uint64_t register_ok = 0;
  uint64_t register_failed = 0;
};

class UserAgent {
 public:
  UserAgent(netsim::Host& host, UserAgentConfig config);

  /// Register the AOR with the proxy, answering a digest challenge if one
  /// comes back. on_done(success) fires on the final outcome.
  void register_now(std::function<void(bool)> on_done = {});

  /// Place a call to an AOR ("bob@lab.net" or bare user "bob"). Returns the
  /// Call-ID of the new call.
  std::string call(const std::string& target_aor);

  /// Tear down a confirmed call.
  void hangup(const std::string& call_id);

  /// Call migration (paper §4.2.3): move this end's media to a new
  /// endpoint and tell the peer with an in-dialog re-INVITE.
  void migrate_media(const std::string& call_id, pkt::Endpoint new_media);

  /// Send an instant message. Uses the contact cache (direct, peer-to-peer
  /// IM as 2004 Messenger did within a session) when the peer is known,
  /// otherwise routes through the proxy.
  void send_im(const std::string& target_aor, const std::string& text);

  /// Provision a peer's contact (buddy list): aor -> SIP endpoint.
  void add_contact(const std::string& aor, pkt::Endpoint contact);

  // --- observability ---
  const std::vector<ImRecord>& received_ims() const { return ims_; }
  const CallStats& stats() const { return stats_; }
  bool registered() const { return registered_; }
  bool crashed() const { return crashed_; }
  std::string aor() const { return config_.user + "@" + config_.domain; }
  const UserAgentConfig& config() const { return config_; }
  pkt::Endpoint sip_endpoint() const { return {host_.address(), config_.sip_port}; }
  pkt::Endpoint media_endpoint() const { return media_local_; }
  netsim::Host& host() { return host_; }

  /// Dialog for a call-id, if any.
  const sip::Dialog* find_call(const std::string& call_id) const;
  size_t active_calls() const;
  /// Jitter buffer of the media session (exists while any call is live).
  const rtp::JitterBuffer& jitter_buffer() const { return jitter_buffer_; }
  const std::map<uint32_t, rtp::RtpStreamStats>& rx_streams() const { return rx_streams_; }
  /// Aggregate statistics over all RTP arriving at the media port,
  /// regardless of SSRC — the "consecutive packets" view the paper's RTP
  /// attack rule (§4.2.4) is defined on.
  const rtp::RtpStreamStats& rx_port_stats() const { return rx_port_stats_; }

  std::function<void(const std::string& call_id)> on_call_established;
  std::function<void(const std::string& call_id)> on_call_ended;
  std::function<void(const ImRecord&)> on_im;
  /// Fires when this client genuinely sends an IM — host-based ground truth
  /// a co-located IDS can subscribe to (cooperative detection, paper §6).
  std::function<void(const std::string& target_aor, const std::string& text)> on_im_sent;
  /// Fires when this client genuinely hangs up a call — host-based ground
  /// truth a co-located IDS vouches to peers so a spoofed BYE (forged
  /// source, correct dialog state) is attributable fleet-wide.
  std::function<void(const std::string& call_id)> on_bye_sent;
  /// Likewise for a genuine mid-call re-INVITE (media migration).
  std::function<void(const std::string& call_id)> on_reinvite_sent;

 private:
  struct Call {
    std::unique_ptr<sip::Dialog> dialog;
    bool media_running = false;
    uint16_t rtp_seq = 0;
    uint32_t rtp_timestamp = 0;
    uint32_t ssrc = 0;
    bool we_are_caller = false;
    uint16_t local_rtp_port = 0;  // per-call media port
  };

  /// Allocate and bind the next per-call RTP port.
  uint16_t allocate_rtp_port();

  void on_sip_datagram(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now);
  void on_rtp_datagram(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now);
  void handle_request(const sip::SipMessage& req, pkt::Endpoint from);
  void handle_invite(const sip::SipMessage& req, pkt::Endpoint from);
  void handle_bye(const sip::SipMessage& req, pkt::Endpoint from);
  void handle_message(const sip::SipMessage& req, pkt::Endpoint from);
  void handle_ack(const sip::SipMessage& req);

  /// RFC 3261 §13.3.1.4: retransmit the 2xx to an INVITE until the ACK
  /// arrives (the transaction layer won't; 2xx reliability is the UA's).
  void retransmit_200_until_ack(const std::string& call_id, sip::SipMessage rsp,
                                pkt::Endpoint to, SimDuration interval, SimTime started);

  void send_ack(const Call& call);
  void start_media(Call& call);
  void stop_media(Call& call);
  void media_tick(const std::string& call_id);
  void rtcp_tick(const std::string& call_id);
  void send_rtcp_bye(const Call& call);
  void end_call(const std::string& call_id);

  Call* find_call_mut(const std::string& call_id);
  /// Locate the call a mid-dialog request belongs to (call-id + tag match).
  Call* match_dialog(const sip::SipMessage& req);

  sip::SipMessage make_request(sip::Method method, sip::SipUri request_uri);
  std::string new_tag();
  std::string new_call_id();
  sip::Sdp local_sdp(uint16_t rtp_port, uint64_t session_version = 1) const;
  void learn_contact(const sip::SipMessage& msg, pkt::Endpoint from);

  netsim::Host& host_;
  UserAgentConfig config_;
  sip::TransactionManager tm_;
  std::map<std::string, Call> calls_;  // by Call-ID
  std::map<std::string, pkt::Endpoint, std::less<>> contact_cache_;  // aor -> endpoint
  std::vector<ImRecord> ims_;
  rtp::JitterBuffer jitter_buffer_;
  std::map<uint32_t, rtp::RtpStreamStats> rx_streams_;  // by SSRC
  rtp::RtpStreamStats rx_port_stats_{8000};             // all SSRCs combined
  CallStats stats_;
  pkt::Endpoint media_local_;  // first/primary media endpoint (= base port)
  uint16_t next_rtp_port_;
  bool registered_ = false;
  bool crashed_ = false;
  uint64_t next_id_ = 1;
};

}  // namespace scidive::voip
