#include "voip/proxy.h"

#include "common/logging.h"
#include "common/strings.h"

namespace scidive::voip {

using sip::Method;
using sip::SipMessage;

ProxyRegistrar::ProxyRegistrar(netsim::Host& host, ProxyConfig config)
    : host_(host), config_(std::move(config)) {
  if (config_.realm.empty()) config_.realm = config_.domain;
  host_.bind_udp(config_.sip_port,
                 [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now) {
                   on_datagram(from, payload, now);
                 });
}

void ProxyRegistrar::add_user(const std::string& user, const std::string& password) {
  passwords_[user] = password;
}

std::optional<pkt::Endpoint> ProxyRegistrar::lookup(const std::string& aor) const {
  auto it = bindings_.find(aor);
  if (it == bindings_.end()) return std::nullopt;
  if (it->second.expires_at != 0 && it->second.expires_at < host_.now()) return std::nullopt;
  return it->second.contact;
}

void ProxyRegistrar::reply(const SipMessage& req, int code, const std::string& reason,
                           pkt::Endpoint to) {
  auto rsp = SipMessage::response(code, reason);
  for (const char* h : {"Via", "From", "To", "Call-ID", "CSeq"}) {
    for (auto v : req.headers().get_all(h)) rsp.headers().add(h, std::string(v));
  }
  host_.send_udp(config_.sip_port, to, rsp.to_string());
}

void ProxyRegistrar::on_datagram(pkt::Endpoint from, std::span<const uint8_t> payload,
                                 SimTime now) {
  if (screen_) {
    switch (screen_(from, payload, now)) {
      case ScreenAction::kPass:
        break;
      case ScreenAction::kRateLimit: {
        ++stats_.screened_limited;
        // Reject requests visibly so well-behaved UAs back off; responses
        // cannot be 503'd, they are simply not forwarded while limited.
        if (auto req = SipMessage::parse(payload); req && req.value().is_request())
          reply(req.value(), 503, "Service Unavailable", from);
        return;
      }
      case ScreenAction::kQuarantine:
      case ScreenAction::kDrop:
        ++stats_.screened_dropped;
        return;
    }
  }
  auto msg = SipMessage::parse(payload);
  if (!msg) {
    LOG_DEBUG("proxy", "unparseable SIP datagram from %s", from.to_string().c_str());
    return;
  }
  if (msg.value().is_response()) {
    forward_response(std::move(msg.value()));
    return;
  }
  if (msg.value().method() == Method::kRegister) {
    handle_register(msg.value(), from, now);
    return;
  }
  forward_request(std::move(msg.value()), from);
}

void ProxyRegistrar::handle_register(const SipMessage& req, pkt::Endpoint from, SimTime now) {
  auto from_hdr = req.from();
  if (!from_hdr.ok() || !req.well_formed()) {
    ++stats_.registers_rejected;
    reply(req, 400, "Bad Request", from);
    return;
  }
  std::string aor = from_hdr.value().uri.address_of_record();
  std::string user = from_hdr.value().uri.user();

  if (config_.require_auth) {
    auto pw = passwords_.find(user);
    if (pw == passwords_.end()) {
      ++stats_.registers_rejected;
      reply(req, 403, "Forbidden", from);
      return;
    }
    auto auth_header = req.headers().get("Authorization");
    bool authed = false;
    if (auth_header) {
      auto creds = sip::DigestCredentials::parse(*auth_header);
      authed = creds.ok() && creds.value().username == user &&
               sip::verify_digest(creds.value(), pw->second, "REGISTER");
    }
    if (!authed) {
      // Challenge (or re-challenge a wrong guess) with 401.
      sip::DigestChallenge challenge{
          .realm = config_.realm,
          .nonce = str::format("n%llu-%lld", static_cast<unsigned long long>(nonce_counter_++),
                               static_cast<long long>(now))};
      auto rsp = SipMessage::response(401, "Unauthorized");
      for (const char* h : {"Via", "From", "To", "Call-ID", "CSeq"}) {
        for (auto v : req.headers().get_all(h)) rsp.headers().add(h, std::string(v));
      }
      rsp.headers().add("WWW-Authenticate", challenge.to_header_value());
      host_.send_udp(config_.sip_port, from, rsp.to_string());
      ++stats_.registers_challenged;
      return;
    }
  }

  // Bind the contact.
  pkt::Endpoint contact = from;
  auto contact_hdr = req.contact();
  if (contact_hdr.ok()) {
    auto addr = pkt::Ipv4Address::parse(contact_hdr.value().uri.host());
    if (addr) contact = {*addr, contact_hdr.value().uri.port_or_default()};
  }
  uint32_t expires = req.expires().value_or(config_.default_expires);
  bindings_[aor] =
      Binding{contact, expires == 0 ? now : now + static_cast<SimDuration>(expires) * kSecond};
  if (expires == 0) bindings_.erase(aor);  // de-registration
  ++stats_.registers_accepted;
  reply(req, 200, "OK", from);
}

void ProxyRegistrar::forward_request(SipMessage req, pkt::Endpoint from) {
  // Loop detection: if we already have a Via on this request, drop it.
  std::string own_host = host_.address().to_string();
  for (auto v : req.headers().get_all("Via")) {
    auto via = sip::Via::parse(v);
    if (via.ok() && via.value().host == own_host) {
      ++stats_.loops_dropped;
      return;
    }
  }

  uint32_t max_forwards = req.max_forwards().value_or(70);
  if (max_forwards == 0) {
    ++stats_.loops_dropped;
    reply(req, 483, "Too Many Hops", from);
    return;
  }
  req.headers().set("Max-Forwards", str::format("%u", max_forwards - 1));

  // Resolve the next hop: IP-literal request URIs go straight there,
  // domain URIs through the registrar bindings.
  pkt::Endpoint target;
  const sip::SipUri& uri = req.request_uri();
  if (auto ip = pkt::Ipv4Address::parse(uri.host())) {
    target = {*ip, uri.port_or_default()};
  } else {
    auto binding = lookup(uri.address_of_record());
    if (!binding) {
      ++stats_.not_found;
      reply(req, 404, "Not Found", from);
      return;
    }
    target = *binding;
  }

  // Push our Via so the response returns through us. Retransmissions of
  // the same client transaction reuse our previous branch.
  std::string tx_key;
  {
    auto via = req.top_via();
    auto cs = req.cseq();
    tx_key = (via.ok() && via.value().branch() ? *via.value().branch() : "?") + "|" +
             req.method_text() + "|" + (cs.ok() ? cs.value().to_string() : "?");
  }
  auto [branch_it, fresh_tx] = branch_map_.try_emplace(tx_key);
  if (fresh_tx) {
    branch_it->second = str::format("z9hG4bK-proxy-%llu",
                                    static_cast<unsigned long long>(nonce_counter_++));
  }
  const std::string& branch = branch_it->second;
  sip::Via own;
  own.host = own_host;
  own.port = config_.sip_port;
  own.params["branch"] = branch;
  std::vector<std::string> vias;
  for (auto v : req.headers().get_all("Via")) vias.emplace_back(v);
  req.headers().remove("Via");
  req.headers().add("Via", own.to_string());
  for (auto& v : vias) req.headers().add("Via", v);

  // Accounting: remember INVITEs so the 200 passing back can be billed.
  if (req.method() == Method::kInvite && accounting_ != nullptr) {
    auto from_hdr = req.from();
    auto to_hdr = req.to();
    std::string billed = from_hdr.ok() ? from_hdr.value().uri.address_of_record() : "?";
    if (billing_identity_bug_) {
      // The §3.2 vulnerability: a crafted header overrides the billed
      // identity without any validation.
      if (auto forged = req.headers().get("X-Billing-Identity")) billed = std::string(*forged);
    }
    pending_bills_[branch] = PendingBill{
        req.call_id().value_or("?"), billed,
        to_hdr.ok() ? to_hdr.value().uri.address_of_record() : "?"};
  }

  host_.send_udp(config_.sip_port, target, req.to_string());
  ++stats_.requests_forwarded;
}

void ProxyRegistrar::forward_response(SipMessage rsp) {
  std::vector<std::string> vias;
  for (auto v : rsp.headers().get_all("Via")) vias.emplace_back(v);
  if (vias.empty()) return;
  auto top = sip::Via::parse(vias[0]);
  if (!top.ok() || top.value().host != host_.address().to_string()) {
    LOG_DEBUG("proxy", "response whose top Via is not ours; dropping");
    return;
  }
  if (vias.size() < 2) return;  // nowhere to forward

  // Accounting: a 200 completing a tracked INVITE starts billing.
  if (rsp.status_code() == 200 && accounting_ != nullptr && top.value().branch()) {
    auto it = pending_bills_.find(*top.value().branch());
    if (it != pending_bills_.end()) {
      auto cs = rsp.cseq();
      if (cs.ok() && cs.value().method == "INVITE") {
        accounting_->call_started(it->second.call_id, it->second.from_aor, it->second.to_aor);
        pending_bills_.erase(it);
      }
    }
  }

  rsp.headers().remove("Via");
  for (size_t i = 1; i < vias.size(); ++i) rsp.headers().add("Via", vias[i]);
  auto next = sip::Via::parse(vias[1]);
  if (!next.ok()) return;
  auto addr = pkt::Ipv4Address::parse(next.value().host);
  if (!addr) return;
  host_.send_udp(config_.sip_port, {*addr, next.value().port}, rsp.to_string());
  ++stats_.responses_forwarded;
}

}  // namespace scidive::voip
