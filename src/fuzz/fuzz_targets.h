// Fuzz entry points shared by two drivers:
//   - libFuzzer executables (src/fuzz/targets/*.cc, built only when the
//     compiler is Clang and SCIDIVE_FUZZ=ON) call one target per binary;
//   - the ctest corpus-replay tests call every target over the checked-in
//     corpus plus a deterministic seeded input set, so the same code paths
//     are exercised on every platform without a fuzzing toolchain.
//
// Each target must be total: any byte string returns 0 without crashing,
// hanging or allocating unboundedly. Multi-packet targets interpret the
// input as length-prefixed records ([u16 be length][bytes] repeated) so a
// fuzzer can evolve packet sequences, not just single packets.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scidive::fuzz {

/// SIP message grammar: SipMessage::parse + reserialization + the lazy
/// structured-header accessors.
int fuzz_sip_message(const uint8_t* data, size_t size);

/// SDP body parser.
int fuzz_sdp(const uint8_t* data, size_t size);

/// RTP codec: parse, and reserialize-reparse when the input parses.
int fuzz_rtp(const uint8_t* data, size_t size);

/// RTCP compound parser.
int fuzz_rtcp(const uint8_t* data, size_t size);

/// IPv4 fragment reassembly: input is length-prefixed datagram records fed
/// to one Ipv4Reassembler with advancing timestamps (exercises overlap,
/// duplicate and hole handling plus expiry).
int fuzz_fragment_reassembly(const uint8_t* data, size_t size);

/// Full Distiller over length-prefixed packet records.
int fuzz_distiller(const uint8_t* data, size_t size);

/// Whole single-threaded engine (distiller + trails + events + rules) over
/// length-prefixed packet records.
int fuzz_engine(const uint8_t* data, size_t size);

/// Ruleset DSL front end: lexer + parser + compiler over the raw input as
/// `.sdr` text. Rulesets are operator input, so the loader must reject any
/// malformed text with a diagnostic — never crash, hang, or partially load.
/// When the input compiles, the target also instantiates the rules, runs
/// the disassembler, and drives the transition programs over a small
/// synthetic event sweep so fuzzer-shaped rules exercise the interpreter.
int fuzz_ruledsl(const uint8_t* data, size_t size);

/// Prevention path: length-prefixed packet records through an inline-mode
/// engine running the prevention ruleset with hair-trigger thresholds, so
/// fuzzer-shaped SIP reaches the verdict/enforcement machinery. Beyond
/// no-crash, the target traps if the per-packet accounting identity breaks:
/// every inspected packet must get exactly one decision, the engine's
/// decision counters must agree with the actions on_packet returned, and
/// the non-mutating peek must never change them.
int fuzz_verdict(const uint8_t* data, size_t size);

/// Established-flow fast-path differential: the same stream — a
/// deterministic prelude that leaves a media flow mid-bypass, then the
/// fuzzer's length-prefixed packet records — through two single engines,
/// fast path on vs off. Mutated RTP trains (SSRC flips, sequence jumps,
/// mid-stream BYEs, garbage) must never diverge the rendered alert
/// sequence or the packet accounting; the target traps on any difference.
int fuzz_fastpath(const uint8_t* data, size_t size);

/// SEP-v2 gossip frame decoder (fleet/sep_wire.h) plus the SEP1 compat
/// path. Beyond no-crash: any frame this build fully decodes (no unknown
/// record types, not legacy SEP1) must survive a re-encode/decode round
/// trip with an identical record list, under both compression settings —
/// the property that makes versioned gossip safe to evolve.
int fuzz_sep_wire(const uint8_t* data, size_t size);

/// Pcap file decoder: the raw input is read as a capture file (global
/// header, record headers, bodies). Exercises truncated/oversized record
/// lengths, snaplen lies, malformed global headers, both byte orders and
/// both supported link types. When the stream decodes cleanly, the decoded
/// packets are re-exported under both link types and re-read (round trip).
int fuzz_pcap(const uint8_t* data, size_t size);

struct FuzzTarget {
  const char* name;
  int (*fn)(const uint8_t*, size_t);
};

/// Every target above, for table-driven replay tests.
constexpr FuzzTarget kFuzzTargets[] = {
    {"sip_message", fuzz_sip_message},
    {"sdp", fuzz_sdp},
    {"rtp", fuzz_rtp},
    {"rtcp", fuzz_rtcp},
    {"fragment_reassembly", fuzz_fragment_reassembly},
    {"distiller", fuzz_distiller},
    {"engine", fuzz_engine},
    {"ruledsl", fuzz_ruledsl},
    {"verdict", fuzz_verdict},
    {"fastpath", fuzz_fastpath},
    {"sep_wire", fuzz_sep_wire},
    {"pcap", fuzz_pcap},
};

}  // namespace scidive::fuzz
