#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/strings.h"
#include "fleet/sep_wire.h"
#include "fuzz/mutator.h"
#include "rtp/rtcp.h"
#include "rtp/rtp.h"
#include "sip/message.h"
#include "sip/sdp.h"

namespace scidive::fuzz {
namespace {

constexpr pkt::Ipv4Address kAlice{10, 0, 0, 1};
constexpr pkt::Ipv4Address kBob{10, 0, 0, 2};
constexpr pkt::Ipv4Address kProxy{10, 0, 0, 10};
constexpr uint16_t kSipPort = 5060;

sip::SipMessage basic_request(sip::Method method, const std::string& call_id,
                              uint32_t cseq) {
  auto uri = sip::SipUri::parse("sip:bob@lab.net");
  sip::SipMessage msg = sip::SipMessage::request(method, uri.value());
  msg.headers().add("Via", "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK" + call_id);
  msg.headers().add("From", "\"Alice\" <sip:alice@lab.net>;tag=a" + call_id);
  msg.headers().add("To", "<sip:bob@lab.net>");
  msg.headers().add("Call-ID", call_id);
  msg.headers().add("CSeq", str::format("%u %s", cseq,
                                        std::string(sip::method_name(method)).c_str()));
  msg.headers().add("Max-Forwards", "70");
  msg.headers().add("Contact", "<sip:alice@10.0.0.1:5060>");
  return msg;
}

sip::SipMessage basic_response(int code, const std::string& reason,
                               const std::string& call_id, uint32_t cseq,
                               const std::string& cseq_method) {
  sip::SipMessage msg = sip::SipMessage::response(code, reason);
  msg.headers().add("Via", "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK" + call_id);
  msg.headers().add("From", "\"Alice\" <sip:alice@lab.net>;tag=a" + call_id);
  msg.headers().add("To", "<sip:bob@lab.net>;tag=b" + call_id);
  msg.headers().add("Call-ID", call_id);
  msg.headers().add("CSeq", str::format("%u %s", cseq, cseq_method.c_str()));
  return msg;
}

void add_sdp(sip::SipMessage& msg, const std::string& addr, uint16_t port) {
  sip::Sdp sdp = sip::make_audio_sdp(addr, port, /*session_id=*/1234);
  msg.set_body(sdp.to_string(), "application/sdp");
}

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

}  // namespace

std::vector<std::string> sip_seeds() {
  std::vector<std::string> out;

  auto invite = basic_request(sip::Method::kInvite, "seed-call-1", 1);
  add_sdp(invite, "10.0.0.1", 4000);
  out.push_back(invite.to_string());

  auto ok = basic_response(200, "OK", "seed-call-1", 1, "INVITE");
  add_sdp(ok, "10.0.0.2", 4002);
  out.push_back(ok.to_string());

  out.push_back(basic_request(sip::Method::kAck, "seed-call-1", 1).to_string());
  out.push_back(basic_request(sip::Method::kBye, "seed-call-1", 2).to_string());
  out.push_back(basic_response(200, "OK", "seed-call-1", 2, "BYE").to_string());

  auto reg = basic_request(sip::Method::kRegister, "seed-reg-1", 1);
  reg.headers().add("Expires", "3600");
  out.push_back(reg.to_string());

  auto challenge = basic_response(401, "Unauthorized", "seed-reg-1", 1, "REGISTER");
  challenge.headers().add(
      "WWW-Authenticate",
      "Digest realm=\"lab.net\", nonce=\"abcd1234\", algorithm=MD5");
  out.push_back(challenge.to_string());

  auto im = basic_request(sip::Method::kMessage, "seed-im-1", 1);
  im.set_body("hello from the corpus", "text/plain");
  out.push_back(im.to_string());

  auto reinvite = basic_request(sip::Method::kInvite, "seed-call-1", 3);
  add_sdp(reinvite, "10.0.0.1", 4010);
  out.push_back(reinvite.to_string());

  out.push_back(basic_response(180, "Ringing", "seed-call-1", 1, "INVITE").to_string());
  out.push_back(basic_response(486, "Busy Here", "seed-call-2", 1, "INVITE").to_string());
  out.push_back(basic_request(sip::Method::kOptions, "seed-opt-1", 1).to_string());
  return out;
}

std::vector<Bytes> rtp_seeds() {
  std::vector<Bytes> out;
  const Bytes frame(160, 0x7f);  // one 20 ms G.711 frame
  const uint16_t seqs[] = {0, 1, 1000, 65533, 65534, 65535};
  for (uint16_t seq : seqs) {
    rtp::RtpHeader h;
    h.sequence = seq;
    h.timestamp = static_cast<uint32_t>(seq) * rtp::kSamplesPer20Ms;
    h.ssrc = 0xdecade00 + (seq & 0xf);
    h.marker = seq == 0;
    out.push_back(rtp::serialize_rtp(h, frame));
  }
  rtp::RtpHeader with_csrc;
  with_csrc.sequence = 7;
  with_csrc.ssrc = 0x11112222;
  with_csrc.csrc = {0xaaaa0001, 0xaaaa0002};
  out.push_back(rtp::serialize_rtp(with_csrc, frame));

  rtp::RtpHeader tiny;
  tiny.sequence = 9;
  tiny.ssrc = 0x33334444;
  out.push_back(rtp::serialize_rtp(tiny, {}));  // header-only packet
  return out;
}

std::vector<Bytes> rtcp_seeds() {
  std::vector<Bytes> out;
  rtp::RtcpSenderReport sr;
  sr.ssrc = 0xdecade01;
  sr.ntp_timestamp = 0x83aa7e80'00000000ULL;
  sr.rtp_timestamp = 160 * 50;
  sr.packet_count = 50;
  sr.octet_count = 50 * 160;
  sr.reports.push_back({0x55556666, 3, 12, 70000, 40});
  out.push_back(rtp::serialize_rtcp(sr));

  rtp::RtcpReceiverReport rr;
  rr.ssrc = 0x55556666;
  rr.reports.push_back({0xdecade01, 0, 0, 50, 12});
  out.push_back(rtp::serialize_rtcp(rr));

  rtp::RtcpBye bye;
  bye.ssrcs = {0xdecade01};
  bye.reason = "teardown";
  out.push_back(rtp::serialize_rtcp(bye));

  rtp::RtcpBye empty_bye;
  out.push_back(rtp::serialize_rtcp(empty_bye));
  return out;
}

std::vector<Bytes> datagram_seeds() {
  std::vector<Bytes> out;
  uint16_t ip_id = 1;
  for (const std::string& msg : sip_seeds()) {
    out.push_back(pkt::make_udp_packet({kAlice, kSipPort}, {kBob, kSipPort},
                                       to_bytes(msg), ip_id++)
                      .data);
  }
  for (const Bytes& rtp : rtp_seeds()) {
    out.push_back(
        pkt::make_udp_packet({kAlice, 4000}, {kBob, 4002}, rtp, ip_id++).data);
  }
  for (const Bytes& rtcp : rtcp_seeds()) {
    out.push_back(
        pkt::make_udp_packet({kAlice, 4001}, {kBob, 4003}, rtcp, ip_id++).data);
  }
  // An ACC record shaped datagram at the accounting port.
  out.push_back(pkt::make_udp_packet(
                    {kProxy, 9009}, {kBob, 9009},
                    to_bytes("ACC START seed-call-1 alice@lab.net bob@lab.net"),
                    ip_id++)
                    .data);
  // Minimal and non-UDP datagrams exercise the carrier parsers.
  pkt::Ipv4Header icmp;
  icmp.protocol = pkt::kProtoIcmp;
  icmp.src = kAlice;
  icmp.dst = kBob;
  const uint8_t ping[] = {8, 0, 0, 0};
  out.push_back(pkt::serialize_ipv4(icmp, ping));
  pkt::Ipv4Header empty;
  empty.protocol = pkt::kProtoUdp;
  empty.src = kAlice;
  empty.dst = kBob;
  out.push_back(pkt::serialize_ipv4(empty, {}));
  return out;
}

std::vector<Bytes> sep_frame_seeds() {
  std::vector<Bytes> out;

  // One frame per record type, plus a kitchen-sink batch — uncompressed
  // and run-compressed — so a mutation is one structured step away from
  // every branch of the decoder.
  core::Event event;
  event.type = core::EventType::kRtpAfterBye;
  event.session = "seed-call-1";
  event.time = msec(1200);
  event.aor = "bob@lab.net";
  event.endpoint = {kBob, 4002};
  event.value = -7;
  event.detail = "RTP after BYE from the callee's old media endpoint";

  for (bool compress : {false, true}) {
    fleet::SepEncoder enc("ids-seed", /*epoch=*/3);
    enc.add_event(event);
    core::Event second = event;
    second.type = core::EventType::kSipByeSeen;
    second.time = event.time + msec(4);  // near-zero delta, the common case
    second.value = 0;
    second.detail.clear();
    enc.add_event(second);
    enc.add_verdict(fleet::SepVerdict{"spit-graylist", core::VerdictAction::kRateLimit,
                                      "seed-call-9", "spammer@lab.net", {kBob, 5083},
                                      msec(1500)});
    enc.add_counter(fleet::SepCounter{fleet::CounterKind::kRegisterFlood, "10.0.0.66",
                                      sec(10), 17});
    enc.add_vouch(fleet::SepVouch{fleet::VouchKind::kBye, "seed-call-1", msec(1190)});
    enc.add_handoff(fleet::SepHandoff{"seed-call-1", "ids-peer", 42});
    enc.add_hello();
    out.push_back(enc.finish(compress));
  }

  // A long-run detail makes the RLE branch genuinely shrink the body.
  fleet::SepEncoder runs("ids-seed", 3);
  core::Event padded = event;
  padded.detail = std::string(600, 'a');
  runs.add_event(padded);
  out.push_back(runs.finish(/*compress=*/true));

  // Deprecated SEP1 text line (the decode_frame_any compat path).
  const std::string sep1 = fleet::serialize_event("ids-old", event);
  out.emplace_back(sep1.begin(), sep1.end());
  return out;
}

std::vector<std::string> ruleset_seeds() {
  std::vector<std::string> out;

  // A stateless template-only rule (the rtp-attack shape).
  out.push_back(R"sdr(rule stateless-media {
  on RtpSeqJump {
    alert critical "sequence number jumped by {value} between consecutive RTP packets (bound 100)";
  }
  on NonRtpOnMediaPort {
    alert warning "undecodable datagram aimed at an active media port";
  }
}
)sdr");

  // Time-window guards: since()/within() over a time slot (the bye-attack
  // shape, §4.3 window m).
  out.push_back(R"sdr(# forged-BYE window rule
rule window-m {
  key session;
  state {
    time bye_at = never;
  }
  on SipByeSeen {
    set bye_at = time;
  }
  on RtpPacketSeen {
    if within(bye_at, 2s) {
      alert critical "RTP {since(bye_at)} after a BYE from {endpoint}";
    }
  }
}
)sdr");

  // Every slot type, literal inits, addr()/count()/has_trail(), eventset
  // accumulation, rendering formats and brace escapes.
  out.push_back(R"sdr(rule kitchen-sink {
  key aor;
  state {
    int hits = 0;
    duration budget = 1500ms;
    time first = never;
    bool primed = false;
    string label = "seed";
    addr origin;
    endpoint peer;
    eventset kinds;
  }
  on SipRegisterSeen, SipAuthFailure {
    add kinds;
    set hits = value;
    if first == never {
      set first = time;
      set origin = addr(endpoint);
      set peer = endpoint;
    }
    if count(kinds) >= 2 && !primed && has_trail("sip") {
      set primed = true;
      alert info "{{escaped}} {label}: {count(kinds)} kinds ({kinds}) from {peer} since {since(first):sec1}s ago";
    }
  }
}
)sdr");

  // Two rules in one file; comparison spread; else-branches; || and !=.
  out.push_back(R"sdr(rule pair-a {
  key session;
  state { int last = 0; bool seen = false; }
  on RtpSeqJump {
    if !seen {
      set seen = true;
      set last = value;
    } else {
      if value > last || value != 0 {
        alert warning "jump {value} after {last}";
      }
    }
  }
}

rule pair-b {
  on SipMalformed {
    alert info "malformed signaling: {detail}";
  }
}
)sdr");

  // Minimal rule — the smallest valid ruleset.
  out.push_back("rule tiny { on AccUnmatched { alert info \"acc\"; } }\n");
  return out;
}

std::vector<Bytes> load_corpus_dir(const std::string& dir) {
  std::vector<Bytes> out;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    out.push_back(std::move(data));
  }
  return out;
}

std::vector<pkt::Packet> adversarial_stream(uint64_t seed, const StreamConfig& config) {
  Mutator mut(seed);
  Rng& rng = mut.rng();
  std::vector<pkt::Packet> stream;
  SimTime now = msec(1);
  auto stamp = [&](pkt::Packet p) {
    now += usec(rng.uniform_int(100, 5000));
    p.timestamp = now;
    stream.push_back(std::move(p));
  };

  uint16_t ip_id = 100;
  // Benign backbone: complete calls between distinct principals so the
  // stateful rules have real sessions to track.
  for (size_t call = 0; call < config.benign_calls; ++call) {
    const auto caller = pkt::Ipv4Address(10, 0, 1, static_cast<uint8_t>(1 + call));
    const auto callee = pkt::Ipv4Address(10, 0, 2, static_cast<uint8_t>(1 + call));
    const uint16_t caller_rtp = static_cast<uint16_t>(4000 + 4 * call);
    const uint16_t callee_rtp = static_cast<uint16_t>(4002 + 4 * call);
    const std::string call_id = str::format("adv-call-%zu", call);

    auto invite = basic_request(sip::Method::kInvite, call_id, 1);
    add_sdp(invite, caller.to_string(), caller_rtp);
    stamp(pkt::make_udp_packet({caller, kSipPort}, {callee, kSipPort},
                               to_bytes(invite.to_string()), ip_id++));

    auto ok = basic_response(200, "OK", call_id, 1, "INVITE");
    add_sdp(ok, callee.to_string(), callee_rtp);
    stamp(pkt::make_udp_packet({callee, kSipPort}, {caller, kSipPort},
                               to_bytes(ok.to_string()), ip_id++));

    stamp(pkt::make_udp_packet({caller, kSipPort}, {callee, kSipPort},
                               to_bytes(basic_request(sip::Method::kAck, call_id, 1).to_string()),
                               ip_id++));

    const Bytes frame(160, 0x7f);
    for (uint16_t i = 0; i < 10; ++i) {
      rtp::RtpHeader h;
      h.sequence = i;
      h.timestamp = i * rtp::kSamplesPer20Ms;
      h.ssrc = 0xabc00000 + static_cast<uint32_t>(call);
      stamp(pkt::make_udp_packet({caller, caller_rtp}, {callee, callee_rtp},
                                 rtp::serialize_rtp(h, frame), ip_id++));
    }

    stamp(pkt::make_udp_packet({caller, kSipPort}, {callee, kSipPort},
                               to_bytes(basic_request(sip::Method::kBye, call_id, 2).to_string()),
                               ip_id++));
    stamp(pkt::make_udp_packet({callee, kSipPort}, {caller, kSipPort},
                               to_bytes(basic_response(200, "OK", call_id, 2, "BYE").to_string()),
                               ip_id++));
  }

  // Mutated packets: each starts from a valid seed datagram.
  const std::vector<Bytes> seeds = datagram_seeds();
  const std::vector<std::string> sip = sip_seeds();
  for (size_t i = 0; i < config.mutated; ++i) {
    if (rng.chance(0.3)) {
      // SIP text mutation re-wrapped in a fresh valid carrier.
      const std::string& base = sip[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(sip.size()) - 1))];
      std::string twisted = mut.mutate_sip(base);
      stamp(pkt::make_udp_packet({kAlice, kSipPort}, {kBob, kSipPort},
                                 to_bytes(twisted), ip_id++));
    } else {
      pkt::Packet base;
      base.data = seeds[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(seeds.size()) - 1))];
      stamp(mut.mutate_packet(base));
    }
  }

  // Adversarial fragment trains built from oversized SIP datagrams.
  for (size_t i = 0; i < config.fragment_trains; ++i) {
    auto invite = basic_request(sip::Method::kInvite,
                                str::format("frag-call-%zu", i), 1);
    add_sdp(invite, "10.0.3.1", 4100);
    pkt::Packet whole = pkt::make_udp_packet({pkt::Ipv4Address(10, 0, 3, 1), kSipPort},
                                             {kBob, kSipPort},
                                             to_bytes(invite.to_string()), ip_id++);
    for (pkt::Packet& frag : mut.adversarial_fragments(whole)) stamp(std::move(frag));
  }

  // Raw garbage: random bytes, datagram-sized.
  for (size_t i = 0; i < config.garbage; ++i) {
    pkt::Packet junk;
    junk.data.resize(static_cast<size_t>(rng.uniform_int(1, 200)));
    for (auto& c : junk.data) c = static_cast<uint8_t>(rng.next_u32());
    stamp(std::move(junk));
  }
  return stream;
}

}  // namespace scidive::fuzz
