#include "fuzz/differential.h"

#include <map>
#include <sstream>
#include <string_view>
#include <tuple>

#include "capture/pcap.h"
#include "common/strings.h"

namespace scidive::fuzz {
namespace {

/// (rule, session) -> count. The alert identity that must survive sharding.
using AlertMultiset = std::map<std::pair<std::string, std::string>, size_t>;

AlertMultiset alert_multiset(const std::vector<core::Alert>& alerts) {
  AlertMultiset out;
  for (const core::Alert& a : alerts) ++out[{a.rule, a.session}];
  return out;
}

/// (rule, session, action) -> count. The prevention identity: what a rule
/// decided to do about whom must survive sharding just like alerts do.
using VerdictMultiset = std::map<std::tuple<std::string, std::string, int>, size_t>;

VerdictMultiset verdict_multiset(const std::vector<core::Verdict>& verdicts) {
  VerdictMultiset out;
  for (const core::Verdict& v : verdicts) {
    ++out[{v.rule, v.session, static_cast<int>(v.action)}];
  }
  return out;
}

void compare_verdicts(const VerdictMultiset& single, const VerdictMultiset& sharded,
                      const std::string& who, std::vector<std::string>& mismatches) {
  if (sharded == single) return;
  for (const auto& [key, n] : single) {
    auto it = sharded.find(key);
    const size_t have = it == sharded.end() ? 0 : it->second;
    if (have != n) {
      mismatches.push_back(str::format(
          "%s: verdict (%s, %s, %s) x%zu, single has x%zu", who.c_str(),
          std::get<0>(key).c_str(), std::get<1>(key).c_str(),
          std::string(core::verdict_action_name(
                          static_cast<core::VerdictAction>(std::get<2>(key))))
              .c_str(),
          have, n));
    }
  }
  for (const auto& [key, n] : sharded) {
    if (single.find(key) == single.end()) {
      mismatches.push_back(str::format(
          "%s: extra verdict (%s, %s, %s) x%zu not emitted by single engine",
          who.c_str(), std::get<0>(key).c_str(), std::get<1>(key).c_str(),
          std::string(core::verdict_action_name(
                          static_cast<core::VerdictAction>(std::get<2>(key))))
              .c_str(),
          n));
    }
  }
}

/// Detection-side metric families that must be topology-invariant. Packet,
/// fragment and reassembly counters are deliberately absent: the single
/// engine reassembles in its distiller while the sharded engine reassembles
/// in the router, so those legitimately differ in placement.
bool comparable_family(std::string_view name) {
  return name == "scidive_events_total" || name == "scidive_events_by_type_total" ||
         name == "scidive_alerts_total" || name == "scidive_rule_alerts_total" ||
         name == "scidive_rule_events_total" || name == "scidive_parse_errors_total";
}

bool comparable_sample(const obs::Sample& s) {
  if (s.kind != obs::InstrumentKind::kCounter) return false;
  if (!comparable_family(s.name)) return false;
  if (s.name == "scidive_parse_errors_total") {
    // The ipv4 axis counts fragment-train failures, which land in the
    // router (uncounted by shard distillers) under sharding.
    for (const auto& [k, v] : s.labels) {
      if (k == "proto" && v == "ipv4") return false;
    }
  }
  return true;
}

std::string label_string(const obs::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    out += k + "=" + v;
  }
  return out;
}

void compare_metrics(const obs::Snapshot& single, obs::Snapshot sharded,
                     const std::string& who, std::vector<std::string>& mismatches) {
  for (const obs::Sample& s : single.samples()) {
    if (!comparable_sample(s)) continue;
    uint64_t other = sharded.counter_value(s.name, s.labels);
    if (other != s.counter) {
      mismatches.push_back(str::format(
          "%s: %s{%s} = %llu, single = %llu", who.c_str(), s.name.c_str(),
          label_string(s.labels).c_str(), static_cast<unsigned long long>(other),
          static_cast<unsigned long long>(s.counter)));
    }
  }
  // Reverse direction: a lazily-registered cell present only under sharding
  // is itself a divergence.
  for (const obs::Sample& s : sharded.samples()) {
    if (!comparable_sample(s) || s.counter == 0) continue;
    if (single.find(s.name, s.labels) == nullptr) {
      mismatches.push_back(str::format(
          "%s: %s{%s} = %llu, absent from single engine", who.c_str(),
          s.name.c_str(), label_string(s.labels).c_str(),
          static_cast<unsigned long long>(s.counter)));
    }
  }
}

}  // namespace

std::string DifferentialReport::to_string() const {
  if (ok()) {
    return str::format("differential oracle OK: %zu packets, %zu alerts", packets,
                       single_alerts);
  }
  std::string out = str::format("differential oracle FAILED (%zu mismatches):",
                                mismatches.size());
  for (const std::string& m : mismatches) {
    out += "\n  ";
    out += m;
  }
  return out;
}

DifferentialReport run_differential(const std::vector<pkt::Packet>& stream,
                                    const DifferentialConfig& config) {
  DifferentialReport report;
  report.packets = stream.size();

  core::EngineConfig engine_config = config.engine;
  engine_config.obs.time_stages = false;
  // Fastpath-differential mode: the reference engine runs with the bypass
  // disabled; everything compared against it runs with it enabled.
  core::EngineConfig baseline_config = engine_config;
  if (config.fastpath_differential) {
    baseline_config.fastpath.enabled = false;
    engine_config.fastpath.enabled = true;
  }

  core::ScidiveEngine single(baseline_config);
  if (config.make_rules) single.set_rules(config.make_rules());
  for (const pkt::Packet& packet : stream) single.on_packet(packet);
  const AlertMultiset single_alerts = alert_multiset(single.alerts().alerts());
  const VerdictMultiset single_verdicts =
      config.verdict_mode ? verdict_multiset(single.verdicts().verdicts())
                          : VerdictMultiset{};
  const obs::Snapshot single_snapshot = single.metrics_snapshot();
  report.single_alerts = single.alerts().alerts().size();
  report.single_verdicts = config.verdict_mode ? single.verdicts().count() : 0;
  const core::EngineStats single_stats = single.stats();

  if (config.fastpath_differential) {
    // A fastpath-on single engine against the fastpath-off baseline: the
    // purest form of the bypass-changes-nothing claim, with no sharding in
    // the mix.
    core::ScidiveEngine fast(engine_config);
    if (config.make_rules) fast.set_rules(config.make_rules());
    for (const pkt::Packet& packet : stream) fast.on_packet(packet);
    if (alert_multiset(fast.alerts().alerts()) != single_alerts) {
      report.mismatches.push_back(
          "fastpath-on single: alert multiset diverged from fastpath-off baseline");
    }
    if (config.verdict_mode) {
      compare_verdicts(single_verdicts, verdict_multiset(fast.verdicts().verdicts()),
                       "fastpath-on single", report.mismatches);
    }
    compare_metrics(single_snapshot, fast.metrics_snapshot(), "fastpath-on single",
                    report.mismatches);
  }

  // Pcap-replay mode: everything downstream consumes the stream after a
  // trip through the capture file format.
  std::vector<pkt::Packet> reimported;
  const std::vector<pkt::Packet>* replay_stream = &stream;
  if (config.pcap_roundtrip) {
    std::ostringstream exported(std::ios::binary);
    capture::PcapWriter writer(exported);
    for (const pkt::Packet& packet : stream) writer.write(packet);
    std::istringstream back(exported.str(), std::ios::binary);
    capture::PcapFileSource source(back);
    reimported = capture::read_all(source);
    if (!source.ok()) {
      report.mismatches.push_back("pcap roundtrip: reimport failed: " + source.error());
    }
    if (reimported.size() != stream.size()) {
      report.mismatches.push_back(
          str::format("pcap roundtrip: %zu packets in, %zu back", stream.size(),
                      reimported.size()));
    } else {
      for (size_t i = 0; i < stream.size(); ++i) {
        if (reimported[i].data != stream[i].data ||
            reimported[i].timestamp != stream[i].timestamp) {
          report.mismatches.push_back(
              str::format("pcap roundtrip: packet %zu differs after reimport", i));
          break;
        }
      }
    }
    // End-to-end: a fresh single engine over the reimported stream must
    // raise the identical alert multiset.
    core::ScidiveEngine replayed(engine_config);
    if (config.make_rules) replayed.set_rules(config.make_rules());
    for (const pkt::Packet& packet : reimported) replayed.on_packet(packet);
    if (alert_multiset(replayed.alerts().alerts()) != single_alerts) {
      report.mismatches.push_back(
          "pcap roundtrip: alert multiset diverged after capture-file replay");
    }
    if (config.verdict_mode &&
        verdict_multiset(replayed.verdicts().verdicts()) != single_verdicts) {
      report.mismatches.push_back(
          "pcap roundtrip: verdict multiset diverged after capture-file replay");
    }
    replay_stream = &reimported;
  }

  for (size_t shards : config.shard_counts) {
    core::ShardedEngineConfig sc;
    sc.engine = engine_config;
    sc.num_shards = shards;
    sc.queue_capacity = config.queue_capacity;
    sc.overflow = config.overflow;
    if (config.batch_size != 0) sc.batch_size = config.batch_size;
    sc.route_invite_by_caller = config.verdict_mode;
    core::ShardedEngine sharded(sc);
    if (config.make_rules) {
      sharded.set_rules([&](size_t) { return config.make_rules(); });
    }
    if (config.rebalance_interval != 0) {
      size_t since = 0;
      for (const pkt::Packet& packet : *replay_stream) {
        sharded.on_packet(packet);
        if (++since >= config.rebalance_interval) {
          since = 0;
          sharded.rebalance();
        }
      }
    } else {
      for (const pkt::Packet& packet : *replay_stream) sharded.on_packet(packet);
    }
    sharded.flush();

    const core::ShardedEngineStats stats = sharded.stats();
    if (stats.packets_seen != replay_stream->size()) {
      report.mismatches.push_back(str::format(
          "%zu shards: front-end saw %llu of %zu packets", shards,
          static_cast<unsigned long long>(stats.packets_seen), replay_stream->size()));
    }
    // Every packet offered to the front-end is filtered, dropped on a full
    // ring, held as an incomplete fragment in the router's reassembler, or
    // seen by exactly one shard engine. Nothing may vanish.
    const uint64_t held = sharded.router().stats().fragments_held;
    if (stats.packets_seen != stats.packets_filtered + stats.packets_dropped + held +
                                  stats.engine.packets_seen) {
      report.mismatches.push_back(str::format(
          "%zu shards: accounting identity broken: seen=%llu filtered=%llu "
          "dropped=%llu held=%llu shard-seen=%llu",
          shards, static_cast<unsigned long long>(stats.packets_seen),
          static_cast<unsigned long long>(stats.packets_filtered),
          static_cast<unsigned long long>(stats.packets_dropped),
          static_cast<unsigned long long>(held),
          static_cast<unsigned long long>(stats.engine.packets_seen)));
    }
    if (stats.packets_filtered != single_stats.packets_filtered) {
      report.mismatches.push_back(str::format(
          "%zu shards: filtered %llu packets, single filtered %llu", shards,
          static_cast<unsigned long long>(stats.packets_filtered),
          static_cast<unsigned long long>(single_stats.packets_filtered)));
    }

    // With drops in play (kDrop under saturation) the alert sets may
    // legitimately differ — the lost packets are counted, not hidden.
    if (stats.packets_dropped != 0) continue;

    const AlertMultiset sharded_alerts = alert_multiset(sharded.merged_alerts());
    if (sharded_alerts != single_alerts) {
      for (const auto& [key, n] : single_alerts) {
        auto it = sharded_alerts.find(key);
        size_t have = it == sharded_alerts.end() ? 0 : it->second;
        if (have != n) {
          report.mismatches.push_back(str::format(
              "%zu shards: alert (%s, %s) x%zu, single has x%zu", shards,
              key.first.c_str(), key.second.c_str(), have, n));
        }
      }
      for (const auto& [key, n] : sharded_alerts) {
        if (single_alerts.find(key) == single_alerts.end()) {
          report.mismatches.push_back(str::format(
              "%zu shards: extra alert (%s, %s) x%zu not raised by single engine",
              shards, key.first.c_str(), key.second.c_str(), n));
        }
      }
    }

    const std::string who = str::format("%zu shards", shards);
    if (config.verdict_mode) {
      compare_verdicts(single_verdicts, verdict_multiset(sharded.merged_verdicts()),
                       who, report.mismatches);
    }

    compare_metrics(single_snapshot, sharded.metrics_snapshot(), who,
                    report.mismatches);
  }
  return report;
}

}  // namespace scidive::fuzz
