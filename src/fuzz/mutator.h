// Structure-aware adversarial mutator. Every mutation draws from one seeded
// Rng, so a (seed, op-sequence) pair replays byte-identically — the property
// the corpus-replay tests and the differential oracle depend on.
//
// Three layers of mutation, matching the attack surface SecSip-style work
// identifies in SIP/VoIP stacks:
//   - raw bytes: bit flips, truncation, insertion, splicing — exercises
//     every bounds check in the binary codecs;
//   - SIP text: torn CRLF lines, Content-Length lies, duplicated and spliced
//     headers, fold abuse — exercises the message grammar;
//   - packet/fragment: length-field lies with re-patched IPv4 checksums (so
//     the lie survives the header checksum and reaches deeper layers) and
//     adversarial fragment trains (overlap, duplicate, hole, zero-length,
//     offset lies) — exercises reassembly state machines.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "pkt/packet.h"

namespace scidive::fuzz {

class Mutator {
 public:
  explicit Mutator(uint64_t seed) : rng_(seed) {}

  Rng& rng() { return rng_; }

  // --- raw byte mutations (no structural knowledge) ---

  /// Flip 1..8 random bits.
  void bit_flip(Bytes& b);
  /// Cut the buffer at a random point (possibly to zero length).
  void truncate(Bytes& b);
  /// Insert 1..16 random bytes at a random position.
  void insert_random(Bytes& b);
  /// Erase a random region.
  void erase_region(Bytes& b);
  /// Overwrite a random region with random bytes.
  void overwrite_random(Bytes& b);
  /// Duplicate a random region in place (length-field confusion fodder).
  void duplicate_region(Bytes& b);
  /// Replace the tail of `b` with the tail of `donor` (header splicing).
  void splice(Bytes& b, const Bytes& donor);
  /// Apply `rounds` randomly chosen byte mutations from the set above.
  void mutate_bytes(Bytes& b, int rounds = 1);

  // --- SIP text mutations (grammar-aware) ---

  /// Tear line endings: CRLF becomes lone CR, lone LF, CR LF CR, or a line
  /// broken mid-token — the torn-message surface stressed by SecSip.
  std::string tear_lines(std::string_view msg);
  /// Rewrite or inject a Content-Length that disagrees with the body.
  std::string lie_content_length(std::string_view msg);
  /// Duplicate a random header line (possibly with a different value).
  std::string duplicate_header(std::string_view msg);
  /// Take the start-line + first headers of `a` and the rest of `b`.
  std::string splice_headers(std::string_view a, std::string_view b);
  /// Apply one randomly chosen SIP text mutation.
  std::string mutate_sip(std::string_view msg);

  // --- packet-level mutations (codec-aware) ---

  /// Lie in a length field (IPv4 total_length or UDP length). With
  /// probability 1/2 the IPv4 header checksum is re-patched so the packet
  /// passes header validation and the lie reaches the UDP/payload parsers.
  void lie_length_fields(Bytes& datagram);
  /// One random packet mutation: bytes, length lie, or payload-only damage.
  pkt::Packet mutate_packet(const pkt::Packet& packet);

  /// Turn a whole (unfragmented) datagram into an adversarial fragment
  /// train: overlapping fragments (including the overlap-past-final-end
  /// shape), duplicated offsets with different content, a dropped middle
  /// fragment, reordering, zero-length fragments, or an offset lie.
  /// Returns the train in delivery order; timestamps are copied from the
  /// input packet.
  std::vector<pkt::Packet> adversarial_fragments(const pkt::Packet& whole);

 private:
  size_t index_in(size_t size) { return static_cast<size_t>(rng_.uniform_int(0, static_cast<int64_t>(size) - 1)); }

  Rng rng_;
};

}  // namespace scidive::fuzz
