// Seed corpora and deterministic adversarial stream generation. The seeds
// are built with the repo's own serializers, so every seed starts valid and
// each mutation is one structured step away from well-formed — the shape
// that exercises a parser's error paths rather than its fast rejects.
//
// load_corpus_dir() replays the checked-in minimized crash corpus under
// plain ctest (no libFuzzer required); adversarial_stream() is the input
// the single-vs-sharded differential oracle feeds to both engines.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "pkt/packet.h"

namespace scidive::fuzz {

/// Wire-format SIP messages: requests and responses across the methods the
/// stack models, with and without SDP bodies and auth headers.
std::vector<std::string> sip_seeds();

/// Serialized RTP packets over a spread of seq/timestamp/ssrc/payload sizes,
/// including CSRC lists and wraparound-adjacent sequence numbers.
std::vector<Bytes> rtp_seeds();

/// Serialized RTCP sender reports, receiver reports and BYEs.
std::vector<Bytes> rtcp_seeds();

/// Whole IPv4/UDP datagrams: the SIP/RTP/RTCP seeds above wrapped in real
/// carriers addressed at the distiller's conventional ports, plus a few
/// non-UDP and minimal-size datagrams.
std::vector<Bytes> datagram_seeds();

/// Valid SEP-v2 gossip frames (fleet/sep_wire.h): every record type, both
/// compression settings, a run-heavy body, plus one deprecated SEP1 text
/// line for the compat decode path.
std::vector<Bytes> sep_frame_seeds();

/// Valid `.sdr` ruleset texts spanning the DSL grammar: the Table-1 rule
/// ports plus small rules touching every slot type, expression function,
/// template format and escape. Each compiles cleanly, so a mutation is one
/// structured step from well-formed.
std::vector<std::string> ruleset_seeds();

/// Read every regular file in `dir` sorted by filename (deterministic
/// replay order). A missing or empty directory yields an empty vector.
std::vector<Bytes> load_corpus_dir(const std::string& dir);

struct StreamConfig {
  /// Complete INVITE/200/ACK + RTP + BYE/200 call flows (benign backbone;
  /// gives the stateful rules real sessions to track).
  size_t benign_calls = 3;
  /// Structure-aware mutations of benign packets interleaved in the stream.
  size_t mutated = 120;
  /// Adversarial fragment trains (overlap/duplicate/hole/zero-length/...).
  size_t fragment_trains = 12;
  /// Raw random datagram-shaped noise.
  size_t garbage = 24;
};

/// Deterministic adversarial packet stream: same (seed, config) produces a
/// byte-identical packet sequence with strictly increasing timestamps.
std::vector<pkt::Packet> adversarial_stream(uint64_t seed, const StreamConfig& config = {});

}  // namespace scidive::fuzz
