// libFuzzer driver for fuzz_fastpath (built only with SCIDIVE_FUZZ=ON + Clang).
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return scidive::fuzz::fuzz_fastpath(data, size);
}
