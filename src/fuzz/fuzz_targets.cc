#include "fuzz/fuzz_targets.h"

#include <span>
#include <sstream>
#include <string_view>

#include "capture/pcap.h"
#include "fleet/sep_wire.h"
#include "pkt/fragment.h"
#include "rtp/rtcp.h"
#include "rtp/rtp.h"
#include "ruledsl/loader.h"
#include "scidive/distiller.h"
#include "scidive/engine.h"
#include "scidive/rules.h"
#include "sip/message.h"
#include "sip/sdp.h"

namespace scidive::fuzz {
namespace {

/// Iterate [u16 be length][bytes] records; a final short record is taken
/// as-is (fuzzers routinely truncate, and the tail bytes are still input).
template <typename Fn>
void for_each_record(const uint8_t* data, size_t size, Fn&& fn) {
  size_t pos = 0;
  while (pos + 2 <= size) {
    size_t len = static_cast<size_t>(data[pos]) << 8 | data[pos + 1];
    pos += 2;
    len = std::min(len, size - pos);
    fn(std::span<const uint8_t>(data + pos, len));
    pos += len;
    if (len == 0) break;  // zero-length records would loop forever
  }
}

}  // namespace

int fuzz_sip_message(const uint8_t* data, size_t size) {
  auto parsed = sip::SipMessage::parse(std::span<const uint8_t>(data, size));
  if (!parsed.ok()) return 0;
  const sip::SipMessage& msg = parsed.value();
  // Touch every lazy accessor; none may crash on a parsed message.
  (void)msg.call_id();
  (void)msg.cseq();
  (void)msg.from();
  (void)msg.to();
  (void)msg.contact();
  (void)msg.top_via();
  (void)msg.expires();
  (void)msg.max_forwards();
  (void)msg.well_formed();
  // Round trip: the serializer must accept anything the parser produced.
  (void)sip::SipMessage::parse(msg.to_string());
  return 0;
}

int fuzz_sdp(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = sip::Sdp::parse(text);
  if (parsed.ok()) {
    (void)parsed.value().audio();
    (void)sip::Sdp::parse(parsed.value().to_string());
  }
  return 0;
}

int fuzz_rtp(const uint8_t* data, size_t size) {
  auto parsed = rtp::parse_rtp(std::span<const uint8_t>(data, size));
  if (parsed.ok()) {
    Bytes wire = rtp::serialize_rtp(parsed.value().header, parsed.value().payload);
    (void)rtp::parse_rtp(wire);
  }
  return 0;
}

int fuzz_rtcp(const uint8_t* data, size_t size) {
  auto parsed = rtp::parse_rtcp(std::span<const uint8_t>(data, size));
  if (parsed.ok()) {
    const rtp::RtcpPacket& p = parsed.value();
    if (p.sr) (void)rtp::serialize_rtcp(*p.sr);
    if (p.rr) (void)rtp::serialize_rtcp(*p.rr);
    if (p.bye) (void)rtp::serialize_rtcp(*p.bye);
  }
  return 0;
}

int fuzz_fragment_reassembly(const uint8_t* data, size_t size) {
  pkt::Ipv4Reassembler reassembler;
  SimTime now = 0;
  for_each_record(data, size, [&](std::span<const uint8_t> record) {
    now += msec(1);
    (void)reassembler.push(record, now);
  });
  // Jump past the timeout so every pending assembly expires (leak check).
  (void)reassembler.expire(now + sec(60));
  return 0;
}

int fuzz_distiller(const uint8_t* data, size_t size) {
  core::Distiller distiller;
  SimTime now = 0;
  for_each_record(data, size, [&](std::span<const uint8_t> record) {
    now += msec(1);
    pkt::Packet packet;
    packet.data.assign(record.begin(), record.end());
    packet.timestamp = now;
    (void)distiller.distill(packet);
  });
  return 0;
}

int fuzz_engine(const uint8_t* data, size_t size) {
  core::EngineConfig config;
  config.obs.time_stages = false;  // determinism; wall clock is irrelevant here
  core::ScidiveEngine engine(config);
  SimTime now = 0;
  for_each_record(data, size, [&](std::span<const uint8_t> record) {
    now += msec(1);
    pkt::Packet packet;
    packet.data.assign(record.begin(), record.end());
    packet.timestamp = now;
    engine.on_packet(packet);
  });
  engine.expire_idle(now + sec(120));
  (void)engine.metrics_snapshot();
  return 0;
}

int fuzz_ruledsl(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto ruleset = ruledsl::compile_ruleset_text(text, "<fuzz>");
  if (!ruleset.ok()) return 0;  // rejected with a diagnostic — the contract
  (void)ruleset.value().dump();

  // A ruleset that compiles must also *run*: sweep every subscribed event
  // type through each rule twice (first-touch and revisit paths) across two
  // sessions, so slot updates, branches and alert rendering all execute on
  // whatever programs the fuzzer evolved.
  std::vector<core::RulePtr> rules = ruledsl::make_rules(ruleset.value());
  core::TrailManager trails;
  core::AlertSink sink;
  core::RuleContext ctx(trails, sink);
  for (const core::RulePtr& rule : rules) {
    for (int round = 0; round < 2; ++round) {
      for (size_t t = 0; t < core::kEventTypeCount; ++t) {
        if ((rule->subscriptions() >> t & 1) == 0) continue;
        core::Event event;
        event.type = static_cast<core::EventType>(t);
        event.session = round == 0 ? "fuzz-session" : "fuzz-session-2";
        event.time = sec(static_cast<int64_t>(t) + 1) * (round + 1);
        event.aor = "fuzz@lab.net";
        event.endpoint = {pkt::Ipv4Address(0x0a000002u + static_cast<uint32_t>(round)), 16384};
        event.value = static_cast<int64_t>(t) * 101 - 50;
        event.detail = "fuzz";
        rule->on_event(event, ctx);
      }
    }
    (void)rule->state_entries();
  }
  return 0;
}

int fuzz_verdict(const uint8_t* data, size_t size) {
  core::EngineConfig config;
  config.obs.time_stages = false;
  config.enforce.mode = core::EnforcementMode::kInline;
  // Hair-trigger prevention thresholds: two INVITEs from one caller inside
  // the window already graylist, so mutated SIP streams reach the verdict
  // and enforcement paths instead of dying in the parser.
  core::RulesConfig rules;
  rules.spit_graylist = true;
  rules.spit_call_threshold = 2;
  core::ScidiveEngine engine(config);
  engine.set_rules(core::make_prevention_ruleset(rules));

  uint64_t counted[core::kVerdictActionCount] = {};
  SimTime now = 0;
  for_each_record(data, size, [&](std::span<const uint8_t> record) {
    now += msec(1);
    pkt::Packet packet;
    packet.data.assign(record.begin(), record.end());
    packet.timestamp = now;
    // The non-mutating preview must be total and must not charge buckets:
    // any counter drift it caused would break the identity checked below.
    (void)engine.peek_packet(packet);
    ++counted[static_cast<size_t>(engine.on_packet(packet))];
  });
  engine.expire_idle(now + sec(120));
  (void)engine.metrics_snapshot();
  (void)engine.verdicts().verdicts();

  // Accounting identity: every inspected packet got exactly one decision,
  // and the engine's counters agree with the actions on_packet returned.
  uint64_t decided = 0;
  for (size_t a = 0; a < core::kVerdictActionCount; ++a) {
    if (engine.decisions(static_cast<core::VerdictAction>(a)) != counted[a]) {
      __builtin_trap();
    }
    decided += counted[a];
  }
  if (engine.stats().packets_inspected != decided) __builtin_trap();
  return 0;
}

namespace {

/// INVITE/200 between fixed endpoints plus a short steady RTP train, so the
/// established-flow fast path has a populated, actively bypassing flow-cache
/// entry before the fuzzer's records arrive.
void establish_cached_flow(core::ScidiveEngine& engine, SimTime upto) {
  const pkt::Endpoint a_sip{pkt::Ipv4Address(10, 0, 0, 1), 5060};
  const pkt::Endpoint b_sip{pkt::Ipv4Address(10, 0, 0, 2), 5060};
  const pkt::Endpoint a_media{pkt::Ipv4Address(10, 0, 0, 1), 16384};
  const pkt::Endpoint b_media{pkt::Ipv4Address(10, 0, 0, 2), 16384};
  auto to_bytes = [](const std::string& s) { return Bytes(s.begin(), s.end()); };

  auto invite = sip::SipMessage::request(sip::Method::kInvite, sip::SipUri("bob", "lab.net"));
  invite.headers().add("Via", "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-fp-1");
  invite.headers().add("From", "<sip:alice@lab.net>;tag=ta");
  invite.headers().add("To", "<sip:bob@lab.net>");
  invite.headers().add("Call-ID", "fastpath-call-1");
  invite.headers().add("CSeq", "1 INVITE");
  invite.headers().add("Contact", "<sip:alice@10.0.0.1:5060>");
  invite.set_body(sip::make_audio_sdp("10.0.0.1", 16384, 1).to_string(), "application/sdp");
  pkt::Packet invite_pkt = pkt::make_udp_packet(a_sip, b_sip, to_bytes(invite.to_string()));
  invite_pkt.timestamp = msec(1);
  engine.on_packet(invite_pkt);

  auto ok = sip::SipMessage::response(200, "OK");
  ok.headers().add("Via", "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-fp-1");
  ok.headers().add("From", "<sip:alice@lab.net>;tag=ta");
  ok.headers().add("To", "<sip:bob@lab.net>;tag=tb");
  ok.headers().add("Call-ID", "fastpath-call-1");
  ok.headers().add("CSeq", "1 INVITE");
  ok.headers().add("Contact", "<sip:bob@10.0.0.2:5060>");
  ok.set_body(sip::make_audio_sdp("10.0.0.2", 16384, 2).to_string(), "application/sdp");
  pkt::Packet ok_pkt = pkt::make_udp_packet(b_sip, a_sip, to_bytes(ok.to_string()));
  ok_pkt.timestamp = msec(10);
  engine.on_packet(ok_pkt);

  const Bytes frame(160, 0xd5);
  SimTime now = msec(20);
  for (uint16_t i = 1; now < upto; ++i) {
    rtp::RtpHeader h;
    h.sequence = i;
    h.timestamp = static_cast<uint32_t>(i) * rtp::kSamplesPer20Ms;
    h.ssrc = 0xfa57;
    pkt::Packet p = pkt::make_udp_packet(b_media, a_media, rtp::serialize_rtp(h, frame));
    p.timestamp = (now += msec(20));
    engine.on_packet(p);
  }
}

}  // namespace

int fuzz_fastpath(const uint8_t* data, size_t size) {
  core::EngineConfig with_config;
  with_config.obs.time_stages = false;
  core::EngineConfig without_config = with_config;
  without_config.fastpath.enabled = false;
  core::ScidiveEngine with(with_config);
  core::ScidiveEngine without(without_config);

  // The deterministic prelude runs on both engines; by its end the
  // fastpath-on engine is mid-bypass on the call's media flow, so the
  // fuzzer's records land on a warm cache and every mutation that matters
  // (SSRC flips, sequence jumps, BYEs, re-INVITEs, garbage) exercises an
  // invalidation or write-back edge.
  establish_cached_flow(with, msec(200));
  establish_cached_flow(without, msec(200));

  SimTime now = msec(300);
  for_each_record(data, size, [&](std::span<const uint8_t> record) {
    now += msec(1);
    pkt::Packet packet;
    packet.data.assign(record.begin(), record.end());
    packet.timestamp = now;
    with.on_packet(packet);
    without.on_packet(packet);
  });
  with.expire_idle(now + sec(120));
  without.expire_idle(now + sec(120));
  (void)with.metrics_snapshot();
  (void)without.metrics_snapshot();

  // The fast path's core claim: bypassing steady-state media never changes
  // what is detected. Any divergence in the rendered alert sequence or the
  // packet accounting is a bug, not an interesting input.
  const std::vector<core::Alert>& got = with.alerts().alerts();
  const std::vector<core::Alert>& want = without.alerts().alerts();
  if (got.size() != want.size()) __builtin_trap();
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].to_string() != want[i].to_string()) __builtin_trap();
  }
  if (with.stats().packets_inspected != without.stats().packets_inspected) __builtin_trap();
  return 0;
}

namespace {

bool same_event(const core::Event& a, const core::Event& b) {
  return a.type == b.type && a.session == b.session && a.time == b.time && a.aor == b.aor &&
         a.endpoint == b.endpoint && a.value == b.value && a.detail == b.detail;
}

bool same_record(const fleet::SepRecord& a, const fleet::SepRecord& b) {
  if (a.index() != b.index()) return false;
  return std::visit(
      [&](const auto& ra) {
        using T = std::decay_t<decltype(ra)>;
        const T& rb = std::get<T>(b);
        if constexpr (std::is_same_v<T, core::Event>) {
          return same_event(ra, rb);
        } else {
          return ra == rb;
        }
      },
      a);
}

}  // namespace

int fuzz_sep_wire(const uint8_t* data, size_t size) {
  auto decoded = fleet::decode_frame_any(std::span<const uint8_t>(data, size));
  if (!decoded.ok()) return 0;
  const fleet::SepFrame& frame = decoded.value();

  // The round-trip invariant only covers frames this build fully owns: a
  // legacy SEP1 line re-encodes as SEP-v2 by design, and unknown record
  // types were skipped, not captured.
  if (frame.legacy_sep1 || frame.unknown_skipped != 0) return 0;
  if (frame.node.empty() || frame.node.size() > fleet::kMaxNodeNameBytes) __builtin_trap();

  for (bool compress : {false, true}) {
    fleet::SepEncoder enc(frame.node, frame.epoch);
    for (const fleet::SepRecord& rec : frame.records) {
      std::visit(
          [&](const auto& r) {
            using T = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<T, core::Event>) {
              enc.add_event(r);
            } else if constexpr (std::is_same_v<T, fleet::SepVerdict>) {
              enc.add_verdict(r);
            } else if constexpr (std::is_same_v<T, fleet::SepCounter>) {
              enc.add_counter(r);
            } else if constexpr (std::is_same_v<T, fleet::SepVouch>) {
              enc.add_vouch(r);
            } else {
              enc.add_handoff(r);
            }
          },
          rec);
    }
    auto again = fleet::decode_frame(enc.finish(compress));
    // The encoder's output is always a valid frame, and it must decode to
    // exactly the records that went in.
    if (!again.ok()) __builtin_trap();
    const fleet::SepFrame& back = again.value();
    if (back.node != frame.node || back.epoch != frame.epoch ||
        back.unknown_skipped != 0 || back.legacy_sep1 ||
        back.records.size() != frame.records.size()) {
      __builtin_trap();
    }
    for (size_t i = 0; i < frame.records.size(); ++i) {
      if (!same_record(frame.records[i], back.records[i])) __builtin_trap();
    }
  }
  return 0;
}

int fuzz_pcap(const uint8_t* data, size_t size) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size),
                        std::ios::binary);
  capture::PcapFileSource source(in);

  // Bounded drain: packets are kept only up to a byte budget so oversized
  // (but in-bounds) captures cannot balloon memory.
  std::vector<pkt::Packet> kept;
  size_t kept_bytes = 0;
  pkt::Packet packet;
  while (source.next(&packet)) {
    if (kept_bytes + packet.data.size() <= (1u << 21)) {
      kept_bytes += packet.data.size();
      kept.push_back(std::move(packet));
    }
  }
  (void)source.error();
  if (!source.ok() || kept.empty()) return 0;

  // The stream decoded cleanly: re-export the packets under both link types
  // and re-read each. The writer is total over any decoded packet, and the
  // reader must accept everything the writer emits.
  for (capture::PcapLinkType link :
       {capture::PcapLinkType::kRaw, capture::PcapLinkType::kEthernet}) {
    std::ostringstream out(std::ios::binary);
    capture::PcapWriter writer(out, {.link = link});
    for (const pkt::Packet& p : kept) writer.write(p);
    std::istringstream back(out.str(), std::ios::binary);
    capture::PcapReader reader(back);
    pkt::Packet again;
    uint64_t reread = 0;
    while (reader.next(&again)) ++reread;
    if (!reader.error().empty() || reread != kept.size()) __builtin_trap();
  }
  return 0;
}

}  // namespace scidive::fuzz
