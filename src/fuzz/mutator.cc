#include "fuzz/mutator.h"

#include <algorithm>

#include "common/strings.h"
#include "pkt/fragment.h"

namespace scidive::fuzz {

void Mutator::bit_flip(Bytes& b) {
  if (b.empty()) return;
  int flips = 1 + static_cast<int>(rng_.uniform_int(0, 7));
  for (int i = 0; i < flips; ++i) {
    size_t at = index_in(b.size());
    b[at] ^= static_cast<uint8_t>(1u << rng_.uniform_int(0, 7));
  }
}

void Mutator::truncate(Bytes& b) {
  if (b.empty()) return;
  b.resize(index_in(b.size() + 1));
}

void Mutator::insert_random(Bytes& b) {
  size_t n = 1 + index_in(16);
  size_t at = index_in(b.size() + 1);
  Bytes extra(n);
  for (auto& c : extra) c = static_cast<uint8_t>(rng_.next_u32());
  b.insert(b.begin() + static_cast<ptrdiff_t>(at), extra.begin(), extra.end());
}

void Mutator::erase_region(Bytes& b) {
  if (b.empty()) return;
  size_t at = index_in(b.size());
  size_t n = 1 + index_in(b.size() - at);
  b.erase(b.begin() + static_cast<ptrdiff_t>(at), b.begin() + static_cast<ptrdiff_t>(at + n));
}

void Mutator::overwrite_random(Bytes& b) {
  if (b.empty()) return;
  size_t at = index_in(b.size());
  size_t n = 1 + index_in(b.size() - at);
  for (size_t i = 0; i < n; ++i) b[at + i] = static_cast<uint8_t>(rng_.next_u32());
}

void Mutator::duplicate_region(Bytes& b) {
  if (b.empty()) return;
  size_t at = index_in(b.size());
  size_t n = 1 + index_in(std::min<size_t>(b.size() - at, 64));
  Bytes region(b.begin() + static_cast<ptrdiff_t>(at),
               b.begin() + static_cast<ptrdiff_t>(at + n));
  size_t dest = index_in(b.size() + 1);
  b.insert(b.begin() + static_cast<ptrdiff_t>(dest), region.begin(), region.end());
}

void Mutator::splice(Bytes& b, const Bytes& donor) {
  if (donor.empty()) return;
  size_t keep = index_in(b.size() + 1);
  size_t from = index_in(donor.size());
  b.resize(keep);
  b.insert(b.end(), donor.begin() + static_cast<ptrdiff_t>(from), donor.end());
}

void Mutator::mutate_bytes(Bytes& b, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    switch (rng_.uniform_int(0, 5)) {
      case 0: bit_flip(b); break;
      case 1: truncate(b); break;
      case 2: insert_random(b); break;
      case 3: erase_region(b); break;
      case 4: overwrite_random(b); break;
      case 5: duplicate_region(b); break;
    }
  }
}

std::string Mutator::tear_lines(std::string_view msg) {
  std::string out;
  out.reserve(msg.size() + 8);
  size_t pos = 0;
  while (pos < msg.size()) {
    size_t eol = msg.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      out.append(msg.substr(pos));
      break;
    }
    out.append(msg.substr(pos, eol - pos));
    switch (rng_.uniform_int(0, 4)) {
      case 0: out += "\r\n"; break;  // intact
      case 1: out += '\r'; break;    // lone CR
      case 2: out += '\n'; break;    // lone LF
      case 3: out += "\r\r\n"; break;
      case 4:
        // Break the next line mid-token with a stray CRLF.
        out += "\r\n\r";
        break;
    }
    pos = eol + 2;
  }
  return out;
}

std::string Mutator::lie_content_length(std::string_view msg) {
  std::string out(msg);
  std::string lie = str::format("Content-Length: %llu\r\n",
                                static_cast<unsigned long long>(rng_.uniform_int(0, 1 << 20)));
  if (rng_.chance(0.25)) lie = "Content-Length: 18446744073709551616\r\n";  // u64 overflow
  if (rng_.chance(0.25)) lie = "Content-Length: -1\r\n";
  size_t hdr_end = out.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    out += lie;
  } else {
    out.insert(hdr_end + 2, lie);
  }
  return out;
}

std::string Mutator::duplicate_header(std::string_view msg) {
  // Collect header lines (between start line and the blank line).
  size_t start = msg.find("\r\n");
  size_t hdr_end = msg.find("\r\n\r\n");
  if (start == std::string_view::npos) return std::string(msg);
  if (hdr_end == std::string_view::npos) hdr_end = msg.size();
  std::vector<std::pair<size_t, size_t>> lines;  // (pos, len)
  size_t pos = start + 2;
  while (pos < hdr_end) {
    size_t eol = msg.find("\r\n", pos);
    if (eol == std::string_view::npos || eol > hdr_end) eol = hdr_end;
    if (eol > pos) lines.emplace_back(pos, eol - pos);
    pos = eol + 2;
  }
  if (lines.empty()) return std::string(msg);
  auto [lpos, llen] = lines[index_in(lines.size())];
  std::string line(msg.substr(lpos, llen));
  if (rng_.chance(0.5) && !line.empty()) {
    // Same name, different value: header-priority confusion.
    size_t colon = line.find(':');
    if (colon != std::string::npos)
      line = line.substr(0, colon + 1) + " " +
             str::format("%llu", static_cast<unsigned long long>(rng_.next_u32()));
  }
  std::string out(msg);
  out.insert(lpos, line + "\r\n");
  return out;
}

std::string Mutator::splice_headers(std::string_view a, std::string_view b) {
  size_t cut_a = a.find("\r\n");
  if (cut_a == std::string_view::npos) cut_a = a.size();
  // Keep the start line plus a random number of a's header lines.
  size_t keep = cut_a + 2;
  int keep_lines = static_cast<int>(rng_.uniform_int(0, 4));
  for (int i = 0; i < keep_lines && keep < a.size(); ++i) {
    size_t eol = a.find("\r\n", keep);
    if (eol == std::string_view::npos) break;
    keep = eol + 2;
  }
  keep = std::min(keep, a.size());
  size_t from = b.find("\r\n");
  from = from == std::string_view::npos ? 0 : from + 2;
  std::string out(a.substr(0, keep));
  out.append(b.substr(std::min(from, b.size())));
  return out;
}

std::string Mutator::mutate_sip(std::string_view msg) {
  switch (rng_.uniform_int(0, 3)) {
    case 0: return tear_lines(msg);
    case 1: return lie_content_length(msg);
    case 2: return duplicate_header(msg);
    default: {
      Bytes b(msg.begin(), msg.end());
      mutate_bytes(b, 2);
      return std::string(b.begin(), b.end());
    }
  }
}

void Mutator::lie_length_fields(Bytes& datagram) {
  if (datagram.size() < pkt::kIpv4MinHeaderLen + pkt::kUdpHeaderLen) return;
  const size_t ihl = std::min<size_t>(static_cast<size_t>(datagram[0] & 0x0f) * 4,
                                      datagram.size() - pkt::kUdpHeaderLen);
  auto put16 = [&](size_t at, uint16_t v) {
    datagram[at] = static_cast<uint8_t>(v >> 8);
    datagram[at + 1] = static_cast<uint8_t>(v);
  };
  uint16_t lie = static_cast<uint16_t>(rng_.next_u32());
  if (rng_.chance(0.5)) {
    put16(2, lie);  // IPv4 total_length
  } else if (ihl >= pkt::kIpv4MinHeaderLen) {
    put16(ihl + 4, lie);  // UDP length
  }
  if (rng_.chance(0.5) && ihl >= pkt::kIpv4MinHeaderLen) {
    // Re-patch the IPv4 header checksum so the lie passes validation and
    // reaches the UDP/payload layers instead of dying at the header check.
    put16(10, 0);
    uint16_t csum = internet_checksum(std::span<const uint8_t>(datagram.data(), ihl));
    put16(10, csum);
  }
}

pkt::Packet Mutator::mutate_packet(const pkt::Packet& packet) {
  pkt::Packet out = packet;
  switch (rng_.uniform_int(0, 2)) {
    case 0:
      mutate_bytes(out.data, 1 + static_cast<int>(rng_.uniform_int(0, 2)));
      break;
    case 1:
      lie_length_fields(out.data);
      break;
    default: {
      // Damage only the UDP payload, leaving the carrier intact — reaches
      // the application-layer parsers with maximum probability.
      if (out.data.size() > pkt::kIpv4MinHeaderLen + pkt::kUdpHeaderLen) {
        size_t start = pkt::kIpv4MinHeaderLen + pkt::kUdpHeaderLen;
        size_t at = start + index_in(out.data.size() - start);
        size_t n = 1 + index_in(out.data.size() - at);
        for (size_t i = 0; i < n; ++i)
          out.data[at + i] = static_cast<uint8_t>(rng_.next_u32());
      } else {
        bit_flip(out.data);
      }
      break;
    }
  }
  return out;
}

std::vector<pkt::Packet> Mutator::adversarial_fragments(const pkt::Packet& whole) {
  std::vector<pkt::Packet> out;
  auto parsed = pkt::parse_ipv4(whole.data);
  if (!parsed.ok() || parsed.value().header.is_fragment() ||
      parsed.value().payload.size() < 16) {
    out.push_back(whole);
    return out;
  }
  const pkt::Ipv4Header& h = parsed.value().header;
  auto payload = parsed.value().payload;

  auto frag = [&](uint16_t offset_units, bool more, std::span<const uint8_t> bytes) {
    pkt::Ipv4Header fh = h;
    fh.fragment_offset = offset_units;
    fh.more_fragments = more;
    pkt::Packet p;
    p.data = pkt::serialize_ipv4(fh, bytes);
    p.timestamp = whole.timestamp;
    return p;
  };

  // Split the payload into 8-byte-aligned thirds.
  const size_t third = std::max<size_t>(8, payload.size() / 3 / 8 * 8);
  const size_t a_len = std::min(third, payload.size());
  const size_t b_len = std::min(third, payload.size() - a_len);
  std::span<const uint8_t> part_a = payload.subspan(0, a_len);
  std::span<const uint8_t> part_b = payload.subspan(a_len, b_len);
  std::span<const uint8_t> part_c = payload.subspan(a_len + b_len);

  switch (rng_.uniform_int(0, 6)) {
    case 0: {
      // Overlap past the final end: a short MF=0 fragment establishes the
      // total, then an overlapping longer fragment extends beyond it (the
      // reassembler overflow shape).
      out.push_back(frag(static_cast<uint16_t>(a_len / 8), false, part_b));
      out.push_back(frag(0, true, payload));  // overlaps and extends past
      break;
    }
    case 1: {
      // Duplicate offset, different content.
      Bytes twisted(part_a.begin(), part_a.end());
      for (auto& c : twisted) c ^= 0x5a;
      out.push_back(frag(0, true, part_a));
      out.push_back(frag(0, true, twisted));
      out.push_back(frag(static_cast<uint16_t>(a_len / 8), false,
                         payload.subspan(a_len)));
      break;
    }
    case 2: {
      // Hole: drop the middle fragment. The assembly must pend, then expire.
      out.push_back(frag(0, true, part_a));
      out.push_back(frag(static_cast<uint16_t>((a_len + b_len) / 8), false, part_c));
      break;
    }
    case 3: {
      // Reverse delivery order (last fragment first).
      out.push_back(frag(static_cast<uint16_t>((a_len + b_len) / 8), false, part_c));
      out.push_back(frag(static_cast<uint16_t>(a_len / 8), true, part_b));
      out.push_back(frag(0, true, part_a));
      break;
    }
    case 4: {
      // Zero-length fragment in the middle of the train.
      out.push_back(frag(0, true, part_a));
      out.push_back(frag(static_cast<uint16_t>(a_len / 8), true, {}));
      out.push_back(frag(static_cast<uint16_t>(a_len / 8), false, payload.subspan(a_len)));
      break;
    }
    case 5: {
      // Offset lie: a fragment claiming to sit near the 64 KiB boundary.
      out.push_back(frag(0, true, part_a));
      out.push_back(frag(8100, false, part_b));
      break;
    }
    default: {
      // Oversize train: duplicate the full payload at stacked offsets so
      // the claimed datagram exceeds every sane bound.
      out.push_back(frag(0, true, payload));
      out.push_back(frag(static_cast<uint16_t>(payload.size() / 8), true, payload));
      out.push_back(frag(static_cast<uint16_t>(payload.size() / 4), false, payload));
      break;
    }
  }
  return out;
}

}  // namespace scidive::fuzz
