// Single-vs-sharded differential oracle. The ShardedEngine's contract is
// that session-affinity routing changes *where* state lives, never *what*
// is detected — so for any packet stream, benign or adversarial, a sharded
// engine must raise the same (rule, session) alert multiset as a single
// ScidiveEngine, and (when nothing is dropped) agree on the detection-side
// metric families. run_differential() checks that contract across a set of
// shard counts and reports every divergence it finds.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pkt/packet.h"
#include "scidive/sharded_engine.h"

namespace scidive::fuzz {

struct DifferentialConfig {
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  core::OverflowPolicy overflow = core::OverflowPolicy::kBlock;
  size_t queue_capacity = 4096;
  /// Worker drain batch size (0 keeps the ShardedEngine default).
  size_t batch_size = 0;
  /// Base per-engine configuration. time_stages is forced off (wall-clock
  /// histograms can never be equal) and the home scope is left as given.
  core::EngineConfig engine;
  /// Optional ruleset override, called once per engine instance (the single
  /// engine and every shard of every sharded engine) before any traffic.
  /// Leave empty to keep the built-in C++ ruleset. DSL parity tests use
  /// this to prove compiled rules are topology-invariant too.
  std::function<std::vector<core::RulePtr>()> make_rules;
  /// Pcap-replay mode: export the stream to an in-memory pcap file, read it
  /// back, and require (a) byte- and timestamp-identical packets, (b) an
  /// identical alert multiset from a second single engine fed the reimported
  /// stream. The sharded engines then consume the *reimported* stream, so
  /// the whole oracle also proves capture-file replay is losslessly
  /// detection-equivalent. Streams must have non-negative timestamps (the
  /// wire format cannot represent negatives).
  bool pcap_roundtrip = false;
  /// When non-zero, call ShardedEngine::rebalance() every this-many packets
  /// during replay. The rebalancer migrates whole sessions between shards;
  /// the oracle's identical-alert-multiset check then also proves migration
  /// loses no rule/event/trail state.
  size_t rebalance_interval = 0;
  /// Verdict-parity mode: additionally require every sharded engine to emit
  /// the identical (rule, session, action) verdict multiset as the single
  /// engine. Implies route_invite_by_caller on the sharded front-ends so
  /// principal-keyed prevention rules (SPIT graylisting) see a caller's
  /// whole INVITE stream on one shard, exactly as the single engine does.
  /// Pair with an EngineConfig whose enforce mode is kPassive or kInline
  /// and a make_rules that installs a prevention ruleset.
  bool verdict_mode = false;
  /// Fastpath-differential mode: the baseline single engine runs with the
  /// established-flow fast path disabled, an extra single engine and every
  /// sharded engine run with it enabled, and all of them must produce the
  /// identical alert/verdict multisets and detection metric families. This
  /// is the oracle for the fast path's core claim: bypassing steady-state
  /// media never changes what is detected.
  bool fastpath_differential = false;
};

struct DifferentialReport {
  size_t packets = 0;
  size_t single_alerts = 0;
  /// Verdicts the single engine emitted (0 unless verdict_mode).
  size_t single_verdicts = 0;
  /// Human-readable divergence descriptions; empty means the oracle holds.
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string to_string() const;
};

/// Feed `stream` through one single-threaded engine and one ShardedEngine
/// per configured shard count, all built from the same EngineConfig, and
/// compare:
///   - the (rule, session) alert multiset (always);
///   - the (rule, session, action) verdict multiset (verdict_mode);
///   - the accounting identity seen == filtered + dropped + shard-seen
///     (always);
///   - the detection metric families — events, events by type, alerts,
///     per-rule alerts, and parse errors excluding the ipv4 axis — when the
///     run was lossless (reassembly placement differs between the two
///     topologies, so packet/fragment counters are out of scope by design).
DifferentialReport run_differential(const std::vector<pkt::Packet>& stream,
                                    const DifferentialConfig& config = {});

}  // namespace scidive::fuzz
