// Small string utilities shared by the text-protocol parsers (SIP, SDP, ACC).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scidive::str {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive prefix test.
bool istarts_with(std::string_view s, std::string_view prefix);

/// Index of the first `needle` byte at or after `from`; npos when absent.
/// 16-bytes-per-iteration SSE2 scan (SWAR fallback elsewhere) — the SIP
/// parser's CRLF and colon scans, split() and split_once() all route
/// through this, so header-heavy messages are scanned a cache line at a
/// time instead of byte-by-byte.
size_t find_byte(std::string_view s, char needle, size_t from = 0);

/// Index of the first "\r\n" at or after `from`; npos when absent.
size_t find_crlf(std::string_view s, size_t from = 0);

/// Split on a separator character. Empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on the first occurrence of sep. Returns nullopt if sep is absent.
std::optional<std::pair<std::string_view, std::string_view>> split_once(std::string_view s,
                                                                        char sep);

/// Strict non-negative decimal parse; rejects empty/overflow/trailing junk.
std::optional<uint64_t> parse_u64(std::string_view s);
std::optional<uint32_t> parse_u32(std::string_view s);
std::optional<uint16_t> parse_u16(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scidive::str
