// Minimal leveled logger. Components log with a tag; the sink is a global
// with a settable level so tests/benches can silence output. Not thread-safe
// by design — the simulator is single-threaded.
#pragma once

#include <string>
#include <string_view>

#include "common/strings.h"

namespace scidive {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, std::string_view tag, std::string_view msg);

#define SCIDIVE_LOG(level, tag, ...)                                \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::scidive::log_level())) \
      ::scidive::log_message(level, tag, ::scidive::str::format(__VA_ARGS__)); \
  } while (0)

#define LOG_TRACE(tag, ...) SCIDIVE_LOG(::scidive::LogLevel::kTrace, tag, __VA_ARGS__)
#define LOG_DEBUG(tag, ...) SCIDIVE_LOG(::scidive::LogLevel::kDebug, tag, __VA_ARGS__)
#define LOG_INFO(tag, ...) SCIDIVE_LOG(::scidive::LogLevel::kInfo, tag, __VA_ARGS__)
#define LOG_WARN(tag, ...) SCIDIVE_LOG(::scidive::LogLevel::kWarn, tag, __VA_ARGS__)
#define LOG_ERROR(tag, ...) SCIDIVE_LOG(::scidive::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace scidive
