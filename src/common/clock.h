// Simulated time. All components of the simulator and the IDS operate on
// SimTime (microseconds since simulation start) so that every experiment is
// deterministic and independent of wall-clock behaviour.
#pragma once

#include <cstdint>
#include <string>

namespace scidive {

/// Microseconds since simulation start.
using SimTime = int64_t;
/// Microseconds.
using SimDuration = int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * 1000;

constexpr SimDuration usec(int64_t n) { return n; }
constexpr SimDuration msec(int64_t n) { return n * kMillisecond; }
constexpr SimDuration sec(int64_t n) { return n * kSecond; }

constexpr double to_msec(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / kSecond; }

/// "12.345s" style rendering for logs.
inline std::string format_time(SimTime t) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(t) / kSecond);
  return buf;
}

/// A monotonically advancing simulated clock. The Simulator owns one and
/// advances it as events fire; everything else holds a const reference.
class SimClock {
 public:
  SimTime now() const { return now_; }
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace scidive
