#include "common/symbol.h"

#include <cstring>

namespace scidive {

uint32_t SymbolTable::hash_of(std::string_view s) {
  // FNV-1a, folded through a final avalanche so power-of-two masking sees
  // entropy in the low bits even for ids sharing long prefixes.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<uint32_t>(h);
}

size_t SymbolTable::probe(std::string_view name, uint32_t hash) const {
  size_t i = hash & mask_;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id_plus1 == 0) return i;  // empty: insertion point
    if (slot.hash == hash && names_[slot.id_plus1 - 1] == name) return i;
    i = (i + 1) & mask_;
  }
}

void SymbolTable::grow() {
  const size_t new_cap = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  mask_ = new_cap - 1;
  for (const Slot& slot : old) {
    if (slot.id_plus1 == 0) continue;
    size_t i = slot.hash & mask_;
    while (slots_[i].id_plus1 != 0) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

Symbol SymbolTable::intern(std::string_view name) {
  if ((names_.size() + 1) * 10 > slots_.size() * 7) grow();
  const uint32_t hash = hash_of(name);
  size_t i = probe(name, hash);
  if (slots_[i].id_plus1 != 0) return slots_[i].id_plus1 - 1;

  char* bytes = static_cast<char*>(arena_.allocate(name.size() == 0 ? 1 : name.size(), 1));
  if (!name.empty()) std::memcpy(bytes, name.data(), name.size());
  const Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(bytes, name.size());
  slots_[i] = Slot{hash, id + 1};
  return id;
}

std::optional<Symbol> SymbolTable::find(std::string_view name) const {
  if (names_.empty()) return std::nullopt;
  const size_t i = probe(name, hash_of(name));
  if (slots_[i].id_plus1 == 0) return std::nullopt;
  return slots_[i].id_plus1 - 1;
}

}  // namespace scidive
