// Deterministic randomness. Every stochastic component (link delays, loss,
// workload generators, attackers) draws from an explicitly seeded Rng so
// experiments are reproducible. DelayModel describes the network delay
// distributions (N_sip, N_rtp, G_sip) of the paper's §4.3 analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "common/clock.h"

namespace scidive {

/// Thin wrapper over a seeded mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }
  uint32_t next_u32() { return static_cast<uint32_t>(gen_()); }
  uint64_t next_u64() { return gen_(); }
  /// Exponential with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }
  /// Normal with mean/stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child stream (stable for a given label order).
  Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Families of delay distributions used for link delays and for the attack
/// injection offset G_sip in the §4.3 model.
enum class DelayKind { kFixed, kUniform, kExponential, kNormal };

/// A delay distribution over SimDuration (microseconds), always >= min_.
/// - Fixed: always `a`.
/// - Uniform: U[a, b].
/// - Exponential: a + Exp(mean b-a)  (shifted exponential; `a` is the
///   propagation floor, `b` the mean total delay).
/// - Normal: N(a, b) truncated at zero.
class DelayModel {
 public:
  static DelayModel fixed(SimDuration d) { return {DelayKind::kFixed, d, d}; }
  static DelayModel uniform(SimDuration lo, SimDuration hi) {
    return {DelayKind::kUniform, lo, hi};
  }
  static DelayModel exponential(SimDuration floor, SimDuration mean) {
    return {DelayKind::kExponential, floor, mean};
  }
  static DelayModel normal(SimDuration mean, SimDuration stddev) {
    return {DelayKind::kNormal, mean, stddev};
  }

  SimDuration sample(Rng& rng) const;

  /// Analytical mean of the distribution (used to validate simulations
  /// against the closed forms in analysis/).
  double mean() const;

  /// Analytical variance (microseconds squared).
  double variance() const;

  /// Cumulative distribution function P(X <= x), x in microseconds.
  double cdf(double x) const;
  /// Probability density (Dirac deltas of the Fixed kind are reported as 0;
  /// use cdf for that case).
  double pdf(double x) const;
  /// An upper bound beyond which the tail mass is < ~1e-6 (for numeric
  /// integration).
  double support_max() const;

  DelayKind kind() const { return kind_; }
  SimDuration a() const { return a_; }
  SimDuration b() const { return b_; }
  std::string describe() const;

 private:
  DelayModel(DelayKind k, SimDuration a, SimDuration b) : kind_(k), a_(a), b_(b) {}

  DelayKind kind_;
  SimDuration a_;
  SimDuration b_;
};

}  // namespace scidive
