// Box<T> — a heap cell with value semantics. Copying a Box deep-copies the
// pointee; moving steals it. Used to shrink wide variant alternatives: a
// variant's footprint is its largest member, so boxing the string-heavy
// signaling footprints keeps the per-slot stride of hot containers (the
// Trail ring) at the size of the small media footprints instead of the
// largest SIP one.
//
// A default-constructed or moved-from Box is EMPTY (get() == nullptr);
// dereferencing it is UB, same as a unique_ptr. Emptiness matters because a
// boxed type can sit as a variant's first alternative: default-constructing
// the variant (every distilled Footprint starts life that way) must not
// touch the heap, or the zero-allocation media path would pay an alloc+free
// per packet before the real alternative is assigned.
#pragma once

#include <memory>
#include <utility>

namespace scidive {

template <typename T>
class Box {
 public:
  Box() = default;
  Box(T value) : p_(std::make_unique<T>(std::move(value))) {}

  Box(const Box& other) : p_(other.p_ ? std::make_unique<T>(*other.p_) : nullptr) {}
  Box(Box&&) noexcept = default;
  Box& operator=(const Box& other) {
    if (this != &other) p_ = other.p_ ? std::make_unique<T>(*other.p_) : nullptr;
    return *this;
  }
  Box& operator=(Box&&) noexcept = default;

  T& operator*() { return *p_; }
  const T& operator*() const { return *p_; }
  T* operator->() { return p_.get(); }
  const T* operator->() const { return p_.get(); }
  T* get() { return p_.get(); }
  const T* get() const { return p_.get(); }

 private:
  std::unique_ptr<T> p_;
};

}  // namespace scidive
