// Byte-buffer primitives used by every packet codec. Network byte order
// (big-endian) throughout, matching on-the-wire formats.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scidive {

using Bytes = std::vector<uint8_t>;

/// Sequential big-endian reader over a borrowed byte span. All reads are
/// bounds-checked and fail with Errc::kTruncated instead of reading past the
/// end; parsers built on it are safe against arbitrary input.
class BufReader {
 public:
  explicit BufReader(std::span<const uint8_t> data) : data_(data) {}
  BufReader(const uint8_t* p, size_t n) : data_(p, n) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  Result<uint8_t> u8() {
    if (remaining() < 1) return truncated("u8");
    return data_[pos_++];
  }
  Result<uint16_t> u16() {
    if (remaining() < 2) return truncated("u16");
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> u32() {
    if (remaining() < 4) return truncated("u32");
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> u64() {
    auto hi = u32();
    if (!hi) return hi.error();
    auto lo = u32();
    if (!lo) return lo.error();
    return (static_cast<uint64_t>(hi.value()) << 32) | lo.value();
  }

  /// Borrow the next n bytes without copying.
  Result<std::span<const uint8_t>> bytes(size_t n) {
    if (remaining() < n) return truncated("bytes");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Copy the next n bytes.
  Result<Bytes> copy(size_t n) {
    auto s = bytes(n);
    if (!s) return s.error();
    return Bytes(s.value().begin(), s.value().end());
  }

  Status skip(size_t n) {
    if (remaining() < n) return Error{Errc::kTruncated, "skip past end"};
    pos_ += n;
    return {};
  }

  /// Everything not yet consumed, without consuming it.
  std::span<const uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  Error truncated(const char* what) const {
    return Error{Errc::kTruncated, std::string("reading ") + what};
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Sequential big-endian writer appending to an owned buffer.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(size_t reserve) { out_.reserve(reserve); }

  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 24));
    out_.push_back(static_cast<uint8_t>(v >> 16));
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }
  void bytes(std::span<const uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void bytes(const Bytes& b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void str(std::string_view s) {
    out_.insert(out_.end(), reinterpret_cast<const uint8_t*>(s.data()),
                reinterpret_cast<const uint8_t*>(s.data()) + s.size());
  }

  /// Overwrite 2 bytes at an earlier offset (e.g. a length or checksum field
  /// patched after the payload is known).
  void patch_u16(size_t offset, uint16_t v) {
    out_[offset] = static_cast<uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<uint8_t>(v);
  }

  size_t size() const { return out_.size(); }
  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bytes <-> printable helpers.
std::string to_hex(std::span<const uint8_t> data);
Bytes from_string(std::string_view s);
std::string to_string_view_copy(std::span<const uint8_t> data);

/// RFC 1071 Internet checksum (used by IPv4/UDP).
uint16_t internet_checksum(std::span<const uint8_t> data, uint32_t initial = 0);

}  // namespace scidive
