// Open-addressing hash containers for the session-scale hot path.
//
// FlatMap is a robin-hood table: one contiguous probe-distance byte array
// plus a single interleaved key+value record array, power-of-two capacity,
// tombstone-free deletion by backward shift. A steady-state lookup is one
// hash, one cache line of distance bytes, and one record line holding both
// the key compare and the value — no node chasing, no per-entry heap
// blocks, and one fewer miss than split key/value arrays would cost, which
// is exactly what matters against the chained std::unordered_maps it
// replaces at 5000+ sessions.
//
// Intended key domain: dense integers (symbol ids, packed endpoints).
// Because capacity is a power of two, raw keys are finalized through a
// mix64 step so low-entropy keys still spread across slots.
//
// Invariants and limits:
//   - max load factor 0.8, growth doubles capacity and reinserts;
//   - probe distances are stored in a uint8_t; exceeding 255 forces growth
//     (robin hood keeps distances tiny at 0.8 load, so this is a backstop);
//   - erase uses backward-shift, so no tombstones ever accumulate and
//     lookup cost does not degrade after churn;
//   - value references are invalidated by any insert or erase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace scidive {

inline constexpr uint64_t flat_mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Default hasher: integral keys are mixed directly; everything else goes
/// through std::hash then the mix (power-of-two masking needs every bit of
/// the hash to carry entropy).
template <typename K>
struct FlatHash {
  uint64_t operator()(const K& k) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return flat_mix64(static_cast<uint64_t>(k));
    } else {
      return flat_mix64(static_cast<uint64_t>(std::hash<K>{}(k)));
    }
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(size_t min_capacity) { reserve_slots(round_up(min_capacity)); }

  FlatMap(FlatMap&& other) noexcept { swap(other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      destroy_all();
      reset();
      swap(other);
    }
    return *this;
  }
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  ~FlatMap() { destroy_all(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  /// Address of the record array (alignment audit only; nullptr before the
  /// first insert).
  const void* record_data() const { return slots_; }

  V* find(const K& key) {
    if (size_ == 0) return nullptr;
    size_t i = index_of(key);
    return i == npos ? nullptr : &slots_[i].val;
  }
  const V* find(const K& key) const { return const_cast<FlatMap*>(this)->find(key); }
  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Insert default-or-constructed value if absent. Returns {value, inserted}.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    if (V* v = find(key)) return {v, false};
    if ((size_ + 1) * 5 > cap_ * 4) grow();
    size_t i = insert_new(key, V(std::forward<Args>(args)...));
    ++size_;
    return {&slots_[i].val, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  /// Overwrite-or-insert. Returns true when the key was new.
  bool insert_or_assign(const K& key, V value) {
    auto [v, inserted] = try_emplace(key, std::move(value));
    if (!inserted) *v = std::move(value);
    return inserted;
  }

  bool erase(const K& key) {
    if (size_ == 0) return false;
    size_t i = index_of(key);
    if (i == npos) return false;
    erase_at(i);
    return true;
  }

  void clear() {
    destroy_all();
    if (dist_) std::memset(dist_.get(), 0, cap_);
    size_ = 0;
  }

  /// Visit every entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (size_t i = 0; i < cap_; ++i) {
      if (dist_[i] != 0) fn(const_cast<const K&>(slots_[i].key), slots_[i].val);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < cap_; ++i) {
      if (dist_[i] != 0) fn(const_cast<const K&>(slots_[i].key), slots_[i].val);
    }
  }

  /// Erase every entry for which pred(key, value) is true; returns the
  /// number erased. pred must be pure in its inputs (entries can be
  /// revisited once after a wrap-around backward shift).
  template <typename Pred>
  size_t erase_if(Pred&& pred) {
    size_t erased = 0;
    for (size_t i = 0; i < cap_; ++i) {
      while (dist_[i] != 0 && pred(const_cast<const K&>(slots_[i].key), slots_[i].val)) {
        erase_at(i);
        ++erased;
      }
    }
    return erased;
  }

 private:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Interleaved record: the key compare and the value hit touch the same
  /// cache line (for small K/V). Members live in unions so the table
  /// placement-constructs and destroys them slot-by-slot; Slot itself is
  /// never constructed — reserve_slots hands out raw aligned storage.
  struct Slot {
    union {
      K key;
    };
    union {
      V val;
    };
    Slot() = delete;
    ~Slot() = delete;
  };

  static size_t round_up(size_t n) {
    size_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  size_t index_of(const K& key) const {
    size_t i = Hash{}(key)&mask_;
    uint8_t d = 1;
    while (true) {
      if (dist_[i] < d) return npos;  // rich enough to have been placed here
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
      if (++d == 0) return npos;  // probes are capped at 255 by insert
    }
  }

  /// Robin-hood insert of a key known to be absent. Returns the slot the
  /// new entry finally landed in.
  size_t insert_new(K key, V value) {
    size_t i = Hash{}(key)&mask_;
    uint8_t d = 1;
    size_t landed = npos;
    while (true) {
      if (dist_[i] == 0) {
        ::new (&slots_[i].key) K(std::move(key));
        ::new (&slots_[i].val) V(std::move(value));
        dist_[i] = d;
        return landed == npos ? i : landed;
      }
      if (dist_[i] < d) {
        // Steal from the rich: park the new entry, keep pushing the evictee.
        std::swap(key, slots_[i].key);
        std::swap(value, slots_[i].val);
        std::swap(d, dist_[i]);
        if (landed == npos) landed = i;
      }
      i = (i + 1) & mask_;
      if (++d == 0) {  // 255-probe backstop: should be unreachable at 0.8 load
        grow();
        return insert_raw_after_grow(std::move(key), std::move(value), landed);
      }
    }
  }

  size_t insert_raw_after_grow(K key, V value, size_t) {
    // After a grow the landed slot is stale; re-derive it by lookup.
    size_t i = insert_new(std::move(key), std::move(value));
    return i;
  }

  void erase_at(size_t i) {
    slots_[i].key.~K();
    slots_[i].val.~V();
    dist_[i] = 0;
    --size_;
    // Backward shift: pull each displaced successor one slot closer to home.
    size_t j = (i + 1) & mask_;
    while (dist_[j] > 1) {
      ::new (&slots_[i].key) K(std::move(slots_[j].key));
      ::new (&slots_[i].val) V(std::move(slots_[j].val));
      dist_[i] = static_cast<uint8_t>(dist_[j] - 1);
      slots_[j].key.~K();
      slots_[j].val.~V();
      dist_[j] = 0;
      i = j;
      j = (j + 1) & mask_;
    }
  }

  void grow() { rehash(cap_ == 0 ? 8 : cap_ * 2); }

  void rehash(size_t new_cap) {
    auto old_dist = std::move(dist_);
    auto old_mem = std::move(slot_mem_);
    Slot* old_slots = slots_;
    size_t old_cap = cap_;
    reserve_slots(new_cap);
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_dist[i] != 0) {
        insert_new(std::move(old_slots[i].key), std::move(old_slots[i].val));
        old_slots[i].key.~K();
        old_slots[i].val.~V();
      }
    }
  }

  /// Records start on a cache-line boundary (not just alignof(Slot)): a
  /// probe then touches whole record lines from line 0, and a shard-local
  /// table never shares its first record line with whatever the allocator
  /// placed before it — the false-sharing audit test pins this.
  static constexpr size_t kRecordAlign = alignof(Slot) > 64 ? alignof(Slot) : 64;

  void reserve_slots(size_t cap) {
    cap_ = cap;
    mask_ = cap - 1;
    dist_ = std::make_unique<uint8_t[]>(cap);
    slot_mem_.reset(new std::byte[cap * sizeof(Slot) + kRecordAlign]);
    slots_ = aligned<Slot>(slot_mem_.get());
  }

  template <typename T>
  static T* aligned(std::byte* p) {
    void* vp = p;
    size_t space = static_cast<size_t>(-1);
    return static_cast<T*>(std::align(kRecordAlign, sizeof(T), vp, space));
  }

  void destroy_all() {
    if constexpr (!std::is_trivially_destructible_v<K> || !std::is_trivially_destructible_v<V>) {
      for (size_t i = 0; i < cap_; ++i) {
        if (dist_[i] != 0) {
          slots_[i].key.~K();
          slots_[i].val.~V();
        }
      }
    }
  }

  void reset() {
    dist_.reset();
    slot_mem_.reset();
    slots_ = nullptr;
    cap_ = mask_ = size_ = 0;
  }

  void swap(FlatMap& other) {
    std::swap(dist_, other.dist_);
    std::swap(slot_mem_, other.slot_mem_);
    std::swap(slots_, other.slots_);
    std::swap(cap_, other.cap_);
    std::swap(mask_, other.mask_);
    std::swap(size_, other.size_);
  }

  std::unique_ptr<uint8_t[]> dist_;
  std::unique_ptr<std::byte[]> slot_mem_;
  Slot* slots_ = nullptr;
  size_t cap_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Set facade over FlatMap.
template <typename K, typename Hash = FlatHash<K>>
class FlatSet {
 public:
  /// Returns true when the key was newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool contains(const K& key) const { return map_.contains(key); }
  bool erase(const K& key) { return map_.erase(key); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](const K& k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash> map_;
};

}  // namespace scidive
