// Bounded single-producer / single-consumer ring buffer. One thread pushes,
// one thread pops; no locks anywhere. Capacity is rounded up to a power of
// two so index wrapping is a mask. Head/tail live on separate cache lines
// and each side caches the other's index, so the steady-state fast path
// touches no shared cache line at all (the classic SPSC optimization: the
// producer only reloads `tail` when the ring looks full, the consumer only
// reloads `head` when it looks empty).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace scidive {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLineSize = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineSize = 64;
#endif

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false (leaving `value` untouched) when full.
  bool try_push(T&& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: drain up to `max` elements into `fn`, amortizing the
  /// release store over the whole batch. Returns the number consumed.
  template <typename Fn>
  size_t pop_batch(Fn&& fn, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return 0;
    }
    size_t available = cached_head_ - tail;
    size_t n = available < max ? available : max;
    for (size_t i = 0; i < n; ++i) fn(std::move(slots_[(tail + i) & mask_]));
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side: drain up to `max` elements into `out` (appended; callers
  /// reuse a cleared scratch vector so steady state performs no allocation).
  /// Moves the whole batch out of the ring before the single release store,
  /// so the producer regains every slot at once and the consumer processes
  /// from thread-local memory with no further ring traffic.
  size_t pop_batch(std::vector<T>& out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return 0;
    }
    size_t available = cached_head_ - tail;
    size_t n = available < max ? available : max;
    for (size_t i = 0; i < n; ++i) out.push_back(std::move(slots_[(tail + i) & mask_]));
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Approximate (exact only when the other side is quiescent).
  size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};  // next write index
  alignas(kCacheLineSize) size_t cached_tail_ = 0;       // producer's view of tail_
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};  // next read index
  alignas(kCacheLineSize) size_t cached_head_ = 0;       // consumer's view of head_
};

}  // namespace scidive
