// Bounded multi-producer / single-consumer ring buffer (Vyukov's bounded
// MPMC queue restricted to one consumer). Each slot carries a sequence
// number; a producer claims a slot with one CAS on `head_`, writes the
// value, then publishes it with a release store of the slot sequence. The
// consumer never contends with producers on any cache line except a claimed
// slot's own sequence word, and consumes in strict claim order — so per-slot
// FIFO is preserved exactly as with the SPSC ring, just with N producers
// interleaving at the claim CAS.
//
// Ordering guarantee (what the sharded engine needs): all pushes from one
// producer thread pop in that producer's push order. Pushes from different
// producers interleave in claim order, which is fine — the affinity router
// guarantees a session is only ever fed by one producer at a time.
//
// `try_push` is lossless-or-false: when the ring is full it returns false
// and leaves the value untouched, so callers implement kBlock/kDrop policy
// exactly as with SpscQueue.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/spsc_queue.h"  // kCacheLineSize

namespace scidive {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Producer side (any thread). Returns false (leaving `value` untouched)
  /// when the ring is full.
  bool try_push(T&& value) {
    size_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[head & mask_];
      const size_t seq = slot.seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(head);
      if (diff == 0) {
        // Slot is free for this ticket; race other producers for it.
        if (head_.compare_exchange_weak(head, head + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(head + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `head`; retry with the fresh ticket.
      } else if (diff < 0) {
        // Sequence lags the ticket: the consumer has not freed this slot in
        // the previous lap — the ring is full.
        return false;
      } else {
        // Another producer claimed this ticket; chase the head.
        head = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (single thread). Returns false when empty.
  bool try_pop(T& out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[tail & mask_];
    const size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(tail + 1) < 0)
      return false;  // producer has not published this slot yet
    out = std::move(slot.value);
    // Free the slot for the producers' next lap.
    slot.seq.store(tail + mask_ + 1, std::memory_order_release);
    tail_.store(tail + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side: drain up to `max` published elements into `out`
  /// (appended; callers reuse a cleared scratch vector so steady state
  /// performs no allocation). Unlike the SPSC ring each slot needs its own
  /// release store — a producer may be waiting on that exact slot — but the
  /// consumer's tail index is only published once per batch.
  size_t pop_batch(std::vector<T>& out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t n = 0;
    while (n < max) {
      Slot& slot = slots_[(tail + n) & mask_];
      const size_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(tail + n + 1) < 0) break;
      out.push_back(std::move(slot.value));
      slot.seq.store(tail + n + mask_ + 1, std::memory_order_release);
      ++n;
    }
    if (n != 0) tail_.store(tail + n, std::memory_order_relaxed);
    return n;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Approximate (exact only when both sides are quiescent). Safe to call
  /// from any thread — the snapshot path samples ring occupancy with it.
  size_t size() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }
  bool empty() const { return size() == 0; }

 private:
  struct Slot {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  /// Producers' claim ticket: the only line producers contend on.
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  /// Consumer-owned; atomic only so size() is safe cross-thread.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
};

}  // namespace scidive
