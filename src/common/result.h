// Result<T>: lightweight expected-style error handling for parsers of
// untrusted input, where failure is a normal outcome and exceptions would be
// both slow and noisy. Errors carry a code plus a human-readable message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace scidive {

enum class Errc {
  kOk = 0,
  kTruncated,       // buffer ended before a complete unit was read
  kMalformed,       // syntactically invalid input
  kUnsupported,     // recognized but unsupported version/feature
  kChecksum,        // checksum mismatch
  kNotFound,        // lookup failed
  kInvalidArgument, // caller passed an out-of-domain value
  kState,           // operation invalid in current state
};

/// Human-readable name for an error code.
constexpr const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kOk: return "ok";
    case Errc::kTruncated: return "truncated";
    case Errc::kMalformed: return "malformed";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kChecksum: return "checksum";
    case Errc::kNotFound: return "not-found";
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kState: return "state";
  }
  return "unknown";
}

/// An error outcome: machine-matchable code plus free-form context.
struct Error {
  Errc code = Errc::kMalformed;
  std::string message;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Minimal expected<T, Error>. Intentionally tiny: implicit construction
/// from both T and Error, checked access with assert in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  /// value() if ok, otherwise the provided default.
  T value_or(T fallback) const& { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;                                  // ok
  Status(Error err) : err_(std::move(err)), ok_(false) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return err_;
  }

 private:
  Error err_;
  bool ok_ = true;
};

}  // namespace scidive
