// Symbol interning for the session-scale hot path. Call-IDs, AORs and
// synthetic flow ids are the keys of every stateful table in the pipeline;
// hashing and comparing them as strings is what made per-packet cost grow
// with the session count. A SymbolTable maps each distinct string to a
// dense uint32_t id exactly once — after the single intern at classify
// time, every downstream table (trails, session index, event-generator
// state, rule state) keys on the integer.
//
// Ids are dense (0, 1, 2, ...) in first-intern order and never recycled,
// so they stay stable for the table's lifetime — across rule hot reloads
// and session expiry. Name bytes live in an arena owned by the table;
// name() views stay valid as long as the table does.
//
// Not thread-safe: one table per shard engine, like every other pipeline
// component.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace scidive {

using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xffffffffu;

class SymbolTable {
 public:
  SymbolTable() : arena_(kFirstChunkBytes) {}

  /// Id for `name`, interning it on first sight.
  Symbol intern(std::string_view name);

  /// Lookup without interning (queries for sessions that may not exist).
  std::optional<Symbol> find(std::string_view name) const;

  /// The interned spelling. Valid for the table's lifetime.
  std::string_view name(Symbol sym) const { return names_[sym]; }

  size_t size() const { return names_.size(); }
  /// Heap footprint: name bytes plus the probe table.
  size_t bytes() const {
    return arena_.bytes_reserved() + slots_.capacity() * sizeof(Slot) +
           names_.capacity() * sizeof(std::string_view);
  }

 private:
  struct Slot {
    uint32_t hash = 0;
    uint32_t id_plus1 = 0;  // 0 = empty
  };

  static constexpr size_t kFirstChunkBytes = 4096;

  static uint32_t hash_of(std::string_view s);
  size_t probe(std::string_view name, uint32_t hash) const;
  void grow();

  std::vector<Slot> slots_;
  std::vector<std::string_view> names_;  // views into arena_ bytes
  Arena arena_;
  size_t mask_ = 0;
};

}  // namespace scidive
