#include "common/bytes.h"

namespace scidive {

std::string to_hex(std::span<const uint8_t> data) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (uint8_t b : data) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xf]);
  }
  return s;
}

Bytes from_string(std::string_view s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s.data()),
               reinterpret_cast<const uint8_t*>(s.data()) + s.size());
}

std::string to_string_view_copy(std::span<const uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

uint16_t internet_checksum(std::span<const uint8_t> data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

}  // namespace scidive
