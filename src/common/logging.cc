#include "common/logging.h"

#include <cstdio>

namespace scidive {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, std::string_view tag, std::string_view msg) {
  fprintf(stderr, "[%-5s] %.*s: %.*s\n", level_name(level), static_cast<int>(tag.size()),
          tag.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace scidive
