#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace scidive::str {

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::pair<std::string_view, std::string_view>> split_once(std::string_view s,
                                                                        char sep) {
  size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return std::nullopt;
  return std::make_pair(s.substr(0, pos), s.substr(pos + 1));
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::optional<uint32_t> parse_u32(std::string_view s) {
  auto v = parse_u64(s);
  if (!v || *v > UINT32_MAX) return std::nullopt;
  return static_cast<uint32_t>(*v);
}

std::optional<uint16_t> parse_u16(std::string_view s) {
  auto v = parse_u64(s);
  if (!v || *v > UINT16_MAX) return std::nullopt;
  return static_cast<uint16_t>(*v);
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace scidive::str
