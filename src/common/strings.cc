#include "common/strings.h"

#include <bit>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace scidive::str {

namespace {
constexpr size_t npos = std::string_view::npos;
}  // namespace

size_t find_byte(std::string_view s, char needle, size_t from) {
  const char* data = s.data();
  const size_t n = s.size();
  size_t i = from;
#if defined(__SSE2__)
  const __m128i pat = _mm_set1_epi8(needle);
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pat)));
    if (mask != 0) return i + static_cast<size_t>(std::countr_zero(mask));
  }
#else
  // SWAR: a lane is 0x80 iff its byte equalled the needle (the classic
  // haszero(x ^ pat) trick), and the lowest set bit indexes the first hit.
  const uint64_t pat = 0x0101010101010101ULL * static_cast<uint8_t>(needle);
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    const uint64_t x = word ^ pat;
    const uint64_t hit = (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
    if (hit != 0) return i + static_cast<size_t>(std::countr_zero(hit)) / 8;
  }
#endif
  for (; i < n; ++i) {
    if (data[i] == needle) return i;
  }
  return npos;
}

size_t find_crlf(std::string_view s, size_t from) {
  size_t i = from;
  for (;;) {
    const size_t r = find_byte(s, '\r', i);
    if (r == npos || r + 1 >= s.size()) return npos;
    if (s[r + 1] == '\n') return r;
    i = r + 1;  // lone CR: keep scanning
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (;;) {
    const size_t pos = find_byte(s, sep, start);
    if (pos == npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<std::pair<std::string_view, std::string_view>> split_once(std::string_view s,
                                                                        char sep) {
  size_t pos = find_byte(s, sep);
  if (pos == npos) return std::nullopt;
  return std::make_pair(s.substr(0, pos), s.substr(pos + 1));
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::optional<uint32_t> parse_u32(std::string_view s) {
  auto v = parse_u64(s);
  if (!v || *v > UINT32_MAX) return std::nullopt;
  return static_cast<uint32_t>(*v);
}

std::optional<uint16_t> parse_u16(std::string_view s) {
  auto v = parse_u64(s);
  if (!v || *v > UINT16_MAX) return std::nullopt;
  return static_cast<uint16_t>(*v);
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace scidive::str
