// MD5 (RFC 1321), implemented from scratch for SIP digest authentication
// (RFC 2617 uses MD5 for the challenge/response computation). MD5 is broken
// as a cryptographic hash; it is used here only for protocol fidelity with
// the 2004-era SIP digest scheme, never for new security decisions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace scidive {

class Md5 {
 public:
  Md5();

  void update(std::span<const uint8_t> data);
  void update(std::string_view s);

  /// Finalize and return the 16-byte digest. The object must not be reused.
  std::array<uint8_t, 16> digest();

  /// One-shot convenience: lowercase hex digest of a string.
  static std::string hex(std::string_view s);

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 4> state_;
  uint64_t total_len_ = 0;            // bytes fed so far
  std::array<uint8_t, 64> buffer_{};  // partial block
  size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace scidive
