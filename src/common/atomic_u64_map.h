// Concurrent u64 -> u32 hash map with lock-free reads and mutex-serialized
// writes — the shape of the sharded front-end's shared routing directory:
// many producer threads look up media-endpoint bindings on every media
// packet, while inserts only happen on the rare signaling path.
//
// Layout: open addressing with linear probing over atomic (key, value)
// slots. A writer stores the value with release semantics *before*
// publishing the key, so any reader that observes the key also observes a
// valid value (an overwrite may race a reader, which then sees either the
// old or the new value — both were current at some instant, which is all
// the router needs). Growth allocates a fresh table, re-inserts under the
// writer mutex, then swaps the table pointer with a release store; readers
// holding the retired table keep using it safely because retired tables are
// kept alive until the map is destroyed (bounded: each retirement doubles
// capacity, so total retired memory is less than the live table).
//
// Key 0 is reserved as the empty sentinel; a real 0 key is transparently
// remapped to a private surrogate, so the full u64 domain works.
//
// Deliberately not supported: erase. The routing directory only ever adds
// or overwrites bindings (stale entries route consistently, which preserves
// affinity), and skipping deletion is what keeps readers lock-free without
// an epoch scheme.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/flat_map.h"  // flat_mix64

namespace scidive {

class AtomicU64Map {
 public:
  explicit AtomicU64Map(size_t min_capacity = 64) {
    size_t cap = 8;
    while (cap < min_capacity) cap <<= 1;
    table_.store(new_table(cap), std::memory_order_release);
  }

  AtomicU64Map(const AtomicU64Map&) = delete;
  AtomicU64Map& operator=(const AtomicU64Map&) = delete;

  /// Lock-free lookup; any thread. Returns false when absent.
  bool find(uint64_t key, uint32_t& out) const {
    key = encode(key);
    const Table* t = table_.load(std::memory_order_acquire);
    size_t i = flat_mix64(key) & t->mask;
    for (size_t probes = 0; probes <= t->mask; ++probes) {
      const uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
      if (k == kEmpty) return false;
      if (k == key) {
        out = t->slots[i].val.load(std::memory_order_acquire);
        return true;
      }
      i = (i + 1) & t->mask;
    }
    return false;
  }

  bool contains(uint64_t key) const {
    uint32_t unused;
    return find(key, unused);
  }

  /// Insert or overwrite; serialized across writers, safe against
  /// concurrent readers. Returns true when the key was new.
  bool insert_or_assign(uint64_t key, uint32_t value) {
    key = encode(key);
    std::lock_guard<std::mutex> lock(write_mutex_);
    Table* t = table_.load(std::memory_order_relaxed);
    if ((size_ + 1) * 2 > t->mask + 1) t = grow(t);
    return insert_slot(*t, key, value);
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Table* t = table_.load(std::memory_order_acquire);
    for (size_t i = 0; i <= t->mask; ++i) {
      const uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
      if (k != kEmpty) fn(decode(k), t->slots[i].val.load(std::memory_order_acquire));
    }
  }

 private:
  static constexpr uint64_t kEmpty = 0;
  /// Surrogate for a genuine key of 0 (any constant unlikely to collide
  /// works: a collision would only alias two keys, not corrupt the table).
  static constexpr uint64_t kZeroSurrogate = 0x9e3779b97f4a7c15ULL;

  static uint64_t encode(uint64_t key) { return key == 0 ? kZeroSurrogate : key; }
  static uint64_t decode(uint64_t key) { return key == kZeroSurrogate ? 0 : key; }

  struct Slot {
    std::atomic<uint64_t> key{kEmpty};
    std::atomic<uint32_t> val{0};
  };
  struct Table {
    size_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  Table* new_table(size_t cap) {
    auto t = std::make_unique<Table>();
    t->mask = cap - 1;
    t->slots = std::make_unique<Slot[]>(cap);
    tables_.push_back(std::move(t));
    return tables_.back().get();
  }

  /// Writer-side insert into `t` (mutex held). Value is published before
  /// the key so readers never observe a keyed slot with a stale value.
  bool insert_slot(Table& t, uint64_t key, uint32_t value) {
    size_t i = flat_mix64(key) & t.mask;
    for (;;) {
      const uint64_t k = t.slots[i].key.load(std::memory_order_relaxed);
      if (k == key) {
        t.slots[i].val.store(value, std::memory_order_release);
        return false;
      }
      if (k == kEmpty) {
        t.slots[i].val.store(value, std::memory_order_release);
        t.slots[i].key.store(key, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_release);
        return true;
      }
      i = (i + 1) & t.mask;
    }
  }

  Table* grow(Table* old) {
    Table* bigger = new_table((old->mask + 1) * 2);
    for (size_t i = 0; i <= old->mask; ++i) {
      const uint64_t k = old->slots[i].key.load(std::memory_order_relaxed);
      if (k == kEmpty) continue;
      // Direct re-insert (no size change, no reader-ordering needed: the
      // table is unpublished until the store below).
      size_t j = flat_mix64(k) & bigger->mask;
      while (bigger->slots[j].key.load(std::memory_order_relaxed) != kEmpty)
        j = (j + 1) & bigger->mask;
      bigger->slots[j].val.store(old->slots[i].val.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
      bigger->slots[j].key.store(k, std::memory_order_relaxed);
    }
    table_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<Table*> table_{nullptr};
  std::atomic<size_t> size_{0};
  std::mutex write_mutex_;
  /// Every table ever allocated, retired ones included — readers may still
  /// be probing a retired table; all are reclaimed at destruction.
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace scidive
