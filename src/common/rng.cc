#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace scidive {

SimDuration DelayModel::sample(Rng& rng) const {
  double v = 0;
  switch (kind_) {
    case DelayKind::kFixed:
      return a_;
    case DelayKind::kUniform:
      v = rng.uniform(static_cast<double>(a_), static_cast<double>(b_));
      break;
    case DelayKind::kExponential: {
      double mean_excess = std::max(0.0, static_cast<double>(b_ - a_));
      v = static_cast<double>(a_) + (mean_excess > 0 ? rng.exponential(mean_excess) : 0.0);
      break;
    }
    case DelayKind::kNormal:
      v = rng.normal(static_cast<double>(a_), static_cast<double>(b_));
      break;
  }
  return std::max<SimDuration>(0, static_cast<SimDuration>(std::llround(v)));
}

double DelayModel::mean() const {
  switch (kind_) {
    case DelayKind::kFixed:
      return static_cast<double>(a_);
    case DelayKind::kUniform:
      return (static_cast<double>(a_) + static_cast<double>(b_)) / 2.0;
    case DelayKind::kExponential:
      return static_cast<double>(b_);  // floor + mean excess == b by construction
    case DelayKind::kNormal:
      return static_cast<double>(a_);  // truncation bias ignored; stddev << mean in practice
  }
  return 0;
}

double DelayModel::variance() const {
  switch (kind_) {
    case DelayKind::kFixed:
      return 0.0;
    case DelayKind::kUniform: {
      double width = static_cast<double>(b_ - a_);
      return width * width / 12.0;
    }
    case DelayKind::kExponential: {
      double mean_excess = static_cast<double>(b_ - a_);
      return mean_excess * mean_excess;
    }
    case DelayKind::kNormal: {
      double sd = static_cast<double>(b_);
      return sd * sd;  // truncation at 0 ignored (stddev << mean in use)
    }
  }
  return 0.0;
}

double DelayModel::cdf(double x) const {
  switch (kind_) {
    case DelayKind::kFixed:
      return x >= static_cast<double>(a_) ? 1.0 : 0.0;
    case DelayKind::kUniform: {
      double lo = static_cast<double>(a_), hi = static_cast<double>(b_);
      if (x <= lo) return 0.0;
      if (x >= hi) return 1.0;
      return (x - lo) / (hi - lo);
    }
    case DelayKind::kExponential: {
      double floor = static_cast<double>(a_);
      double mean_excess = std::max(1e-12, static_cast<double>(b_ - a_));
      if (x <= floor) return 0.0;
      return 1.0 - std::exp(-(x - floor) / mean_excess);
    }
    case DelayKind::kNormal: {
      // Truncation at 0 ignored for the analytics (stddev << mean in use).
      double z = (x - static_cast<double>(a_)) / (static_cast<double>(b_) * std::sqrt(2.0));
      return 0.5 * (1.0 + std::erf(z));
    }
  }
  return 0.0;
}

double DelayModel::pdf(double x) const {
  switch (kind_) {
    case DelayKind::kFixed:
      return 0.0;  // Dirac delta; handled specially by integrators
    case DelayKind::kUniform: {
      double lo = static_cast<double>(a_), hi = static_cast<double>(b_);
      if (x < lo || x > hi || hi <= lo) return 0.0;
      return 1.0 / (hi - lo);
    }
    case DelayKind::kExponential: {
      double floor = static_cast<double>(a_);
      double mean_excess = std::max(1e-12, static_cast<double>(b_ - a_));
      if (x < floor) return 0.0;
      return std::exp(-(x - floor) / mean_excess) / mean_excess;
    }
    case DelayKind::kNormal: {
      double sd = static_cast<double>(b_);
      double z = (x - static_cast<double>(a_)) / sd;
      return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * 3.14159265358979323846));
    }
  }
  return 0.0;
}

double DelayModel::support_max() const {
  switch (kind_) {
    case DelayKind::kFixed:
      return static_cast<double>(a_);
    case DelayKind::kUniform:
      return static_cast<double>(b_);
    case DelayKind::kExponential:
      return static_cast<double>(a_) + 14.0 * std::max<double>(1.0, static_cast<double>(b_ - a_));
    case DelayKind::kNormal:
      return static_cast<double>(a_) + 5.0 * static_cast<double>(b_);
  }
  return 0.0;
}

std::string DelayModel::describe() const {
  switch (kind_) {
    case DelayKind::kFixed:
      return str::format("fixed(%.2fms)", to_msec(a_));
    case DelayKind::kUniform:
      return str::format("uniform(%.2f..%.2fms)", to_msec(a_), to_msec(b_));
    case DelayKind::kExponential:
      return str::format("exp(floor=%.2fms,mean=%.2fms)", to_msec(a_), to_msec(b_));
    case DelayKind::kNormal:
      return str::format("normal(%.2fms,sd=%.2fms)", to_msec(a_), to_msec(b_));
  }
  return "?";
}

}  // namespace scidive
