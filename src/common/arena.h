// Chunked bump arena. Allocation is pointer arithmetic inside the current
// chunk; releasing the arena frees every chunk at once — O(#chunks), not
// O(#allocations) — which is what makes per-session state teardown cheap:
// a session's trails and their ring storage live in one arena, so ending
// the session returns all of it in a handful of frees regardless of how
// many footprints the session accumulated.
//
// The arena never runs destructors. Callers that place non-trivially-
// destructible objects in it (TrailManager does, for Trail) destroy them
// explicitly before release(); plain byte/POD storage needs nothing.
//
// ArenaAllocator<T> adapts an arena to the std allocator interface so
// standard containers (the Trail footprint ring) can draw from it;
// deallocate is a no-op — superseded blocks stay in the arena until the
// whole session is released, bounding waste at the usual geometric-growth
// constant. A default-constructed ArenaAllocator falls back to the global
// heap, so arena-aware types still work when no arena is in play (tests,
// direct construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace scidive {

class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = 1024) : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(Arena&& other) noexcept { move_from(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cur_ + align - 1) & ~(uintptr_t{align} - 1);
    if (p + bytes > end_) {
      grow(bytes + align);
      p = (cur_ + align - 1) & ~(uintptr_t{align} - 1);
    }
    cur_ = p + bytes;
    used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Placement-construct a T in the arena. The caller owns the lifetime:
  /// call the destructor explicitly if T needs one, then release().
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Grow the arena's MOST RECENT allocation in place, if `p + old_bytes` is
  /// exactly the bump pointer and the current chunk has room. Returns true on
  /// success (the block now spans new_bytes); false leaves everything
  /// untouched and the caller falls back to allocate-and-move. This is what
  /// lets an append-only ring grow without copying or abandoning blocks: the
  /// ring is almost always the newest allocation in its session's arena.
  bool try_extend(void* p, size_t old_bytes, size_t new_bytes) {
    uintptr_t block = reinterpret_cast<uintptr_t>(p);
    if (block + old_bytes != cur_) return false;
    if (block + new_bytes > end_) return false;
    cur_ = block + new_bytes;
    used_ += new_bytes - old_bytes;
    return true;
  }

  /// Free every chunk. O(#chunks); no destructors run.
  void release() {
    chunks_.clear();
    cur_ = end_ = 0;
    used_ = 0;
  }

  /// Bytes handed out to callers (excludes alignment and chunk slack).
  size_t bytes_allocated() const { return used_; }
  /// Bytes held from the heap across all chunks.
  size_t bytes_reserved() const { return reserved_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    size_t size = 0;
  };

  /// The source must not keep bump pointers into chunks it no longer owns.
  void move_from(Arena& other) {
    chunks_ = std::move(other.chunks_);
    cur_ = other.cur_;
    end_ = other.end_;
    used_ = other.used_;
    reserved_ = other.reserved_;
    next_chunk_bytes_ = other.next_chunk_bytes_;
    other.cur_ = other.end_ = 0;
    other.used_ = other.reserved_ = 0;
    other.chunks_.clear();
  }

  void grow(size_t at_least) {
    size_t size = next_chunk_bytes_;
    while (size < at_least) size *= 2;
    // Chunks double up to a cap so huge sessions don't over-reserve.
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ = size * 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    cur_ = reinterpret_cast<uintptr_t>(chunks_.back().mem.get());
    end_ = cur_ + size;
  }

  static constexpr size_t kMaxChunkBytes = 256 * 1024;

  std::vector<Chunk> chunks_;
  uintptr_t cur_ = 0;
  uintptr_t end_ = 0;
  size_t used_ = 0;
  size_t reserved_ = 0;
  size_t next_chunk_bytes_;
};

/// std-allocator adapter. Null arena = global heap (so arena-aware types
/// keep working without one).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  /// Container moves/swaps carry the allocator with the storage they own;
  /// arena-backed blocks must keep deallocating as no-ops after a move.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena blocks are reclaimed wholesale at release().
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace scidive
