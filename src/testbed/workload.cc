#include "testbed/workload.h"

#include <map>
#include <memory>

namespace scidive::testbed {

void BenignWorkload::schedule() {
  auto clients = testbed_.clients();
  if (clients.size() < 2) return;
  Rng& rng = testbed_.rng();
  netsim::Simulator& sim = testbed_.sim();
  double span = static_cast<double>(config_.span);

  // Provision buddy lists so IMs go direct (stable sources).
  for (auto* from : clients) {
    for (auto* to : clients) {
      if (from != to) from->add_contact(to->aor(), to->sip_endpoint());
    }
  }

  // Calls with exponential talk times; a few migrate media mid-call. A
  // client is in at most one call at a time (each softphone has one media
  // port; a person has one mouth).
  std::map<voip::UserAgent*, SimTime> busy_until;
  for (int i = 0; i < config_.call_count; ++i) {
    auto* caller = clients[static_cast<size_t>(rng.uniform_int(0, clients.size() - 1))];
    voip::UserAgent* callee = caller;
    while (callee == caller) {
      callee = clients[static_cast<size_t>(rng.uniform_int(0, clients.size() - 1))];
    }
    SimDuration start = static_cast<SimDuration>(rng.uniform(0, span * 0.7));
    start = std::max({start, busy_until[caller], busy_until[callee]});
    SimDuration duration = std::max<SimDuration>(
        sec(2), static_cast<SimDuration>(
                    rng.exponential(static_cast<double>(config_.mean_call_duration))));
    busy_until[caller] = busy_until[callee] = start + duration + sec(1);
    bool migrate = i < config_.migration_count;

    auto call_id = std::make_shared<std::string>();
    sim.after(start, [caller, callee, call_id] {
      if (caller->crashed()) return;
      *call_id = caller->call(callee->config().user);
    });
    if (migrate) {
      uint16_t new_port = static_cast<uint16_t>(19000 + i);
      sim.after(start + duration / 2, [callee, call_id, new_port] {
        if (call_id->empty() || callee->crashed()) return;
        callee->migrate_media(*call_id,
                              {callee->sip_endpoint().addr, new_port});
      });
    }
    sim.after(start + duration, [caller, call_id] {
      if (!call_id->empty()) caller->hangup(*call_id);
    });
    ++calls_scheduled_;
  }

  // Instant messages.
  static const char* kTexts[] = {"hi", "lunch?", "meeting moved", "ok", "see figure 4"};
  for (int i = 0; i < config_.im_count; ++i) {
    auto* from = clients[static_cast<size_t>(rng.uniform_int(0, clients.size() - 1))];
    voip::UserAgent* to = from;
    while (to == from) {
      to = clients[static_cast<size_t>(rng.uniform_int(0, clients.size() - 1))];
    }
    SimDuration at = static_cast<SimDuration>(rng.uniform(0, span));
    std::string text = kTexts[static_cast<size_t>(rng.uniform_int(0, 4))];
    std::string target = to->config().user;
    sim.after(at, [from, target, text] {
      if (!from->crashed()) from->send_im(target, text);
    });
    ++ims_scheduled_;
  }

  // Re-registrations (each produces the routine 401 dance when auth is on).
  for (int i = 0; i < config_.reregister_count; ++i) {
    auto* ua = clients[static_cast<size_t>(rng.uniform_int(0, clients.size() - 1))];
    SimDuration at = static_cast<SimDuration>(rng.uniform(0, span));
    sim.after(at, [ua] {
      if (!ua->crashed()) ua->register_now();
    });
  }
}

}  // namespace scidive::testbed
