#include "testbed/testbed.h"

namespace scidive::testbed {

namespace {

core::EngineConfig ids_config(const TestbedConfig& config, pkt::Ipv4Address a,
                              pkt::Ipv4Address proxy, pkt::Ipv4Address db) {
  core::EngineConfig out;
  out.events = config.ids_events;
  out.rules = config.ids_rules;
  out.obs = config.ids_obs;
  out.enforce = config.ids_enforce;
  if (config.ids_watches_client_a) out.home_addresses.insert(a);
  if (config.ids_watches_proxy) {
    out.home_addresses.insert(proxy);
    out.home_addresses.insert(db);
  }
  return out;
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      rng_(config.seed),
      net_(sim_, config.seed ^ 0x5eedULL),
      proxy_host_("proxy", pkt::Ipv4Address(10, 0, 0, 100), net_),
      a_host_("client-a", pkt::Ipv4Address(10, 0, 0, 1), net_),
      b_host_("client-b", pkt::Ipv4Address(10, 0, 0, 2), net_),
      attacker_host_("attacker", pkt::Ipv4Address(10, 0, 0, 66), net_),
      db_host_("billing-db", pkt::Ipv4Address(10, 0, 0, 200), net_) {
  for (netsim::Host* host : {&proxy_host_, &a_host_, &b_host_, &attacker_host_, &db_host_}) {
    net_.attach(*host, config_.link);
  }

  proxy_ = std::make_unique<voip::ProxyRegistrar>(
      proxy_host_, voip::ProxyConfig{.domain = kDomain, .sip_port = 5060,
                                     .require_auth = config_.require_auth, .realm = kDomain});
  proxy_->set_billing_identity_bug(config_.billing_bug);
  db_ = std::make_unique<voip::BillingDatabase>(db_host_);
  accounting_ = std::make_unique<voip::AccountingClient>(
      proxy_host_, pkt::Endpoint{db_host_.address(), voip::kAccPort});
  proxy_->set_accounting(accounting_.get());

  auto ua_config = [&](const std::string& user, rtp::CorruptionBehavior jitter) {
    voip::UserAgentConfig c;
    c.user = user;
    c.domain = kDomain;
    c.password = user + "-pass";
    c.proxy = {proxy_host_.address(), 5060};
    c.jitter_behavior = jitter;
    c.rtp_interval = config_.rtp_interval;
    return c;
  };
  a_ = std::make_unique<voip::UserAgent>(a_host_, ua_config("alice", config_.client_a_jitter));
  b_ = std::make_unique<voip::UserAgent>(b_host_,
                                         ua_config("bob", rtp::CorruptionBehavior::kGlitch));
  proxy_->add_user("alice", "alice-pass");
  proxy_->add_user("bob", "bob-pass");

  ids_ = std::make_unique<core::ScidiveEngine>(
      ids_config(config_, a_host_.address(), proxy_host_.address(), db_host_.address()));
  net_.add_tap(ids_->tap());
  net_.add_tap(sniffer_.tap());

  // Prevention wiring: the proxy consults the IDS's standing enforcement
  // state (block list + rate limiters) before processing a datagram. The
  // screen only peeks — the engine's own decide() path, fed by the tap,
  // is the single place tokens are consumed, so the screen and the tap
  // never double-charge one packet.
  if (ids_->enforcement_mode() != core::EnforcementMode::kOff) {
    proxy_->set_screen(
        [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now) {
          uint64_t principal = 0;
          if (auto msg = sip::SipMessage::parse(payload); msg.ok()) {
            if (auto f = msg.value().from(); f.ok()) {
              std::string aor = f.value().uri.address_of_record();
              if (!aor.empty()) principal = core::aor_key(aor);
            }
          }
          const core::VerdictAction act =
              ids_->enforcer()->peek(core::source_key(from.addr), 0, principal, now);
          if (act != core::VerdictAction::kPass) ++screen_nonpass_;
          if (ids_->enforcement_mode() == core::EnforcementMode::kInline)
            return static_cast<voip::ScreenAction>(act);
          return voip::ScreenAction::kPass;  // passive: record, never interfere
        });
  }
}

voip::UserAgent& Testbed::add_client(const std::string& user, uint8_t last_octet,
                                     uint16_t sip_port, uint16_t rtp_port) {
  auto host = std::make_unique<netsim::Host>(user, pkt::Ipv4Address(10, 0, 0, last_octet),
                                             net_);
  net_.attach(*host, config_.link);
  voip::UserAgentConfig c;
  c.user = user;
  c.domain = kDomain;
  c.password = user + "-pass";
  c.proxy = {proxy_host_.address(), 5060};
  c.sip_port = sip_port;
  c.rtp_port = rtp_port;
  c.rtp_interval = config_.rtp_interval;
  proxy_->add_user(user, c.password);
  auto ua = std::make_unique<voip::UserAgent>(*host, std::move(c));
  extra_hosts_.push_back(std::move(host));
  extra_clients_.push_back(std::move(ua));
  return *extra_clients_.back();
}

std::vector<voip::UserAgent*> Testbed::clients() {
  std::vector<voip::UserAgent*> out{a_.get(), b_.get()};
  for (auto& ua : extra_clients_) out.push_back(ua.get());
  return out;
}

void Testbed::register_all() {
  a_->register_now();
  b_->register_now();
  for (auto& ua : extra_clients_) ua->register_now();
  run_for(sec(2));
}

std::string Testbed::establish_call(SimDuration talk) {
  if (!a_->registered()) register_all();
  std::string call_id = a_->call("bob");
  run_for(talk);
  return call_id;
}

void Testbed::inject_bye_attack() {
  // Attack a call the monitored client (A) is involved in — the endpoint
  // IDS deployment only watches A's traffic.
  auto call = sniffer_.latest_active_call_of(a_->aor());
  if (!call) return;
  voip::ByeAttacker attacker(attacker_host_);
  attacker.attack(*call, /*attack_caller=*/call->caller_aor == a_->aor());
  injected_.push_back({"bye-attack", now(), call->call_id});
}

void Testbed::inject_call_hijack() {
  auto call = sniffer_.latest_active_call_of(a_->aor());
  if (!call) return;
  voip::CallHijacker hijacker(attacker_host_);
  hijacker.attack(*call, {attacker_host_.address(), 17000},
                  /*attack_caller=*/call->caller_aor == a_->aor());
  injected_.push_back({"call-hijack", now(), call->call_id});
}

void Testbed::inject_fake_im() {
  voip::FakeImAttacker attacker(attacker_host_);
  attacker.send(a_->sip_endpoint(), b_->aor(), "click this link immediately");
  injected_.push_back({"fake-im", now(), ""});
}

void Testbed::inject_rtp_flood(int packets) {
  // Aim at the victim's media port for the current call (sniffed from SDP,
  // as the paper's attacker would); fall back to A's base media port.
  pkt::Endpoint victim{a_host_.address(), a_->config().rtp_port};
  if (auto call = sniffer_.latest_active_call();
      call && call->caller_media.addr == a_host_.address()) {
    victim = call->caller_media;
  }
  auto injector = std::make_shared<voip::RtpInjector>(attacker_host_, rng_.next_u64());
  injector->start(victim, {.count = packets});
  sim_.after(sec(3600), [injector] {});  // outlive its scheduled ticks
  injected_.push_back({"rtp-attack", now(), ""});
}

void Testbed::inject_register_flood(int count) {
  auto flooder = std::make_shared<voip::RegisterFlooder>(
      attacker_host_, pkt::Endpoint{proxy_host_.address(), 5060}, "alice", kDomain);
  flooder->start(count, msec(100));
  // Keep the flooder alive for the run.
  sim_.after(sec(3600), [flooder] {});
  injected_.push_back({"register-flood", now(), ""});
}

void Testbed::inject_password_guessing(std::vector<std::string> guesses) {
  auto guesser = std::make_shared<voip::PasswordGuesser>(
      attacker_host_, pkt::Endpoint{proxy_host_.address(), 5060}, "alice", kDomain);
  guesser->start(std::move(guesses), msec(80));
  sim_.after(sec(3600), [guesser] {});
  injected_.push_back({"password-guess", now(), ""});
}

void Testbed::inject_billing_fraud() {
  auto fraudster = std::make_shared<voip::BillingFraudster>(
      attacker_host_, pkt::Endpoint{proxy_host_.address(), 5060}, std::string(kDomain));
  fraudster->place_fraudulent_call("bob", a_->aor());
  sim_.after(sec(3600), [fraudster] {});
  injected_.push_back({"billing-fraud", now(), ""});
}

void Testbed::inject_spit_campaign(int calls, SimDuration interval) {
  spitter_ = std::make_shared<voip::SpitCampaigner>(
      attacker_host_, pkt::Endpoint{proxy_host_.address(), 5060}, "spambot",
      std::string(kDomain));
  spitter_->start({"alice", "bob"}, calls, interval);
  injected_.push_back({"spit-graylist", now(), ""});
}

Testbed::Score Testbed::score() const {
  Score s;
  // One true positive per injected attack kind that produced >= 1 alert of
  // the matching rule after the injection time; extra alerts of the same
  // rule within an attack are not penalized (a real attack may trip the
  // rule several times); alerts of rules with no matching injection are
  // false positives.
  std::map<std::string, int> injected_by_kind;
  for (const auto& attack : injected_) ++injected_by_kind[attack.kind];

  std::map<std::string, int> alerted_by_rule;
  for (const auto& alert : ids_->alerts().alerts()) ++alerted_by_rule[alert.rule];

  for (const auto& [kind, n] : injected_by_kind) {
    int hits = alerted_by_rule.contains(kind) ? 1 : 0;
    // Detected kinds: count each injection at most once; undetected: missed.
    if (hits > 0) {
      s.true_positives += n;  // conservative: rule fired, injections covered
    } else {
      s.missed += n;
    }
  }
  for (const auto& [rule, n] : alerted_by_rule) {
    if (!injected_by_kind.contains(rule)) s.false_positives += n;
  }
  return s;
}

}  // namespace scidive::testbed
