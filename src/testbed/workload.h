// Benign background workload: calls of random duration, direct instant
// messages, mid-call media migrations and periodic re-registrations —
// everything a healthy VoIP deployment does, including the behaviours the
// paper singles out as false-alarm bait for naive rules (mobility
// re-INVITEs, routine 401 challenge round-trips).
#pragma once

#include "testbed/testbed.h"

namespace scidive::testbed {

struct WorkloadConfig {
  int call_count = 10;
  SimDuration mean_call_duration = sec(8);
  int im_count = 10;
  int migration_count = 2;      // calls that migrate media mid-way
  int reregister_count = 4;
  SimDuration span = sec(60);   // activity window
};

class BenignWorkload {
 public:
  BenignWorkload(Testbed& testbed, WorkloadConfig config)
      : testbed_(testbed), config_(config) {}

  /// Schedule the whole workload onto the testbed's simulator, starting at
  /// the current simulation time. Clients must already be registered.
  void schedule();

  int calls_scheduled() const { return calls_scheduled_; }
  int ims_scheduled() const { return ims_scheduled_; }

 private:
  Testbed& testbed_;
  WorkloadConfig config_;
  int calls_scheduled_ = 0;
  int ims_scheduled_ = 0;
};

}  // namespace scidive::testbed
