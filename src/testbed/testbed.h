// The paper's Figure-4 testbed as a reusable harness: SIP proxy (SIP
// Express Router stand-in), clients A and B (KPhone / Messenger / X-Lite
// stand-ins), a billing database, an attacker machine and a SCIDIVE IDS
// instance tapped on the hub — all wired to one deterministic simulator.
//
// Examples and benchmark binaries build scenarios on top of this class; the
// attack injectors carry ground-truth bookkeeping so accuracy experiments
// can classify alerts into true/false positives.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "scidive/engine.h"
#include "voip/accounting.h"
#include "voip/attack.h"
#include "voip/proxy.h"
#include "voip/user_agent.h"

namespace scidive::testbed {

struct TestbedConfig {
  uint64_t seed = 2004;
  netsim::LinkConfig link{.delay = DelayModel::fixed(msec(1)), .loss = 0.0, .mtu = 1500};
  bool require_auth = false;
  bool billing_bug = false;
  /// Where the IDS sits: the paper's endpoint deployment watches client A;
  /// proxy-side deployments (for the §3.2/§3.3 scenarios) watch the proxy
  /// and the billing database.
  bool ids_watches_client_a = true;
  bool ids_watches_proxy = false;
  core::EventGeneratorConfig ids_events;
  core::RulesConfig ids_rules;
  core::EngineObsConfig ids_obs;
  /// Prevention: kOff leaves the testbed purely passive (the default).
  /// kPassive wires the proxy screen but only counts what it would have
  /// done; kInline lets the screen drop/503 graylisted traffic for real.
  core::EnforceConfig ids_enforce;
  rtp::CorruptionBehavior client_a_jitter = rtp::CorruptionBehavior::kGlitch;
  /// Media pacing for every client (the paper's "typical period employed is
  /// 20 milliseconds"; the detection-delay law scales with it).
  SimDuration rtp_interval = msec(20);
};

/// Ground truth about one injected attack, for accuracy scoring.
struct InjectedAttack {
  std::string kind;        // matches the rule expected to fire
  SimTime injected_at = 0;
  core::SessionId session; // call-id when applicable
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  static constexpr const char* kDomain = "lab.net";

  // --- driving the simulation ---
  void register_all();
  /// Place A->B and run until established (plus `talk` of conversation).
  std::string establish_call(SimDuration talk = sec(2));
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }
  SimTime now() const { return sim_.now(); }

  // --- attack injection (each records ground truth) ---
  void inject_bye_attack();
  void inject_call_hijack();
  void inject_fake_im();
  void inject_rtp_flood(int packets = 30);
  void inject_register_flood(int count = 20);
  void inject_password_guessing(std::vector<std::string> guesses);
  void inject_billing_fraud();
  /// SPIT campaign: `calls` short call attempts from one spam identity,
  /// one every `interval`, each CANCELed moments later.
  void inject_spit_campaign(int calls = 12, SimDuration interval = msec(500));

  const std::vector<InjectedAttack>& injected() const { return injected_; }

  // --- components ---
  netsim::Simulator& sim() { return sim_; }
  netsim::Network& net() { return net_; }
  voip::UserAgent& client_a() { return *a_; }
  voip::UserAgent& client_b() { return *b_; }
  voip::ProxyRegistrar& proxy() { return *proxy_; }
  voip::BillingDatabase& billing_db() { return *db_; }
  core::ScidiveEngine& ids() { return *ids_; }
  const core::AlertSink& alerts() const { return ids_->alerts(); }
  voip::CallSniffer& sniffer() { return sniffer_; }
  netsim::Host& attacker_host() { return attacker_host_; }
  Rng& rng() { return rng_; }
  /// The active SPIT campaigner (null before inject_spit_campaign).
  voip::SpitCampaigner* spitter() { return spitter_.get(); }
  /// Datagrams the proxy screen judged non-pass. In kPassive mode these are
  /// the would-have-dropped/shaped packets (the traffic still flowed); in
  /// kInline mode they were actually rejected (see ProxyStats too).
  uint64_t screen_nonpass() const { return screen_nonpass_; }

  /// Add another user agent to the testbed (registers with the proxy's
  /// user table; caller drives registration).
  voip::UserAgent& add_client(const std::string& user, uint8_t last_octet,
                              uint16_t sip_port = 5060, uint16_t rtp_port = 16384);

  /// All user agents (A, B, extras) for workload generators.
  std::vector<voip::UserAgent*> clients();

  /// Accuracy scoring: alerts whose rule matches an injected attack count
  /// as true positives (one per injection); everything else is false.
  struct Score {
    int true_positives = 0;
    int false_positives = 0;
    int missed = 0;
  };
  Score score() const;

 private:
  TestbedConfig config_;
  Rng rng_;
  netsim::Simulator sim_;
  netsim::Network net_;

  netsim::Host proxy_host_;
  netsim::Host a_host_;
  netsim::Host b_host_;
  netsim::Host attacker_host_;
  netsim::Host db_host_;
  std::vector<std::unique_ptr<netsim::Host>> extra_hosts_;

  std::unique_ptr<voip::ProxyRegistrar> proxy_;
  std::unique_ptr<voip::BillingDatabase> db_;
  std::unique_ptr<voip::AccountingClient> accounting_;
  std::unique_ptr<voip::UserAgent> a_;
  std::unique_ptr<voip::UserAgent> b_;
  std::vector<std::unique_ptr<voip::UserAgent>> extra_clients_;
  std::unique_ptr<core::ScidiveEngine> ids_;
  voip::CallSniffer sniffer_;
  std::shared_ptr<voip::SpitCampaigner> spitter_;
  uint64_t screen_nonpass_ = 0;

  std::vector<InjectedAttack> injected_;
};

}  // namespace scidive::testbed
