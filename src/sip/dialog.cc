#include "sip/dialog.h"

namespace scidive::sip {

std::string_view dialog_state_name(DialogState s) {
  switch (s) {
    case DialogState::kEarly: return "early";
    case DialogState::kConfirmed: return "confirmed";
    case DialogState::kTerminated: return "terminated";
  }
  return "?";
}

bool Dialog::confirm(SimTime now) {
  if (state_ != DialogState::kEarly) return false;
  state_ = DialogState::kConfirmed;
  confirmed_at_ = now;
  return true;
}

bool Dialog::terminate(SimTime now) {
  if (state_ == DialogState::kTerminated) return false;
  state_ = DialogState::kTerminated;
  terminated_at_ = now;
  return true;
}

bool Dialog::accept_remote_cseq(uint32_t v) {
  if (v == 0) return false;  // CSeq numbers start at 1 (RFC 3261 §8.1.1.5)
  if (remote_cseq_ && v <= *remote_cseq_) return false;
  remote_cseq_ = v;
  return true;
}

}  // namespace scidive::sip
