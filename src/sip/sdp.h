// Minimal SDP (RFC 2327 subset): exactly what a 2004 softphone offers —
// origin, session name, one connection line, one audio media line. The IDS
// uses SDP to learn where a call's RTP is supposed to flow (cross-protocol
// session correlation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace scidive::sip {

struct SdpMedia {
  std::string type = "audio";      // m= media type
  uint16_t port = 0;               // RTP port
  std::string proto = "RTP/AVP";   // transport
  std::vector<uint8_t> payload_types;  // e.g. {0} == PCMU
};

struct Sdp {
  std::string origin_user = "-";
  uint64_t session_id = 0;
  uint64_t session_version = 0;
  std::string origin_addr;      // o= address
  std::string session_name = "-";
  std::string connection_addr;  // c= address: where to send media
  std::vector<SdpMedia> media;

  static Result<Sdp> parse(std::string_view text);
  std::string to_string() const;

  /// First audio media entry, if any.
  const SdpMedia* audio() const {
    for (const auto& m : media) {
      if (m.type == "audio") return &m;
    }
    return nullptr;
  }
};

/// Convenience: one-audio-stream offer/answer body.
Sdp make_audio_sdp(std::string addr, uint16_t rtp_port, uint64_t session_id,
                   uint64_t version = 1);

}  // namespace scidive::sip
