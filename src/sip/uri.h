// SIP URI (RFC 3261 §19.1, restricted grammar): sip:user@host:port;params.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scidive::sip {

class SipUri {
 public:
  SipUri() = default;
  SipUri(std::string user, std::string host, uint16_t port = 0)
      : user_(std::move(user)), host_(std::move(host)), port_(port) {}

  static Result<SipUri> parse(std::string_view text);

  const std::string& user() const { return user_; }
  const std::string& host() const { return host_; }
  /// 0 means "unspecified" (defaults to 5060 at the transport layer).
  uint16_t port() const { return port_; }
  uint16_t port_or_default() const { return port_ ? port_ : 5060; }

  void set_host(std::string host) { host_ = std::move(host); }
  void set_port(uint16_t port) { port_ = port; }

  std::optional<std::string> param(std::string_view name) const;
  void set_param(std::string name, std::string value) { params_[std::move(name)] = std::move(value); }

  /// user@host (no scheme/port/params) — the paper's notion of a user
  /// address, used for registrar bindings and accounting records.
  std::string address_of_record() const {
    return user_.empty() ? host_ : user_ + "@" + host_;
  }

  std::string to_string() const;

  bool operator==(const SipUri& other) const {
    return user_ == other.user_ && host_ == other.host_ && port_ == other.port_;
  }

 private:
  std::string user_;
  std::string host_;
  uint16_t port_ = 0;
  std::map<std::string, std::string, std::less<>> params_;
};

}  // namespace scidive::sip
