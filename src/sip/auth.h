// SIP digest authentication (RFC 3261 §22 / RFC 2617, no-qop variant that
// 2004-era proxies like SIP Express Router shipped by default).
//
//   response = MD5( MD5(user:realm:password) : nonce : MD5(method:uri) )
//
// The registrar challenges REGISTER with 401 + WWW-Authenticate; the client
// retries with an Authorization header. The password-guessing attack of
// §3.3 brute-forces the `response` field against a fixed nonce.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scidive::sip {

/// WWW-Authenticate challenge parameters.
struct DigestChallenge {
  std::string realm;
  std::string nonce;

  std::string to_header_value() const;
  static Result<DigestChallenge> parse(std::string_view header_value);
};

/// Authorization credentials presented by a client.
struct DigestCredentials {
  std::string username;
  std::string realm;
  std::string nonce;
  std::string uri;
  std::string response;  // 32 hex chars

  std::string to_header_value() const;
  static Result<DigestCredentials> parse(std::string_view header_value);
};

/// Compute the expected digest response.
std::string compute_digest_response(std::string_view username, std::string_view realm,
                                    std::string_view password, std::string_view method,
                                    std::string_view uri, std::string_view nonce);

/// Build credentials answering a challenge.
DigestCredentials answer_challenge(const DigestChallenge& challenge, std::string_view username,
                                   std::string_view password, std::string_view method,
                                   std::string_view uri);

/// Verify presented credentials against the known password.
bool verify_digest(const DigestCredentials& creds, std::string_view password,
                   std::string_view method);

}  // namespace scidive::sip
