// SIP transaction layer (RFC 3261 §17, UDP flavor, simplified): client
// transactions retransmit requests with exponential backoff until a final
// response or timeout; server transactions absorb retransmitted requests by
// replaying the last response. ACK is end-to-end and bypasses transactions.
//
// The layer is transport-agnostic: the owner injects send/schedule/now
// callbacks (in this repo, a netsim::Host).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "pkt/addr.h"
#include "sip/message.h"

namespace scidive::sip {

/// SIP timer T1 (RTT estimate) and the give-up bound per RFC 3261.
constexpr SimDuration kTimerT1 = msec(500);
constexpr SimDuration kTimerB = 64 * kTimerT1;

/// Environment a TransactionManager runs in.
struct TransactionEnv {
  std::function<void(const SipMessage&, pkt::Endpoint)> send_message;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  std::function<SimTime()> now;
};

/// Outcome reported for a client transaction.
struct ClientResult {
  bool timed_out = false;
  SipMessage response = SipMessage::response(0, "");  // valid when !timed_out
  pkt::Endpoint peer;
};

class TransactionManager {
 public:
  using ResponseHandler = std::function<void(const ClientResult&)>;
  /// (request, source). Handlers respond via respond().
  using RequestHandler = std::function<void(const SipMessage&, pkt::Endpoint)>;

  explicit TransactionManager(TransactionEnv env) : env_(std::move(env)) {}

  /// Issue a request as a new client transaction. The request must carry a
  /// Via with a branch parameter (use make_branch()). Provisional (1xx)
  /// responses are reported but do not complete the transaction.
  void send_request(SipMessage request, pkt::Endpoint dst, ResponseHandler on_response);

  /// Send a request without transaction state (used for ACK).
  void send_stateless(const SipMessage& msg, pkt::Endpoint dst) { env_.send_message(msg, dst); }

  /// Feed every incoming SIP message here. Requests surface through the
  /// request handler exactly once per transaction; retransmissions replay
  /// the stored response. Responses complete client transactions.
  void on_message(const SipMessage& msg, pkt::Endpoint from);

  void set_request_handler(RequestHandler handler) { request_handler_ = std::move(handler); }

  /// Responses that match no client transaction (e.g. a retransmitted 2xx
  /// whose transaction already completed — the UA core must re-ACK those,
  /// RFC 3261 §13.2.2.4).
  using StrayResponseHandler = std::function<void(const SipMessage&, pkt::Endpoint)>;
  void set_stray_response_handler(StrayResponseHandler handler) {
    stray_response_handler_ = std::move(handler);
  }

  /// Respond to a server transaction (keyed by the request's branch+method).
  /// Later retransmissions of the same request get this response replayed.
  void respond(const SipMessage& request, SipMessage response, pkt::Endpoint to);

  /// Generate an RFC 3261 branch token (z9hG4bK-prefixed).
  std::string make_branch();

  /// Copy/derive the headers a response must echo from its request.
  static SipMessage make_response_for(const SipMessage& request, int code, std::string reason);

  size_t active_client_transactions() const { return clients_.size(); }
  size_t active_server_transactions() const { return servers_.size(); }
  uint64_t retransmissions_sent() const { return retransmissions_sent_; }
  uint64_t timeouts() const { return timeouts_; }

  /// Drop completed server transactions older than 64*T1 (garbage
  /// collection; call occasionally from the owner if long-running).
  void gc();

 private:
  struct ClientTx {
    SipMessage request = SipMessage::response(0, "");  // placeholder until set
    pkt::Endpoint dst;
    ResponseHandler on_response;
    SimDuration interval = kTimerT1;
    SimTime started = 0;
    bool done = false;
  };
  struct ServerTx {
    std::optional<SipMessage> last_response;
    pkt::Endpoint peer;
    SimTime created = 0;
  };

  void arm_retransmit(const std::string& key);

  static std::string client_key(const SipMessage& msg);
  static std::string server_key(const SipMessage& msg);

  TransactionEnv env_;
  RequestHandler request_handler_;
  StrayResponseHandler stray_response_handler_;
  std::map<std::string, std::shared_ptr<ClientTx>> clients_;
  std::map<std::string, ServerTx> servers_;
  uint64_t next_branch_ = 1;
  uint64_t retransmissions_sent_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace scidive::sip
