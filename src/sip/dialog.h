// SIP dialog bookkeeping (RFC 3261 §12): identification by
// (Call-ID, local tag, remote tag), state machine Early -> Confirmed ->
// Terminated, and the media session parameters negotiated via SDP. Used
// actively by the user agents and, in passive mirrored form, by the IDS's
// event generator.
#pragma once

#include <optional>
#include <string>

#include "common/clock.h"
#include "pkt/addr.h"
#include "sip/message.h"
#include "sip/sdp.h"

namespace scidive::sip {

enum class DialogState { kEarly, kConfirmed, kTerminated };

std::string_view dialog_state_name(DialogState s);

struct DialogId {
  std::string call_id;
  std::string local_tag;
  std::string remote_tag;

  auto operator<=>(const DialogId&) const = default;
  std::string to_string() const {
    return call_id + ";l=" + local_tag + ";r=" + remote_tag;
  }
};

/// One end's view of a dialog plus its negotiated audio session.
class Dialog {
 public:
  Dialog(DialogId id, SipUri local_uri, SipUri remote_uri)
      : id_(std::move(id)), local_uri_(std::move(local_uri)), remote_uri_(std::move(remote_uri)) {}

  const DialogId& id() const { return id_; }
  DialogState state() const { return state_; }
  const SipUri& local_uri() const { return local_uri_; }
  const SipUri& remote_uri() const { return remote_uri_; }

  /// State transitions. Invalid transitions are ignored and return false
  /// (e.g. confirming a terminated dialog), which callers may log.
  bool confirm(SimTime now);
  bool terminate(SimTime now);

  SimTime confirmed_at() const { return confirmed_at_; }
  SimTime terminated_at() const { return terminated_at_; }

  // CSeq bookkeeping.
  uint32_t next_local_cseq() { return ++local_cseq_; }
  uint32_t local_cseq() const { return local_cseq_; }
  void set_local_cseq(uint32_t v) { local_cseq_ = v; }
  std::optional<uint32_t> remote_cseq() const { return remote_cseq_; }
  /// Returns false if the request CSeq is stale (out of order).
  bool accept_remote_cseq(uint32_t v);

  // Media (from SDP offer/answer).
  void set_local_media(pkt::Endpoint ep) { local_media_ = ep; }
  void set_remote_media(pkt::Endpoint ep) { remote_media_ = ep; }
  std::optional<pkt::Endpoint> local_media() const { return local_media_; }
  std::optional<pkt::Endpoint> remote_media() const { return remote_media_; }

  // Where in-dialog requests go.
  void set_remote_target(pkt::Endpoint ep) { remote_target_ = ep; }
  std::optional<pkt::Endpoint> remote_target() const { return remote_target_; }

 private:
  DialogId id_;
  SipUri local_uri_;
  SipUri remote_uri_;
  DialogState state_ = DialogState::kEarly;
  SimTime confirmed_at_ = 0;
  SimTime terminated_at_ = 0;
  uint32_t local_cseq_ = 0;
  std::optional<uint32_t> remote_cseq_;
  std::optional<pkt::Endpoint> local_media_;
  std::optional<pkt::Endpoint> remote_media_;
  std::optional<pkt::Endpoint> remote_target_;
};

}  // namespace scidive::sip
