// SIP header field collection and the structured header types used by the
// stack and the IDS: name-addr (From/To/Contact), Via, CSeq.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sip/uri.h"

namespace scidive::sip {

/// One "Name: value" field, order-preserving in the message.
struct HeaderField {
  std::string name;
  std::string value;
};

/// Canonical (long) header name for a possibly-compact form ("v" -> "Via").
std::string_view canonical_header_name(std::string_view name);

/// Ordered multi-map of header fields with case-insensitive, compact-form
/// aware lookup.
class Headers {
 public:
  void add(std::string name, std::string value);
  /// Replace all fields of this name with a single one.
  void set(std::string name, std::string value);
  void remove(std::string_view name);

  /// First value of a header, if present.
  std::optional<std::string_view> get(std::string_view name) const;
  /// All values of a header, in message order.
  std::vector<std::string_view> get_all(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }
  size_t count(std::string_view name) const { return get_all(name).size(); }

  const std::vector<HeaderField>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }

 private:
  std::vector<HeaderField> fields_;
};

/// From/To/Contact style: [display-name] <uri> ;params   (tag lives here).
struct NameAddr {
  std::string display_name;
  SipUri uri;
  std::map<std::string, std::string, std::less<>> params;

  static Result<NameAddr> parse(std::string_view text);
  std::string to_string() const;

  std::optional<std::string> tag() const {
    auto it = params.find("tag");
    if (it == params.end()) return std::nullopt;
    return it->second;
  }
  void set_tag(std::string tag) { params["tag"] = std::move(tag); }
};

/// Via: SIP/2.0/UDP host:port;branch=z9hG4bK...;params
struct Via {
  std::string transport = "UDP";
  std::string host;
  uint16_t port = 5060;
  std::map<std::string, std::string, std::less<>> params;

  static Result<Via> parse(std::string_view text);
  std::string to_string() const;

  std::optional<std::string> branch() const {
    auto it = params.find("branch");
    if (it == params.end()) return std::nullopt;
    return it->second;
  }
};

/// CSeq: 42 INVITE
struct CSeq {
  uint32_t number = 0;
  std::string method;

  static Result<CSeq> parse(std::string_view text);
  std::string to_string() const;
};

}  // namespace scidive::sip
