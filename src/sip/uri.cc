#include "sip/uri.h"

#include "common/strings.h"

namespace scidive::sip {

Result<SipUri> SipUri::parse(std::string_view text) {
  text = str::trim(text);
  if (!str::istarts_with(text, "sip:"))
    return Error{Errc::kMalformed, "URI scheme must be sip:"};
  text.remove_prefix(4);
  if (text.empty()) return Error{Errc::kMalformed, "empty URI"};

  SipUri uri;

  // Split off ;params first (they follow host[:port]).
  std::string_view core = text;
  std::string_view params;
  if (auto split = str::split_once(text, ';')) {
    core = split->first;
    params = split->second;
  }

  // user@host or just host.
  std::string_view hostport = core;
  if (auto at = str::split_once(core, '@')) {
    if (at->first.empty()) return Error{Errc::kMalformed, "empty user before @"};
    uri.user_ = std::string(at->first);
    hostport = at->second;
  }
  if (auto colon = str::split_once(hostport, ':')) {
    auto port = str::parse_u16(colon->second);
    if (!port || *port == 0) return Error{Errc::kMalformed, "bad port"};
    uri.port_ = *port;
    hostport = colon->first;
  }
  if (hostport.empty()) return Error{Errc::kMalformed, "empty host"};
  for (char c : hostport) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '_'))
      return Error{Errc::kMalformed, "bad host character"};
  }
  uri.host_ = std::string(hostport);

  if (!params.empty()) {
    for (auto p : str::split(params, ';')) {
      p = str::trim(p);
      if (p.empty()) continue;
      if (auto eq = str::split_once(p, '=')) {
        uri.params_[std::string(eq->first)] = std::string(eq->second);
      } else {
        uri.params_[std::string(p)] = "";
      }
    }
  }
  return uri;
}

std::optional<std::string> SipUri::param(std::string_view name) const {
  auto it = params_.find(name);
  if (it == params_.end()) return std::nullopt;
  return it->second;
}

std::string SipUri::to_string() const {
  std::string out = "sip:";
  if (!user_.empty()) {
    out += user_;
    out += '@';
  }
  out += host_;
  if (port_ != 0) out += str::format(":%u", port_);
  for (const auto& [k, v] : params_) {
    out += ';';
    out += k;
    if (!v.empty()) {
      out += '=';
      out += v;
    }
  }
  return out;
}

}  // namespace scidive::sip
