// SIP message model, parser and serializer (RFC 3261 subset sufficient for
// a 2004-era VoIP deployment: REGISTER/INVITE/ACK/BYE/CANCEL/OPTIONS/
// MESSAGE, re-INVITE, digest auth headers, SDP bodies).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "sip/headers.h"
#include "sip/uri.h"

namespace scidive::sip {

enum class Method {
  kInvite,
  kAck,
  kBye,
  kCancel,
  kRegister,
  kOptions,
  kMessage,  // instant messaging (RFC 3428)
  kInfo,
  kUnknown,
};

std::string_view method_name(Method m);
Method method_from_name(std::string_view name);

/// Response status classes the IDS reasons about.
inline int status_class(int code) { return code / 100; }

class SipMessage {
 public:
  /// Build a request skeleton (start line only; headers added by caller).
  static SipMessage request(Method method, SipUri request_uri);
  /// Build a response skeleton.
  static SipMessage response(int status_code, std::string reason);

  /// Parse from wire bytes. Strict on structure (start line, header syntax
  /// of the structured headers is validated lazily), tolerant of unknown
  /// headers. Body length is governed by Content-Length when present.
  static Result<SipMessage> parse(std::string_view text);
  static Result<SipMessage> parse(std::span<const uint8_t> bytes);

  /// Serialize to wire format. Content-Length is always emitted.
  std::string to_string() const;

  bool is_request() const { return is_request_; }
  bool is_response() const { return !is_request_; }

  // Request accessors.
  Method method() const { return method_; }
  const std::string& method_text() const { return method_text_; }
  const SipUri& request_uri() const { return request_uri_; }
  void set_request_uri(SipUri uri) { request_uri_ = std::move(uri); }

  // Response accessors.
  int status_code() const { return status_code_; }
  const std::string& reason() const { return reason_; }

  Headers& headers() { return headers_; }
  const Headers& headers() const { return headers_; }

  const std::string& body() const { return body_; }
  void set_body(std::string body, std::string content_type);

  // --- structured header conveniences (parse on access) ---
  std::optional<std::string> call_id() const;
  Result<CSeq> cseq() const;
  Result<NameAddr> from() const;
  Result<NameAddr> to() const;
  Result<NameAddr> contact() const;
  Result<Via> top_via() const;
  std::optional<uint32_t> expires() const;
  std::optional<uint32_t> max_forwards() const;

  /// True when every mandatory header for this message kind is present and
  /// parses (the Billing-fraud rule's "correct format" check, §3.2).
  bool well_formed() const;

 private:
  SipMessage() = default;

  bool is_request_ = true;
  Method method_ = Method::kUnknown;
  std::string method_text_;
  SipUri request_uri_;
  int status_code_ = 0;
  std::string reason_;
  Headers headers_;
  std::string body_;
};

}  // namespace scidive::sip
