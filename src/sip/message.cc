#include "sip/message.h"

#include "common/strings.h"

namespace scidive::sip {

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kInvite: return "INVITE";
    case Method::kAck: return "ACK";
    case Method::kBye: return "BYE";
    case Method::kCancel: return "CANCEL";
    case Method::kRegister: return "REGISTER";
    case Method::kOptions: return "OPTIONS";
    case Method::kMessage: return "MESSAGE";
    case Method::kInfo: return "INFO";
    case Method::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

Method method_from_name(std::string_view name) {
  // Method names are case-sensitive tokens in SIP; match exactly.
  if (name == "INVITE") return Method::kInvite;
  if (name == "ACK") return Method::kAck;
  if (name == "BYE") return Method::kBye;
  if (name == "CANCEL") return Method::kCancel;
  if (name == "REGISTER") return Method::kRegister;
  if (name == "OPTIONS") return Method::kOptions;
  if (name == "MESSAGE") return Method::kMessage;
  if (name == "INFO") return Method::kInfo;
  return Method::kUnknown;
}

SipMessage SipMessage::request(Method method, SipUri request_uri) {
  SipMessage m;
  m.is_request_ = true;
  m.method_ = method;
  m.method_text_ = std::string(method_name(method));
  m.request_uri_ = std::move(request_uri);
  return m;
}

SipMessage SipMessage::response(int status_code, std::string reason) {
  SipMessage m;
  m.is_request_ = false;
  m.status_code_ = status_code;
  m.reason_ = std::move(reason);
  return m;
}

Result<SipMessage> SipMessage::parse(std::span<const uint8_t> bytes) {
  return parse(std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

namespace {

/// Pop one header line, honoring RFC 2822-style folding (continuation lines
/// begin with whitespace). Unfolded lines — the overwhelming common case —
/// are returned as a view into the input; only a folded line is assembled
/// into `fold_buf` (the returned view then points at the buffer).
std::optional<std::string_view> next_logical_line(std::string_view& text,
                                                  std::string& fold_buf) {
  if (text.empty()) return std::nullopt;
  std::string_view first;
  {
    size_t eol = str::find_crlf(text);
    if (eol == std::string_view::npos) {
      first = text;
      text = {};
    } else {
      first = text.substr(0, eol);
      text.remove_prefix(eol + 2);
    }
  }
  if (text.empty() || (text.front() != ' ' && text.front() != '\t')) {
    return first;  // zero-copy fast path
  }
  fold_buf.assign(first);
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    size_t eol = str::find_crlf(text);
    std::string_view raw;
    if (eol == std::string_view::npos) {
      raw = text;
      text = {};
    } else {
      raw = text.substr(0, eol);
      text.remove_prefix(eol + 2);
    }
    fold_buf += raw;
  }
  return std::string_view(fold_buf);
}

}  // namespace

Result<SipMessage> SipMessage::parse(std::string_view text) {
  SipMessage msg;
  std::string fold_buf;

  auto start = next_logical_line(text, fold_buf);
  if (!start || start->empty()) return Error{Errc::kMalformed, "missing start line"};

  if (str::istarts_with(*start, "SIP/2.0 ")) {
    // Status line: SIP/2.0 code reason
    msg.is_request_ = false;
    std::string_view rest = start->substr(8);
    auto sp = str::split_once(rest, ' ');
    std::string_view code_text = sp ? sp->first : rest;
    auto code = str::parse_u32(str::trim(code_text));
    if (!code || *code < 100 || *code > 699)
      return Error{Errc::kMalformed, "bad status code"};
    msg.status_code_ = static_cast<int>(*code);
    msg.reason_ = sp ? std::string(str::trim(sp->second)) : "";
  } else {
    // Request line: METHOD uri SIP/2.0
    auto parts = str::split(*start, ' ');
    if (parts.size() != 3) return Error{Errc::kMalformed, "request line needs 3 tokens"};
    if (parts[2] != "SIP/2.0") return Error{Errc::kUnsupported, "not SIP/2.0"};
    if (parts[0].empty()) return Error{Errc::kMalformed, "empty method"};
    msg.method_text_ = std::string(parts[0]);
    msg.method_ = method_from_name(parts[0]);
    auto uri = SipUri::parse(parts[1]);
    if (!uri) return uri.error();
    msg.request_uri_ = std::move(uri.value());
  }

  // Headers until the empty line.
  while (true) {
    auto line = next_logical_line(text, fold_buf);
    if (!line) return Error{Errc::kTruncated, "no end of headers"};
    if (line->empty()) break;
    auto colon = str::split_once(*line, ':');
    if (!colon) return Error{Errc::kMalformed, "header without colon: " + std::string(*line)};
    std::string_view name = str::trim(colon->first);
    if (name.empty()) return Error{Errc::kMalformed, "empty header name"};
    msg.headers_.add(std::string(name), std::string(str::trim(colon->second)));
  }

  // Body: take Content-Length if present and valid, else the rest.
  if (auto cl_text = msg.headers_.get("Content-Length")) {
    auto cl = str::parse_u64(str::trim(*cl_text));
    if (!cl) return Error{Errc::kMalformed, "bad Content-Length"};
    if (*cl > text.size()) return Error{Errc::kTruncated, "body shorter than Content-Length"};
    msg.body_ = std::string(text.substr(0, *cl));
  } else {
    msg.body_ = std::string(text);
  }
  return msg;
}

std::string SipMessage::to_string() const {
  std::string out;
  if (is_request_) {
    out += method_text_.empty() ? std::string(method_name(method_)) : method_text_;
    out += ' ';
    out += request_uri_.to_string();
    out += " SIP/2.0\r\n";
  } else {
    out += str::format("SIP/2.0 %d %s\r\n", status_code_, reason_.c_str());
  }
  bool wrote_content_length = false;
  for (const auto& f : headers_.fields()) {
    if (str::iequals(canonical_header_name(f.name), "Content-Length")) {
      if (wrote_content_length) continue;
      out += str::format("Content-Length: %zu\r\n", body_.size());
      wrote_content_length = true;
      continue;
    }
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  if (!wrote_content_length) out += str::format("Content-Length: %zu\r\n", body_.size());
  out += "\r\n";
  out += body_;
  return out;
}

void SipMessage::set_body(std::string body, std::string content_type) {
  body_ = std::move(body);
  headers_.set("Content-Type", std::move(content_type));
}

std::optional<std::string> SipMessage::call_id() const {
  auto v = headers_.get("Call-ID");
  if (!v) return std::nullopt;
  return std::string(str::trim(*v));
}

Result<CSeq> SipMessage::cseq() const {
  auto v = headers_.get("CSeq");
  if (!v) return Error{Errc::kNotFound, "no CSeq"};
  return CSeq::parse(*v);
}

Result<NameAddr> SipMessage::from() const {
  auto v = headers_.get("From");
  if (!v) return Error{Errc::kNotFound, "no From"};
  return NameAddr::parse(*v);
}

Result<NameAddr> SipMessage::to() const {
  auto v = headers_.get("To");
  if (!v) return Error{Errc::kNotFound, "no To"};
  return NameAddr::parse(*v);
}

Result<NameAddr> SipMessage::contact() const {
  auto v = headers_.get("Contact");
  if (!v) return Error{Errc::kNotFound, "no Contact"};
  return NameAddr::parse(*v);
}

Result<Via> SipMessage::top_via() const {
  auto v = headers_.get("Via");
  if (!v) return Error{Errc::kNotFound, "no Via"};
  // Multiple Vias may be comma-joined in one field; the top one is first.
  std::string_view text = *v;
  if (auto comma = str::split_once(text, ',')) text = comma->first;
  return Via::parse(text);
}

std::optional<uint32_t> SipMessage::expires() const {
  auto v = headers_.get("Expires");
  if (!v) return std::nullopt;
  return str::parse_u32(str::trim(*v));
}

std::optional<uint32_t> SipMessage::max_forwards() const {
  auto v = headers_.get("Max-Forwards");
  if (!v) return std::nullopt;
  return str::parse_u32(str::trim(*v));
}

bool SipMessage::well_formed() const {
  // RFC 3261 §8.1.1: To, From, CSeq, Call-ID, Via are mandatory (we relax
  // Max-Forwards, which many 2004 clients omitted).
  if (!call_id().has_value()) return false;
  if (!cseq().ok()) return false;
  if (!from().ok()) return false;
  if (!to().ok()) return false;
  if (!top_via().ok()) return false;
  if (is_request_) {
    auto cs = cseq();
    // CSeq method must match the request method.
    if (cs.value().method != (method_text_.empty() ? std::string(method_name(method_))
                                                   : method_text_))
      return false;
  }
  return true;
}

}  // namespace scidive::sip
