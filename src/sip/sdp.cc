#include "sip/sdp.h"

#include "common/strings.h"

namespace scidive::sip {

Result<Sdp> Sdp::parse(std::string_view text) {
  Sdp sdp;
  bool saw_version = false;
  for (auto raw_line : str::split(text, '\n')) {
    std::string_view line = str::trim(raw_line);
    if (line.empty()) continue;
    if (line.size() < 2 || line[1] != '=')
      return Error{Errc::kMalformed, "SDP line without '='"};
    char type = line[0];
    std::string_view value = line.substr(2);
    switch (type) {
      case 'v':
        if (str::trim(value) != "0") return Error{Errc::kUnsupported, "SDP version != 0"};
        saw_version = true;
        break;
      case 'o': {
        // o=<user> <sess-id> <sess-version> IN IP4 <addr>
        auto parts = str::split(value, ' ');
        if (parts.size() < 6) return Error{Errc::kMalformed, "short o= line"};
        sdp.origin_user = std::string(parts[0]);
        auto sid = str::parse_u64(parts[1]);
        auto sver = str::parse_u64(parts[2]);
        if (!sid || !sver) return Error{Errc::kMalformed, "bad o= ids"};
        sdp.session_id = *sid;
        sdp.session_version = *sver;
        sdp.origin_addr = std::string(parts[5]);
        break;
      }
      case 's':
        sdp.session_name = std::string(value);
        break;
      case 'c': {
        // c=IN IP4 <addr>
        auto parts = str::split(value, ' ');
        if (parts.size() != 3 || parts[0] != "IN" || parts[1] != "IP4")
          return Error{Errc::kMalformed, "unsupported c= line"};
        sdp.connection_addr = std::string(parts[2]);
        break;
      }
      case 'm': {
        // m=audio <port> RTP/AVP <pt...>
        auto parts = str::split(value, ' ');
        if (parts.size() < 3) return Error{Errc::kMalformed, "short m= line"};
        SdpMedia m;
        m.type = std::string(parts[0]);
        auto port = str::parse_u16(parts[1]);
        if (!port) return Error{Errc::kMalformed, "bad m= port"};
        m.port = *port;
        m.proto = std::string(parts[2]);
        for (size_t i = 3; i < parts.size(); ++i) {
          auto pt = str::parse_u32(parts[i]);
          if (!pt || *pt > 127) return Error{Errc::kMalformed, "bad payload type"};
          m.payload_types.push_back(static_cast<uint8_t>(*pt));
        }
        sdp.media.push_back(std::move(m));
        break;
      }
      default:
        break;  // a=, t=, b= etc.: tolerated, ignored
    }
  }
  if (!saw_version) return Error{Errc::kMalformed, "missing v=0"};
  return sdp;
}

std::string Sdp::to_string() const {
  std::string out;
  out += "v=0\r\n";
  out += str::format("o=%s %llu %llu IN IP4 %s\r\n", origin_user.c_str(),
                     static_cast<unsigned long long>(session_id),
                     static_cast<unsigned long long>(session_version), origin_addr.c_str());
  out += "s=" + session_name + "\r\n";
  if (!connection_addr.empty()) out += "c=IN IP4 " + connection_addr + "\r\n";
  out += "t=0 0\r\n";
  for (const auto& m : media) {
    out += str::format("m=%s %u %s", m.type.c_str(), m.port, m.proto.c_str());
    for (uint8_t pt : m.payload_types) out += str::format(" %u", pt);
    out += "\r\n";
  }
  return out;
}

Sdp make_audio_sdp(std::string addr, uint16_t rtp_port, uint64_t session_id, uint64_t version) {
  Sdp sdp;
  sdp.session_id = session_id;
  sdp.session_version = version;
  sdp.origin_addr = addr;
  sdp.connection_addr = std::move(addr);
  SdpMedia m;
  m.port = rtp_port;
  m.payload_types = {0};  // PCMU
  sdp.media.push_back(std::move(m));
  return sdp;
}

}  // namespace scidive::sip
