#include "sip/transaction.h"

#include "common/logging.h"
#include "common/strings.h"

namespace scidive::sip {

std::string TransactionManager::make_branch() {
  return str::format("z9hG4bK-%llu-%llu", static_cast<unsigned long long>(next_branch_++),
                     static_cast<unsigned long long>(env_.now ? env_.now() : 0));
}

std::string TransactionManager::client_key(const SipMessage& msg) {
  auto via = msg.top_via();
  std::string branch = via.ok() && via.value().branch() ? *via.value().branch() : "nobranch";
  auto cs = msg.cseq();
  std::string method = cs.ok() ? cs.value().method : "nomethod";
  // ACK completes an INVITE transaction client-side; match on INVITE.
  if (method == "ACK") method = "INVITE";
  return branch + "|" + method;
}

std::string TransactionManager::server_key(const SipMessage& msg) {
  auto via = msg.top_via();
  std::string branch = via.ok() && via.value().branch() ? *via.value().branch() : "nobranch";
  std::string method = msg.is_request() ? msg.method_text() : "rsp";
  return branch + "|" + method;
}

void TransactionManager::send_request(SipMessage request, pkt::Endpoint dst,
                                      ResponseHandler on_response) {
  auto tx = std::make_shared<ClientTx>();
  tx->request = std::move(request);
  tx->dst = dst;
  tx->on_response = std::move(on_response);
  tx->started = env_.now();
  std::string key = client_key(tx->request);
  clients_[key] = tx;
  env_.send_message(tx->request, dst);
  arm_retransmit(key);
}

void TransactionManager::arm_retransmit(const std::string& key) {
  auto it = clients_.find(key);
  if (it == clients_.end()) return;
  std::shared_ptr<ClientTx> tx = it->second;
  env_.schedule(tx->interval, [this, key, tx] {
    if (tx->done) return;
    auto it2 = clients_.find(key);
    if (it2 == clients_.end() || it2->second != tx) return;
    if (env_.now() - tx->started >= kTimerB) {
      tx->done = true;
      clients_.erase(key);
      ++timeouts_;
      ClientResult result;
      result.timed_out = true;
      if (tx->on_response) tx->on_response(result);
      return;
    }
    env_.send_message(tx->request, tx->dst);
    ++retransmissions_sent_;
    tx->interval = std::min<SimDuration>(tx->interval * 2, sec(4));
    arm_retransmit(key);
  });
}

void TransactionManager::on_message(const SipMessage& msg, pkt::Endpoint from) {
  if (msg.is_response()) {
    auto it = clients_.find(client_key(msg));
    if (it == clients_.end()) {
      if (stray_response_handler_) {
        stray_response_handler_(msg, from);
      } else {
        LOG_DEBUG("sip.tx", "stray response %d dropped", msg.status_code());
      }
      return;
    }
    std::shared_ptr<ClientTx> tx = it->second;
    ClientResult result;
    result.response = msg;
    result.peer = from;
    if (status_class(msg.status_code()) == 1) {
      // Provisional: report, keep the transaction alive (retransmission of
      // the request stops per RFC once a provisional arrives; we keep the
      // simpler behaviour of continuing slow retransmits).
      if (tx->on_response) tx->on_response(result);
      return;
    }
    tx->done = true;
    clients_.erase(it);
    if (tx->on_response) tx->on_response(result);
    return;
  }

  // Request path.
  if (msg.method() == Method::kAck) {
    // ACK for 2xx is its own end-to-end message: deliver directly.
    if (request_handler_) request_handler_(msg, from);
    return;
  }
  std::string key = server_key(msg);
  auto [it, inserted] = servers_.try_emplace(key);
  if (!inserted) {
    // Retransmission: replay last response if we have one.
    if (it->second.last_response) {
      env_.send_message(*it->second.last_response, it->second.peer);
      ++retransmissions_sent_;
    }
    return;
  }
  it->second.peer = from;
  it->second.created = env_.now();
  if (request_handler_) request_handler_(msg, from);
}

void TransactionManager::respond(const SipMessage& request, SipMessage response,
                                 pkt::Endpoint to) {
  std::string key = server_key(request);
  auto it = servers_.find(key);
  if (it == servers_.end()) {
    // Stateless respond (e.g. responding to a request we chose not to track).
    env_.send_message(response, to);
    return;
  }
  it->second.last_response = response;
  it->second.peer = to;
  env_.send_message(response, to);
}

SipMessage TransactionManager::make_response_for(const SipMessage& request, int code,
                                                 std::string reason) {
  SipMessage rsp = SipMessage::response(code, std::move(reason));
  for (const char* h : {"Via", "From", "To", "Call-ID", "CSeq"}) {
    for (auto v : request.headers().get_all(h)) rsp.headers().add(h, std::string(v));
  }
  return rsp;
}

void TransactionManager::gc() {
  SimTime cutoff = env_.now() - kTimerB;
  for (auto it = servers_.begin(); it != servers_.end();) {
    if (it->second.created < cutoff)
      it = servers_.erase(it);
    else
      ++it;
  }
}

}  // namespace scidive::sip
