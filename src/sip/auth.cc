#include "sip/auth.h"

#include "common/md5.h"
#include "common/strings.h"

namespace scidive::sip {
namespace {

std::string quote(std::string_view s) { return "\"" + std::string(s) + "\""; }

/// Parse `Digest key="value", key2="value2", ...` into a map.
Result<std::map<std::string, std::string, std::less<>>> parse_digest_params(
    std::string_view header_value) {
  header_value = str::trim(header_value);
  if (!str::istarts_with(header_value, "Digest"))
    return Error{Errc::kUnsupported, "not a Digest header"};
  header_value.remove_prefix(6);

  std::map<std::string, std::string, std::less<>> params;
  for (auto part : str::split(header_value, ',')) {
    part = str::trim(part);
    if (part.empty()) continue;
    auto eq = str::split_once(part, '=');
    if (!eq) return Error{Errc::kMalformed, "digest param without '='"};
    std::string_view key = str::trim(eq->first);
    std::string_view value = str::trim(eq->second);
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
      value = value.substr(1, value.size() - 2);
    if (key.empty()) return Error{Errc::kMalformed, "empty digest param name"};
    params[str::to_lower(key)] = std::string(value);
  }
  return params;
}

}  // namespace

std::string DigestChallenge::to_header_value() const {
  return "Digest realm=" + quote(realm) + ", nonce=" + quote(nonce) + ", algorithm=MD5";
}

Result<DigestChallenge> DigestChallenge::parse(std::string_view header_value) {
  auto params = parse_digest_params(header_value);
  if (!params) return params.error();
  DigestChallenge c;
  auto realm = params.value().find("realm");
  auto nonce = params.value().find("nonce");
  if (realm == params.value().end() || nonce == params.value().end())
    return Error{Errc::kMalformed, "challenge needs realm and nonce"};
  c.realm = realm->second;
  c.nonce = nonce->second;
  return c;
}

std::string DigestCredentials::to_header_value() const {
  return "Digest username=" + quote(username) + ", realm=" + quote(realm) + ", nonce=" +
         quote(nonce) + ", uri=" + quote(uri) + ", response=" + quote(response);
}

Result<DigestCredentials> DigestCredentials::parse(std::string_view header_value) {
  auto params = parse_digest_params(header_value);
  if (!params) return params.error();
  DigestCredentials c;
  const auto& p = params.value();
  for (const char* required : {"username", "realm", "nonce", "uri", "response"}) {
    if (!p.contains(required))
      return Error{Errc::kMalformed, std::string("credentials missing ") + required};
  }
  c.username = p.find("username")->second;
  c.realm = p.find("realm")->second;
  c.nonce = p.find("nonce")->second;
  c.uri = p.find("uri")->second;
  c.response = p.find("response")->second;
  return c;
}

std::string compute_digest_response(std::string_view username, std::string_view realm,
                                    std::string_view password, std::string_view method,
                                    std::string_view uri, std::string_view nonce) {
  std::string ha1 = Md5::hex(std::string(username) + ":" + std::string(realm) + ":" +
                             std::string(password));
  std::string ha2 = Md5::hex(std::string(method) + ":" + std::string(uri));
  return Md5::hex(ha1 + ":" + std::string(nonce) + ":" + ha2);
}

DigestCredentials answer_challenge(const DigestChallenge& challenge, std::string_view username,
                                   std::string_view password, std::string_view method,
                                   std::string_view uri) {
  DigestCredentials c;
  c.username = std::string(username);
  c.realm = challenge.realm;
  c.nonce = challenge.nonce;
  c.uri = std::string(uri);
  c.response = compute_digest_response(username, challenge.realm, password, method, uri,
                                       challenge.nonce);
  return c;
}

bool verify_digest(const DigestCredentials& creds, std::string_view password,
                   std::string_view method) {
  std::string expected = compute_digest_response(creds.username, creds.realm, password, method,
                                                 creds.uri, creds.nonce);
  return expected == creds.response;
}

}  // namespace scidive::sip
