#include "sip/headers.h"

#include <algorithm>

#include "common/strings.h"

namespace scidive::sip {

std::string_view canonical_header_name(std::string_view name) {
  // RFC 3261 §7.3.3 compact forms (the subset this stack emits/accepts).
  if (name.size() == 1) {
    switch (std::tolower(static_cast<unsigned char>(name[0]))) {
      case 'v': return "Via";
      case 'f': return "From";
      case 't': return "To";
      case 'i': return "Call-ID";
      case 'm': return "Contact";
      case 'c': return "Content-Type";
      case 'l': return "Content-Length";
      case 'e': return "Content-Encoding";
      case 's': return "Subject";
      case 'k': return "Supported";
      default: break;
    }
  }
  return name;
}

namespace {
bool header_name_equals(std::string_view a, std::string_view b) {
  return str::iequals(canonical_header_name(a), canonical_header_name(b));
}
}  // namespace

void Headers::add(std::string name, std::string value) {
  fields_.push_back({std::move(name), std::move(value)});
}

void Headers::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

void Headers::remove(std::string_view name) {
  std::erase_if(fields_, [&](const HeaderField& f) { return header_name_equals(f.name, name); });
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (header_name_equals(f.name, name)) return std::string_view(f.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> Headers::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_) {
    if (header_name_equals(f.name, name)) out.push_back(f.value);
  }
  return out;
}

// --- NameAddr ---

Result<NameAddr> NameAddr::parse(std::string_view text) {
  text = str::trim(text);
  NameAddr na;
  std::string_view uri_part;
  std::string_view after_uri;

  size_t lt = text.find('<');
  if (lt != std::string_view::npos) {
    size_t gt = text.find('>', lt);
    if (gt == std::string_view::npos) return Error{Errc::kMalformed, "unterminated <uri>"};
    std::string_view display = str::trim(text.substr(0, lt));
    if (display.size() >= 2 && display.front() == '"' && display.back() == '"')
      display = display.substr(1, display.size() - 2);
    na.display_name = std::string(display);
    uri_part = text.substr(lt + 1, gt - lt - 1);
    after_uri = text.substr(gt + 1);
  } else {
    // addr-spec form: URI up to the first ';' is the URI, the rest are
    // header params (per RFC 3261, params after a bare addr-spec belong to
    // the header, not the URI).
    if (auto semi = str::split_once(text, ';')) {
      uri_part = semi->first;
      after_uri = text.substr(semi->first.size());
    } else {
      uri_part = text;
    }
  }

  auto uri = SipUri::parse(uri_part);
  if (!uri) return uri.error();
  na.uri = std::move(uri.value());

  for (auto p : str::split(after_uri, ';')) {
    p = str::trim(p);
    if (p.empty()) continue;
    if (auto eq = str::split_once(p, '=')) {
      na.params[std::string(str::trim(eq->first))] = std::string(str::trim(eq->second));
    } else {
      na.params[std::string(p)] = "";
    }
  }
  return na;
}

std::string NameAddr::to_string() const {
  std::string out;
  if (!display_name.empty()) {
    out += '"';
    out += display_name;
    out += "\" ";
  }
  out += '<';
  out += uri.to_string();
  out += '>';
  for (const auto& [k, v] : params) {
    out += ';';
    out += k;
    if (!v.empty()) {
      out += '=';
      out += v;
    }
  }
  return out;
}

// --- Via ---

Result<Via> Via::parse(std::string_view text) {
  text = str::trim(text);
  // SIP/2.0/UDP host[:port][;params]
  if (!str::istarts_with(text, "SIP/2.0/"))
    return Error{Errc::kMalformed, "Via must start with SIP/2.0/"};
  text.remove_prefix(8);
  auto sp = text.find(' ');
  if (sp == std::string_view::npos) return Error{Errc::kMalformed, "Via missing sent-by"};
  Via via;
  via.transport = std::string(str::trim(text.substr(0, sp)));
  std::string_view rest = str::trim(text.substr(sp + 1));

  std::string_view hostport = rest;
  std::string_view params;
  if (auto semi = str::split_once(rest, ';')) {
    hostport = str::trim(semi->first);
    params = semi->second;
  }
  if (auto colon = str::split_once(hostport, ':')) {
    auto port = str::parse_u16(colon->second);
    if (!port) return Error{Errc::kMalformed, "Via bad port"};
    via.port = *port;
    hostport = colon->first;
  }
  if (hostport.empty()) return Error{Errc::kMalformed, "Via empty host"};
  via.host = std::string(hostport);

  for (auto p : str::split(params, ';')) {
    p = str::trim(p);
    if (p.empty()) continue;
    if (auto eq = str::split_once(p, '=')) {
      via.params[std::string(eq->first)] = std::string(eq->second);
    } else {
      via.params[std::string(p)] = "";
    }
  }
  return via;
}

std::string Via::to_string() const {
  std::string out = "SIP/2.0/" + transport + " " + host;
  if (port != 0) out += str::format(":%u", port);
  for (const auto& [k, v] : params) {
    out += ';';
    out += k;
    if (!v.empty()) {
      out += '=';
      out += v;
    }
  }
  return out;
}

// --- CSeq ---

Result<CSeq> CSeq::parse(std::string_view text) {
  text = str::trim(text);
  auto sp = str::split_once(text, ' ');
  if (!sp) return Error{Errc::kMalformed, "CSeq needs 'number METHOD'"};
  auto num = str::parse_u32(str::trim(sp->first));
  if (!num) return Error{Errc::kMalformed, "CSeq bad number"};
  std::string_view method = str::trim(sp->second);
  if (method.empty()) return Error{Errc::kMalformed, "CSeq empty method"};
  return CSeq{*num, std::string(method)};
}

std::string CSeq::to_string() const { return str::format("%u %s", number, method.c_str()); }

}  // namespace scidive::sip
