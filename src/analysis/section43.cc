#include "analysis/section43.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace scidive::analysis {
namespace {

/// E[g(X)] for X ~ model. Point masses are evaluated directly; continuous
/// distributions use composite Simpson on [support_min, support_max].
template <typename Fn>
double expect(const DelayModel& model, Fn&& g) {
  if (model.kind() == DelayKind::kFixed) return g(static_cast<double>(model.a()));

  double lo;
  switch (model.kind()) {
    case DelayKind::kUniform:
    case DelayKind::kExponential:
      lo = static_cast<double>(model.a());
      break;
    case DelayKind::kNormal:
      lo = std::max(0.0, static_cast<double>(model.a()) - 5.0 * static_cast<double>(model.b()));
      break;
    default:
      lo = 0.0;
  }
  double hi = model.support_max();
  if (hi <= lo) return g(lo);

  constexpr int kSteps = 4000;  // even
  double h = (hi - lo) / kSteps;
  double sum = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    double x = lo + i * h;
    double w = (i == 0 || i == kSteps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += w * model.pdf(x) * g(x);
  }
  return sum * h / 3.0;
}

}  // namespace

double Section43Model::expected_detection_delay() const {
  return static_cast<double>(rtp_period) + n_rtp.mean() - g_sip.mean() - n_sip.mean();
}

double Section43Model::detection_delay_variance() const {
  return n_rtp.variance() + g_sip.variance() + n_sip.variance();
}

double Section43Model::missed_alarm_probability(SimDuration m) const {
  // P_m = E_{g,s}[ 1 - F_rtp(m - P + g + s) ]
  double period = static_cast<double>(rtp_period);
  double window = static_cast<double>(m);
  double p = expect(g_sip, [&](double g) {
    return expect(n_sip, [&](double s) {
      double x = window - period + g + s;
      return 1.0 - n_rtp.cdf(x);
    });
  });
  return std::clamp(p, 0.0, 1.0);
}

double Section43Model::false_alarm_probability(SimDuration m) const {
  // P_f = E_{Nsip}[ F_rtp(s + m) - F_rtp(s) ]   (continuous tie-break: a
  // fixed identical delay means the RTP packet never strictly trails the
  // BYE, so P_f = 0 for equal Fixed models).
  double window = static_cast<double>(m);
  double p = expect(n_sip, [&](double s) {
    return n_rtp.cdf(s + window) - n_rtp.cdf(s);
  });
  return std::clamp(p, 0.0, 1.0);
}

Section43Model::AttackTrialStats Section43Model::simulate_attack(int trials, SimDuration m,
                                                                 Rng& rng) const {
  AttackTrialStats out;
  std::vector<double> delays;
  delays.reserve(static_cast<size_t>(trials));
  int64_t missed = 0;

  for (int t = 0; t < trials; ++t) {
    double tsip = static_cast<double>(g_sip.sample(rng)) + static_cast<double>(n_sip.sample(rng));
    double horizon = tsip + static_cast<double>(m);
    bool detected = false;
    // Consider every RTP packet whose departure could land in the window.
    int max_k = static_cast<int>(horizon / static_cast<double>(rtp_period)) + 2;
    for (int k = 1; k <= max_k && !detected; ++k) {
      if (loss > 0 && rng.chance(loss)) continue;  // lost in the network
      double arrival =
          k * static_cast<double>(rtp_period) + static_cast<double>(n_rtp.sample(rng));
      if (arrival > tsip && arrival <= horizon) {
        delays.push_back(arrival - tsip);
        detected = true;
      }
    }
    if (!detected) ++missed;
  }

  out.missed_probability = static_cast<double>(missed) / trials;
  out.detection_probability = 1.0 - out.missed_probability;
  if (!delays.empty()) {
    double sum = 0;
    for (double d : delays) sum += d;
    out.mean_delay = sum / static_cast<double>(delays.size());
    std::sort(delays.begin(), delays.end());
    out.p50_delay = delays[delays.size() / 2];
    out.p99_delay = delays[static_cast<size_t>(static_cast<double>(delays.size()) * 0.99)];
  }
  return out;
}

double Section43Model::simulate_false_alarm(int trials, SimDuration m, Rng& rng) const {
  int64_t alarms = 0;
  for (int t = 0; t < trials; ++t) {
    double rtp_arrival = static_cast<double>(n_rtp.sample(rng));
    double bye_arrival = static_cast<double>(n_sip.sample(rng));
    if (bye_arrival < rtp_arrival && rtp_arrival <= bye_arrival + static_cast<double>(m))
      ++alarms;
  }
  return static_cast<double>(alarms) / trials;
}

}  // namespace scidive::analysis
