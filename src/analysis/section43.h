// The analytical performance model of paper §4.3 for the BYE / Call-Hijack
// rules, plus Monte-Carlo estimators that relax its idealizations.
//
// Timeline (paper Figure in §4.3.1, all relative to the last RTP packet's
// departure at t = 0):
//   - the sender emits RTP every `rtp_period` (paper: 20 ms);
//   - the attacker's fake BYE departs at G_sip ~ given distribution over
//     (0, rtp_period) and arrives at T_sip = G_sip + N_sip;
//   - RTP packet k departs at k * rtp_period and arrives at
//     k * rtp_period + N_rtp,k (iid), each lost independently w.p. `loss`;
//   - the IDS watches for orphan RTP for `m` after T_sip.
//
// Closed forms (paper's single-next-packet idealization, no loss):
//   D   = rtp_period + N_rtp - G_sip - N_sip          (detection delay)
//   E[D] = rtp_period + E[N_rtp] - E[G_sip] - E[N_sip]
//          -> 10 ms for G_sip ~ U(0,20ms) and iid network delays
//   P_m = Pr{ D > m }
//   P_f = Pr{ T_sip < T_rtp <= T_sip + m } for a legit BYE sent at the same
//         instant as the last RTP packet (reordering-induced false alarm):
//         integral of f_sip(s) * [F_rtp(s+m) - F_rtp(s)] ds
//
// Note on the paper's algebra: the printed expression
// "D = 20 + Nrtp − (Gsip − Nsip)" is inconsistent with its own
// T_sip = G_sip + N_sip definition and with the stated E[D] = 10 ms result;
// we use D = 20 + Nrtp − Gsip − Nsip, which reproduces E[D] = 10 ms.
#pragma once

#include "common/clock.h"
#include "common/rng.h"

namespace scidive::analysis {

struct Section43Model {
  SimDuration rtp_period = msec(20);
  DelayModel g_sip = DelayModel::uniform(0, msec(20));  // attack departure offset
  DelayModel n_rtp = DelayModel::fixed(msec(1));
  DelayModel n_sip = DelayModel::fixed(msec(1));
  double loss = 0.0;  // RTP loss probability (Monte Carlo only)

  // --- closed forms (paper idealization: only the next RTP packet counts) ---

  /// E[D] in microseconds.
  double expected_detection_delay() const;

  /// Var[D] in microseconds²: the model's terms are independent, so
  /// Var(D) = Var(N_rtp) + Var(G_sip) + Var(N_sip).
  double detection_delay_variance() const;

  /// P_m(m): probability the next RTP packet misses the monitoring window.
  /// Numeric integration over G_sip, N_sip, N_rtp.
  double missed_alarm_probability(SimDuration m) const;

  /// P_f(m): probability a legitimate BYE (sent together with the final RTP
  /// packet) is overtaken by that packet within the window.
  double false_alarm_probability(SimDuration m) const;

  // --- Monte Carlo (full model: every subsequent packet, loss) ---

  struct AttackTrialStats {
    double detection_probability = 0;  // 1 - P_m
    double missed_probability = 0;     // P_m
    double mean_delay = 0;             // E[D | detected], usec
    double p50_delay = 0;
    double p99_delay = 0;
  };
  AttackTrialStats simulate_attack(int trials, SimDuration m, Rng& rng) const;

  /// P_f via Monte Carlo (legitimate teardown; counts reordering alarms).
  double simulate_false_alarm(int trials, SimDuration m, Rng& rng) const;
};

}  // namespace scidive::analysis
