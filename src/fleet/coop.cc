#include "fleet/coop.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace scidive::fleet {

CooperativeIds::CooperativeIds(netsim::Host& host, core::EngineConfig engine_config,
                               CoopConfig coop_config)
    : host_(host),
      config_(std::move(coop_config)),
      engine_(std::move(engine_config)),
      events_shared_(engine_.metrics().counter("scidive_fleet_events_shared_total",
                                               "Events shared with peer IDS nodes")),
      events_received_(engine_.metrics().counter("scidive_fleet_events_received_total",
                                                 "Events ingested from peer IDS nodes")),
      parse_errors_(engine_.metrics().counter("scidive_fleet_parse_errors_total",
                                              "Malformed peer datagrams rejected",
                                              {{"format", "sep1"}})),
      claims_held_(engine_.metrics().counter("scidive_fleet_claims_total",
                                             "Cooperative verification outcomes",
                                             {{"outcome", "held"}})),
      claims_confirmed_(engine_.metrics().counter("scidive_fleet_claims_total",
                                                  "Cooperative verification outcomes",
                                                  {{"outcome", "confirmed"}})),
      claims_flagged_(engine_.metrics().counter("scidive_fleet_claims_total",
                                                "Cooperative verification outcomes",
                                                {{"outcome", "flagged"}})),
      claims_skipped_(engine_.metrics().counter("scidive_fleet_claims_total",
                                                "Cooperative verification outcomes",
                                                {{"outcome", "skipped_peer_down"}})) {
  engine_.set_event_callback([this](const core::Event& event) { on_local_event(event); });
  host_.bind_udp(config_.sep_port,
                 [this](pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now) {
                   on_sep_datagram(from, payload, now);
                 });
}

void CooperativeIds::add_peer(pkt::Endpoint peer_sep_endpoint) {
  peers_.push_back(peer_sep_endpoint);
}

void CooperativeIds::add_peer_user(const std::string& aor) { peer_users_.insert(aor); }

void CooperativeIds::attach_local_agent(voip::UserAgent& agent) {
  std::string aor = agent.aor();
  pkt::Endpoint source = agent.sip_endpoint();
  agent.on_im_sent = [this, aor, source](const std::string& target, const std::string&) {
    core::Event sent;
    sent.type = core::EventType::kImMessageSent;
    sent.session = "host:" + aor;
    sent.time = host_.now();
    sent.aor = aor;
    sent.endpoint = source;
    sent.detail = "genuine IM to " + target;
    share(sent);
  };
}

void CooperativeIds::share(const core::Event& event) {
  std::string line = serialize_event(config_.node_name, event);
  for (const pkt::Endpoint& peer : peers_) {
    host_.send_udp(config_.sep_port, peer, line);
  }
  if (!peers_.empty()) events_shared_.inc();
}

void CooperativeIds::on_local_event(const core::Event& event) {
  if (config_.shared_types.contains(event.type)) share(event);

  if (event.type == core::EventType::kImMessageSeen && peer_users_.contains(event.aor)) {
    // Hold the message for the peer's vouching; judge after the delay.
    claims_held_.inc();
    core::Event held = event;
    host_.after(config_.verify_delay, [this, held] { verify_im(held); });
  }
}

bool CooperativeIds::peer_vouched(const std::string& aor, SimTime around) const {
  for (const RemoteEvent& remote : remote_events_) {
    if (remote.event.type != core::EventType::kImMessageSent) continue;
    if (remote.event.aor != aor) continue;
    if (std::abs(remote.event.time - around) <= config_.match_window) return true;
  }
  return false;
}

void CooperativeIds::verify_im(core::Event im_event) {
  if (peer_vouched(im_event.aor, im_event.time)) {
    claims_confirmed_.inc();
    return;
  }
  // Fail-open when the control channel is silent: a down peer IDS must not
  // convert every genuine message into an alarm.
  if (config_.peer_liveness_window > 0 &&
      (last_peer_heard_ < 0 ||
       host_.now() - last_peer_heard_ > config_.peer_liveness_window)) {
    claims_skipped_.inc();
    return;
  }
  claims_flagged_.inc();
  engine_.alerts().raise(core::Alert{
      kCoopFakeImRule, core::Severity::kCritical, im_event.session, host_.now(),
      str::format("IM claiming %s from %s was never vouched by %s's own IDS — forged "
                  "message (source-IP spoofing does not evade this check)",
                  im_event.aor.c_str(), im_event.endpoint.to_string().c_str(),
                  im_event.aor.c_str())});
}

void CooperativeIds::on_sep_datagram(pkt::Endpoint from, std::span<const uint8_t> payload,
                                     SimTime now) {
  (void)from;
  std::string_view text(reinterpret_cast<const char*>(payload.data()), payload.size());
  auto parsed = parse_event(text);
  if (!parsed) {
    parse_errors_.inc();
    LOG_DEBUG("coop", "%s: bad SEP datagram: %s", config_.node_name.c_str(),
              parsed.error().to_string().c_str());
    return;
  }
  RemoteEvent remote = std::move(parsed.value());
  remote.received_at = now;
  remote_events_.push_back(std::move(remote));
  last_peer_heard_ = now;
  events_received_.inc();
  if (remote_events_.size() > config_.remote_buffer_max) remote_events_.pop_front();
}

CoopStats CooperativeIds::coop_stats() const {
  CoopStats out;
  out.events_shared = events_shared_.value();
  out.events_received = events_received_.value();
  out.parse_errors = parse_errors_.value();
  out.verifications = claims_held_.value();
  out.confirmed_legit = claims_confirmed_.value();
  out.flagged_forged = claims_flagged_.value();
  out.skipped_peer_down = claims_skipped_.value();
  return out;
}

}  // namespace scidive::fleet
