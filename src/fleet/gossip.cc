#include "fleet/gossip.h"

namespace scidive::fleet {

GossipQueue::GossipQueue(std::string node, uint64_t epoch, GossipConfig config)
    : config_(config), encoder_(std::move(node), epoch) {
  if (config_.max_queue_records == 0) config_.max_queue_records = 1;
  if (config_.max_batch_records == 0) config_.max_batch_records = 1;
}

bool GossipQueue::offer(SepRecord record) {
  if (queue_.size() >= config_.max_queue_records) {
    ++stats_.records_dropped;
    return false;
  }
  queue_.push_back(std::move(record));
  ++stats_.records_enqueued;
  return true;
}

Bytes GossipQueue::take_frame() {
  if (queue_.empty()) return {};
  const size_t n = std::min(queue_.size(), config_.max_batch_records);
  for (size_t i = 0; i < n; ++i) {
    std::visit(
        [&](const auto& rec) {
          using T = std::decay_t<decltype(rec)>;
          if constexpr (std::is_same_v<T, core::Event>) {
            encoder_.add_event(rec);
          } else if constexpr (std::is_same_v<T, SepVerdict>) {
            encoder_.add_verdict(rec);
          } else if constexpr (std::is_same_v<T, SepCounter>) {
            encoder_.add_counter(rec);
          } else if constexpr (std::is_same_v<T, SepVouch>) {
            encoder_.add_vouch(rec);
          } else {
            encoder_.add_handoff(rec);
          }
        },
        queue_.front());
    queue_.pop_front();
  }
  Bytes frame = encoder_.finish(config_.compress);
  ++stats_.frames_built;
  stats_.bytes_built += frame.size();
  return frame;
}

Bytes encode_hello(const std::string& node, uint64_t epoch) {
  SepEncoder enc(node, epoch);
  enc.add_hello();
  return enc.finish(/*compress=*/false);
}

}  // namespace scidive::fleet
