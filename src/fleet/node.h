// FleetNode: one member of a cooperative SCIDIVE cluster. Wraps a full
// (optionally sharded) local engine with the fleet control plane:
//
//   * per-shard event capture — each worker appends its own events to a
//     private buffer; pump() drains them at a flush-quiesce point;
//   * gossip egress — shared events, verdicts, vouches and correlator
//     partials batch into per-peer bounded GossipQueues (SEP-v2 frames);
//   * gossip intake — on_datagram() strictly decodes untrusted frames
//     (counted parse errors by format) into an inbox that pump() applies
//     at the next quiesce point, never concurrently with the workers;
//   * verdict adoption — a peer's non-pass verdict is applied through the
//     local enforcer, so a principal blocked on node A is screened here;
//   * vouch-held claims — incoming IM/BYE/re-INVITE claiming a peer-homed
//     user is held for verify_delay; absent the owning host's vouch, the
//     claim is judged forged (spoofed source attribution, §4.2.2/§6);
//   * fleet-wide correlation — FleetCorrelator partials advance on local
//     REGISTER/auth-failure events and merge from peers; the ring owner of
//     a key (injected via set_owner_check) alerts once fleet-wide.
//
// Threading: the engine's workers run free; everything else (on_datagram,
// pump, take_frames) belongs to one control thread — the fleet harness or
// the netsim simulation thread — which is also the only packet feeder.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fleet/correlate.h"
#include "fleet/gossip.h"
#include "fleet/sep_wire.h"
#include "scidive/sharded_engine.h"
#include "voip/user_agent.h"

namespace scidive::fleet {

struct FleetNodeConfig {
  std::string name = "node-0";
  /// Incarnation, bumped on restart — lets peers spot a reborn node whose
  /// cumulative counters restarted from zero.
  uint64_t epoch = 1;
  /// The local engine. Its home-address scope is cleared — the fleet
  /// dispatcher filters once at fleet level; num_shards is this node's
  /// worker count.
  core::ShardedEngineConfig engine;
  /// Event types worth the control-channel bandwidth (§6: "a challenge is
  /// to design the appropriate protocol that does not overwhelm the system
  /// with control messages").
  std::set<core::EventType> shared_types = {core::EventType::kRtpAfterBye,
                                            core::EventType::kRtpAfterReinvite};
  /// How long a claim naming a peer-homed user is held for that host's
  /// vouch before being judged forged.
  SimDuration verify_delay = msec(300);
  /// Vouch/claim times closer than this are "the same" action.
  SimDuration match_window = sec(1);
  /// Fail-open: when no peer has been heard from within this window, held
  /// claims are skipped (counted) rather than flagged — a dead peer IDS
  /// must not turn every genuine hangup into an alarm. 0 = fail-closed.
  SimDuration peer_liveness_window = sec(30);
  GossipConfig gossip;
  CorrelatorConfig correlator;
  size_t remote_buffer_max = 4096;
};

/// Control-plane counters (view; mirrored into the metrics registry).
struct FleetNodeStats {
  uint64_t events_shared = 0;
  uint64_t events_received = 0;
  uint64_t frames_received = 0;
  uint64_t parse_errors_sep2 = 0;
  uint64_t parse_errors_sep1 = 0;
  uint64_t legacy_frames = 0;     // SEP1 compat decodes (deprecation meter)
  uint64_t unknown_records = 0;   // forward-compat skips
  uint64_t verdicts_shared = 0;
  uint64_t verdicts_adopted = 0;
  uint64_t vouches_sent = 0;
  uint64_t vouches_received = 0;
  uint64_t counters_shared = 0;
  uint64_t counters_merged = 0;
  uint64_t handoffs_announced = 0;
  uint64_t handoffs_heard = 0;
  uint64_t claims_held = 0;
  uint64_t claims_confirmed = 0;
  uint64_t claims_flagged = 0;
  uint64_t claims_skipped_peer_down = 0;
  uint64_t gossip_records_dropped = 0;  // summed over peer queues
  uint64_t gossip_frames_built = 0;
  uint64_t gossip_bytes_built = 0;
};

/// One record heard from a peer (bounded trace for tests and debugging).
struct RemoteRecord {
  std::string from;
  SepRecord record;
};

class FleetNode {
 public:
  explicit FleetNode(FleetNodeConfig config);

  const std::string& name() const { return config_.name; }
  uint64_t epoch() const { return config_.epoch; }
  core::ShardedEngine& engine() { return engine_; }
  const core::ShardedEngine& engine() const { return engine_; }

  /// Full-mesh membership. Adding creates this peer's gossip queue.
  void add_peer(const std::string& name);
  void remove_peer(const std::string& name);
  std::vector<std::string> peers() const;

  /// Declare that `aor` is homed at a peer (claims naming it verify
  /// cooperatively against that host's vouches).
  void add_peer_user(const std::string& aor);

  /// This node vouches for a co-located client: genuine IMs, hangups and
  /// media migrations gossip as host-truth vouch records.
  void attach_local_agent(voip::UserAgent& agent);

  /// Pre-routed ingestion from the fleet dispatcher (slot -> worker shard
  /// is slot mod workers). Single feeder thread, like a producer.
  void on_packet_to_slot(size_t slot, pkt::Packet&& packet) {
    engine_.on_packet_to_shard(slot, std::move(packet));
  }

  /// One raw SEP datagram from a peer (untrusted). Decodes strictly and
  /// stages the records; application happens in pump().
  void on_datagram(std::span<const uint8_t> payload, SimTime now);

  /// Quiesce the engine, drain its outputs into gossip, apply staged peer
  /// records, judge expired held claims, run the correlator. The heart of
  /// the control plane; call from the single control thread.
  void pump(SimTime now);

  /// Drain one built frame per peer with queued records. Call repeatedly
  /// (frames are batched) until empty.
  std::vector<std::pair<std::string, Bytes>> take_frames();
  bool gossip_pending() const;
  /// A liveness heartbeat frame for every peer.
  std::vector<std::pair<std::string, Bytes>> hello_frames() const;

  /// Announce an ownership transfer this node just performed (the state
  /// itself rode SessionTransfer in-process; this is the wire-visible half).
  void announce_handoff(const SepHandoff& handoff) {
    ++stats_.handoffs_announced;
    broadcast(SepRecord{handoff});
  }

  /// Who coordinates a correlation key — wired to FleetRing::owner_of_key
  /// by the harness. Default: self owns everything (single node).
  void set_owner_check(std::function<bool(std::string_view)> is_owner) {
    is_owner_ = std::move(is_owner);
  }

  FleetNodeStats stats() const;
  const FleetCorrelator& correlator() const { return correlator_; }
  const std::deque<RemoteRecord>& remote_records() const { return remote_records_; }
  SimTime last_peer_heard() const { return last_peer_heard_; }

  /// Engine metrics plus the fleet control-plane instruments (flushes).
  obs::Snapshot metrics_snapshot();

  static constexpr const char* kFleetFakeImRule = "fleet-fake-im";
  static constexpr const char* kFleetSpoofedByeRule = "fleet-spoofed-bye";
  static constexpr const char* kFleetSpoofedReinviteRule = "fleet-spoofed-reinvite";

 private:
  struct HeldClaim {
    VouchKind kind;
    std::string key;
    core::Event event;
    SimTime deadline;
  };

  void on_engine_outputs(SimTime now);  // post-flush: events + verdicts
  void apply_inbox(SimTime now);
  void judge_held(SimTime now);
  void broadcast(const SepRecord& record);
  void hold_claim(VouchKind kind, std::string key, const core::Event& event);
  bool peer_live(SimTime now) const;
  void sync_metrics();

  FleetNodeConfig config_;
  core::ShardedEngine engine_;
  std::vector<std::unique_ptr<GossipQueue>> peer_queues_;
  std::vector<std::string> peer_names_;
  std::set<std::string> peer_users_;
  FleetCorrelator correlator_;
  VouchStore vouches_;
  std::function<bool(std::string_view)> is_owner_;

  /// Worker-written, pump-drained (flush() is the memory barrier).
  std::vector<std::vector<core::Event>> event_buffers_;
  std::vector<size_t> verdict_cursors_;

  /// Records decoded from peers, staged until the next quiesce point.
  std::vector<std::pair<std::string, SepRecord>> inbox_;
  std::deque<HeldClaim> held_;
  std::map<std::string, SimTime> peer_heard_;
  SimTime last_peer_heard_ = -1;
  std::deque<RemoteRecord> remote_records_;
  FleetNodeStats stats_;
};

}  // namespace scidive::fleet
