// FleetRing: deterministic assignment of the session space to fleet nodes.
//
// The session space is first cut into a fixed number of virtual slots —
// every routing key (Call-ID, From-AOR, media endpoint, CDR call-id…)
// hashes to one slot, and that mapping never changes. Membership then only
// decides which node owns each slot: for every slot, rendezvous (highest-
// random-weight) hashing over the member names picks the owner, so
//
//   * every node that agrees on the member set computes the identical
//     slot table, regardless of join order;
//   * a join or leave moves only the slots whose rendezvous winner changed
//     (expected slots/N), never reshuffles the rest — the property the
//     session-handoff path depends on to keep churn cheap.
//
// Node names are interned once into a SymbolTable; the slot table stores
// symbols and ownership lookups are one hash + one table index (the same
// Symbol/FlatMap layer the engines use for session ids).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/symbol.h"

namespace scidive::fleet {

constexpr size_t kDefaultSlots = 64;

class FleetRing {
 public:
  explicit FleetRing(size_t num_slots = kDefaultSlots);

  /// Add/remove a member. Either recomputes the slot table. Names are
  /// limited to 64 bytes (the SEP frame header bound). Returns false when
  /// the membership did not change (already present / absent).
  bool add_node(std::string_view name);
  bool remove_node(std::string_view name);

  size_t num_slots() const { return slot_owner_.size(); }
  size_t size() const { return members_.size(); }
  bool contains(std::string_view name) const;
  /// Member names, sorted (the canonical membership view all nodes agree
  /// on).
  std::vector<std::string> members() const;

  /// Slot for a routing-key hash. Membership-independent: safe to cache,
  /// learn media bindings against, and compare across nodes.
  size_t slot_of_hash(uint64_t key_hash) const;
  size_t slot_of_key(std::string_view key) const;

  /// Owning node of a slot / key. Empty when the ring has no members.
  std::string_view owner_of_slot(size_t slot) const;
  std::string_view owner_of_key(std::string_view key) const;

  /// Slots `name` currently owns.
  std::vector<size_t> slots_of(std::string_view name) const;

  /// Slots whose owner differs between two rings over the same slot count
  /// (the handoff set for a membership change).
  static std::vector<size_t> moved_slots(const FleetRing& before, const FleetRing& after);

 private:
  void rebuild();

  SymbolTable names_;
  std::vector<Symbol> members_;              // sorted by name
  std::vector<std::optional<Symbol>> slot_owner_;
};

}  // namespace scidive::fleet
