// Netsim transport for fleet gossip: one UdpGossipLink binds a FleetNode
// to a simulated Host, carrying SEP-v2 frames as real UDP datagrams on
// kFleetPort — so gossip rides the same network the attacks do, including
// netsim's FaultConfig loss/duplication/delay. A self-rescheduling tick
// pumps the node (quiesce, drain, judge) and flushes its gossip queues;
// liveness heartbeats ride every tick.
//
// The channel is deliberately unauthenticated, as 2004-era control
// channels were (the paper's own trust assumption); a deployment would
// wrap it in an authenticated transport. The decoder treats every peer
// datagram as untrusted regardless.
#pragma once

#include <map>
#include <string>

#include "fleet/node.h"
#include "netsim/host.h"

namespace scidive::fleet {

class UdpGossipLink {
 public:
  UdpGossipLink(netsim::Host& host, FleetNode& node, SimDuration pump_interval = msec(50))
      : host_(host), node_(node), interval_(pump_interval <= 0 ? msec(50) : pump_interval) {}

  /// Where a peer's SEP endpoint lives on the simulated network.
  void add_peer(const std::string& name, pkt::Endpoint endpoint) {
    peers_[name] = endpoint;
  }

  /// Bind the SEP port and start the pump tick.
  void start();
  /// Unbind and stop rescheduling (the link can be restarted).
  void stop();

  /// One pump round now: quiesce the node, send its frames and heartbeats.
  void tick();

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }
  bool running() const { return running_; }

 private:
  void schedule();
  void send_all();

  netsim::Host& host_;
  FleetNode& node_;
  SimDuration interval_;
  std::map<std::string, pkt::Endpoint> peers_;
  bool running_ = false;
  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
};

}  // namespace scidive::fleet
