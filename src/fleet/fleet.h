// Fleet: an in-process N-node SCIDIVE cluster with deterministic gossip.
//
// Session space is carved into virtual slots: one fleet-level ShardRouter
// (the same session-affinity keys as a node's own front-end, over
// FleetRing::kDefaultSlots shards) maps every packet to a slot, and the
// rendezvous-hashed ring maps slots to nodes. The key -> slot mapping is
// membership-independent, so learned media bindings and pinned call-ids
// survive churn; join/leave only reassigns the slots whose rendezvous
// winner changed (expected slots/N), and exactly those sessions ride
// SessionTransfer to their new owner.
//
// The harness owns transport: frames drain between engine quiesce points,
// optionally through a seeded loss gate (counted drops). flush() pumps
// gossip to a fixpoint and then settles vouch-held claims, so post-flush
// the union alert multiset is a deterministic function of the packet
// sequence — the property the fleet differential oracle pins across node
// counts. The netsim UDP transport (udp_transport.h) replaces this
// harness's delivery loop with real simulated datagrams.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fleet/node.h"
#include "fleet/ring.h"

namespace scidive::fleet {

struct FleetConfig {
  /// Virtual slots (ownership granularity). More slots = smoother balance
  /// and finer-grained churn movement.
  size_t num_slots = kDefaultSlots;
  /// Fleet-level home scope; member nodes run with an empty scope so the
  /// filter is paid once at dispatch.
  std::set<pkt::Ipv4Address> home_addresses;
  /// Template for every member (name and epoch are set per node).
  FleetNodeConfig node;
  /// Streaming gossip cadence: pump every member and deliver built frames
  /// after this many dispatched packets.
  size_t pump_every_packets = 1024;
  /// Seeded frame loss on the gossip channel (0 = lossless). Lossy runs
  /// trade alerts for counted drops — the oracle relaxes accordingly.
  double gossip_loss = 0.0;
  uint64_t loss_seed = 1;
};

struct FleetStats {
  uint64_t packets_seen = 0;
  uint64_t packets_filtered = 0;  // outside the fleet home scope
  uint64_t fragments_held = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_lost = 0;       // seeded gossip-loss gate
  uint64_t sessions_handed_off = 0;
  uint64_t handoff_skipped_synthetic = 0;  // flow:/anon sessions stay put
  uint64_t handoff_skipped_invalid = 0;    // extract/install refused
  /// Engine-level packet totals of departed members (leave or crash), kept
  /// so the seen == filtered + held + node-seen identity survives churn.
  uint64_t retired_engine_seen = 0;
  uint64_t retired_engine_dropped = 0;
};

class Fleet {
 public:
  Fleet(FleetConfig config, std::vector<std::string> node_names);

  /// Dispatch one packet: fleet home filter, slot routing, owner delivery.
  /// Single feeder thread, like a ShardedEngine producer.
  void on_packet(const pkt::Packet& packet);
  netsim::PacketTap tap() {
    return [this](const pkt::Packet& packet) { on_packet(packet); };
  }

  /// Feed a source to exhaustion, then flush(). Returns packets fed.
  uint64_t run(capture::PacketSource& source);

  /// Pump gossip to a fixpoint and settle held claims. Post-flush, member
  /// engines and the union alert/verdict multisets are safe to read.
  void flush();
  /// One streaming pump round (each member pumps once, frames deliver once).
  void pump_now();

  /// Membership churn. add/remove hand the moved slots' sessions off to
  /// their new owners; crash loses the node's state (peers fail open).
  bool add_node(const std::string& name);
  bool remove_node(const std::string& name);
  bool crash_node(const std::string& name);

  size_t size() const { return nodes_.size(); }
  FleetNode* node(const std::string& name);
  FleetNode& node_at(size_t i) { return *nodes_[i]; }
  const FleetRing& ring() const { return ring_; }
  const core::ShardRouter& router() const { return router_; }

  /// Union across members, deterministic order (call after flush()).
  std::vector<core::Alert> merged_alerts() const;
  std::vector<core::Verdict> merged_verdicts() const;

  FleetStats stats() const { return stats_; }
  /// Control-plane stats summed over members.
  FleetNodeStats node_stats() const;

  /// Every member's instruments with a node="name" label (exposition).
  obs::Snapshot metrics_rollup();
  /// Every member's instruments summed (cross-topology comparisons).
  obs::Snapshot merged_metrics();

 private:
  std::unique_ptr<FleetNode> make_node(const std::string& name);
  void rebuild_slot_cache();
  size_t deliver_frames(SimTime now);
  void deliver_hellos(SimTime now);
  void deliver(const std::string& to, const Bytes& frame, SimTime now);
  FleetNode* find(const std::string& name);
  size_t slot_of_session(const core::SessionId& session) const;
  /// Move every non-synthetic session sitting on a node the ring no longer
  /// assigns its slot to. Requires all members flushed.
  void relocate_moved_sessions();
  /// Fold a departing member's history into the fleet before it is erased:
  /// alerts and verdicts already raised are facts (an operator's sink has
  /// them), and the engine/control-plane counters must keep the fleet's
  /// accounting identities intact across churn.
  void retire_node(FleetNode& node);

  FleetConfig config_;
  FleetRing ring_;
  core::ShardDirectory directory_;  // slot-level media/override routing state
  core::ShardRouter router_;
  std::vector<std::unique_ptr<FleetNode>> nodes_;
  std::vector<FleetNode*> slot_node_;  // slot -> owner (cache of ring state)
  Rng rng_;
  uint64_t packets_since_pump_ = 0;
  SimTime last_time_ = 0;
  FleetStats stats_;
  /// History of departed members (see retire_node).
  std::vector<core::Alert> retired_alerts_;
  std::vector<core::Verdict> retired_verdicts_;
  obs::Snapshot retired_metrics_;  // summed, unlabeled (merged_metrics)
  obs::Snapshot retired_rollup_;   // node="name"-tagged (metrics_rollup)
  FleetNodeStats retired_node_stats_;
};

}  // namespace scidive::fleet
