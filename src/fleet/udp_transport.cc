#include "fleet/udp_transport.h"

namespace scidive::fleet {

void UdpGossipLink::start() {
  if (running_) return;
  running_ = true;
  host_.bind_udp(kFleetPort,
                 [this](pkt::Endpoint, std::span<const uint8_t> payload, SimTime now) {
                   ++frames_received_;
                   node_.on_datagram(payload, now);
                 });
  schedule();
}

void UdpGossipLink::stop() {
  if (!running_) return;
  running_ = false;
  host_.unbind_udp(kFleetPort);
}

void UdpGossipLink::schedule() {
  host_.after(interval_, [this] {
    if (!running_) return;
    tick();
    schedule();
  });
}

void UdpGossipLink::tick() {
  node_.pump(host_.now());
  send_all();
  // Heartbeats keep peers' liveness windows fed even when idle, so
  // fail-open never triggers against a healthy-but-quiet node.
  for (const auto& [name, endpoint] : peers_) {
    host_.send_udp(kFleetPort, endpoint, encode_hello(node_.name(), node_.epoch()));
    ++frames_sent_;
  }
}

void UdpGossipLink::send_all() {
  // Queues batch many records per frame; drain until empty this tick.
  for (int spin = 0; spin < 1024; ++spin) {
    auto frames = node_.take_frames();
    if (frames.empty()) break;
    for (auto& [to, frame] : frames) {
      auto it = peers_.find(to);
      if (it == peers_.end()) continue;
      host_.send_udp(kFleetPort, it->second, frame);
      ++frames_sent_;
    }
  }
}

}  // namespace scidive::fleet
