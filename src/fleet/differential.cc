#include "fleet/differential.h"

#include <map>
#include <tuple>

#include "common/strings.h"

namespace scidive::fleet {
namespace {

using AlertMultiset = std::map<std::pair<std::string, std::string>, size_t>;

AlertMultiset alert_multiset(const std::vector<core::Alert>& alerts) {
  AlertMultiset out;
  for (const core::Alert& a : alerts) ++out[{a.rule, a.session}];
  return out;
}

using VerdictMultiset = std::map<std::tuple<std::string, std::string, int>, size_t>;

VerdictMultiset verdict_multiset(const std::vector<core::Verdict>& verdicts) {
  VerdictMultiset out;
  for (const core::Verdict& v : verdicts) ++out[{v.rule, v.session, static_cast<int>(v.action)}];
  return out;
}

/// Same detection-side families the single-vs-sharded oracle compares.
/// Fleet control-plane families (scidive_fleet_*, scidive_frontend_*,
/// ring gauges) scale with topology by design and are out of scope.
bool comparable_sample(const obs::Sample& s) {
  if (s.kind != obs::InstrumentKind::kCounter) return false;
  if (s.name != "scidive_events_total" && s.name != "scidive_events_by_type_total" &&
      s.name != "scidive_alerts_total" && s.name != "scidive_rule_alerts_total" &&
      s.name != "scidive_rule_events_total" && s.name != "scidive_parse_errors_total")
    return false;
  if (s.name == "scidive_parse_errors_total") {
    for (const auto& [k, v] : s.labels) {
      if (k == "proto" && v == "ipv4") return false;  // reassembly placement
    }
  }
  return true;
}

std::string label_string(const obs::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    out += k + "=" + v;
  }
  return out;
}

void compare_alerts(const AlertMultiset& baseline, const AlertMultiset& fleet,
                    const std::string& tag, std::vector<std::string>& mismatches) {
  if (fleet == baseline) return;
  for (const auto& [key, n] : baseline) {
    auto it = fleet.find(key);
    const size_t have = it == fleet.end() ? 0 : it->second;
    if (have != n) {
      mismatches.push_back(str::format("%s: alert (%s, %s) x%zu, baseline has x%zu",
                                       tag.c_str(), key.first.c_str(), key.second.c_str(),
                                       have, n));
    }
  }
  for (const auto& [key, n] : fleet) {
    if (baseline.find(key) == baseline.end()) {
      mismatches.push_back(str::format("%s: extra alert (%s, %s) x%zu not in baseline",
                                       tag.c_str(), key.first.c_str(), key.second.c_str(), n));
    }
  }
}

void compare_verdicts(const VerdictMultiset& baseline, const VerdictMultiset& fleet,
                      const std::string& tag, std::vector<std::string>& mismatches) {
  if (fleet == baseline) return;
  for (const auto& [key, n] : baseline) {
    auto it = fleet.find(key);
    const size_t have = it == fleet.end() ? 0 : it->second;
    if (have != n) {
      mismatches.push_back(str::format(
          "%s: verdict (%s, %s, %s) x%zu, baseline has x%zu", tag.c_str(),
          std::get<0>(key).c_str(), std::get<1>(key).c_str(),
          std::string(core::verdict_action_name(
                          static_cast<core::VerdictAction>(std::get<2>(key))))
              .c_str(),
          have, n));
    }
  }
  for (const auto& [key, n] : fleet) {
    if (baseline.find(key) == baseline.end()) {
      mismatches.push_back(str::format(
          "%s: extra verdict (%s, %s, %s) x%zu not in baseline", tag.c_str(),
          std::get<0>(key).c_str(), std::get<1>(key).c_str(),
          std::string(core::verdict_action_name(
                          static_cast<core::VerdictAction>(std::get<2>(key))))
              .c_str(),
          n));
    }
  }
}

void compare_metrics(const obs::Snapshot& baseline, const obs::Snapshot& fleet,
                     const std::string& tag, std::vector<std::string>& mismatches) {
  for (const obs::Sample& s : baseline.samples()) {
    if (!comparable_sample(s)) continue;
    const uint64_t other = fleet.counter_value(s.name, s.labels);
    if (other != s.counter) {
      mismatches.push_back(str::format(
          "%s: %s{%s} = %llu, baseline = %llu", tag.c_str(), s.name.c_str(),
          label_string(s.labels).c_str(), static_cast<unsigned long long>(other),
          static_cast<unsigned long long>(s.counter)));
    }
  }
  for (const obs::Sample& s : fleet.samples()) {
    if (!comparable_sample(s) || s.counter == 0) continue;
    if (baseline.find(s.name, s.labels) == nullptr) {
      mismatches.push_back(str::format("%s: %s{%s} = %llu, absent from baseline",
                                       tag.c_str(), s.name.c_str(),
                                       label_string(s.labels).c_str(),
                                       static_cast<unsigned long long>(s.counter)));
    }
  }
}

}  // namespace

std::string FleetDifferentialReport::to_string() const {
  if (ok()) {
    return str::format("fleet differential oracle OK: %zu packets, %zu alerts", packets,
                       baseline_alerts);
  }
  std::string out =
      str::format("fleet differential oracle FAILED (%zu mismatches):", mismatches.size());
  for (const std::string& m : mismatches) {
    out += "\n  ";
    out += m;
  }
  return out;
}

FleetDifferentialReport run_fleet_differential(const std::vector<pkt::Packet>& stream,
                                               const FleetDifferentialConfig& config) {
  FleetDifferentialReport report;
  report.packets = stream.size();

  core::EngineConfig engine_config = config.engine;
  engine_config.obs.time_stages = false;

  auto make_fleet = [&](size_t nodes, size_t workers) {
    FleetConfig fc;
    fc.num_slots = config.num_slots;
    fc.home_addresses = engine_config.home_addresses;
    fc.node.engine.engine = engine_config;
    fc.node.engine.num_shards = workers;
    fc.node.engine.route_invite_by_caller = config.verdict_mode;
    fc.pump_every_packets = config.pump_every_packets;
    fc.gossip_loss = config.gossip_loss;
    fc.loss_seed = config.loss_seed;
    std::vector<std::string> names;
    names.reserve(nodes);
    for (size_t i = 0; i < nodes; ++i) names.push_back(str::format("node-%zu", i));
    auto fleet = std::make_unique<Fleet>(fc, names);
    if (config.make_rules) {
      for (size_t i = 0; i < fleet->size(); ++i) {
        fleet->node_at(i).engine().set_rules([&](size_t) { return config.make_rules(); });
      }
    }
    return fleet;
  };

  auto replay = [&](Fleet& fleet, bool churn) {
    size_t fed = 0;
    for (const pkt::Packet& packet : stream) {
      fleet.on_packet(packet);
      ++fed;
      if (churn && config.join_at != 0 && fed == config.join_at) {
        fleet.add_node("joiner");
        if (config.make_rules) {
          fleet.node("joiner")->engine().set_rules([&](size_t) { return config.make_rules(); });
        }
      }
      if (churn && config.leave_at > config.join_at && fed == config.leave_at) {
        fleet.remove_node("node-0");
      }
    }
    fleet.flush();
  };

  // Baseline: one node, one worker — the fleet-shaped equivalent of a
  // single engine (the single-vs-sharded oracle covers that reduction).
  auto baseline = make_fleet(1, 1);
  replay(*baseline, /*churn=*/false);
  const AlertMultiset baseline_alerts = alert_multiset(baseline->merged_alerts());
  const VerdictMultiset baseline_verdicts =
      config.verdict_mode ? verdict_multiset(baseline->merged_verdicts()) : VerdictMultiset{};
  const obs::Snapshot baseline_metrics = baseline->merged_metrics();
  report.baseline_alerts = baseline->merged_alerts().size();
  report.baseline_verdicts = baseline->merged_verdicts().size();

  const bool churn_requested = config.join_at != 0 || config.leave_at != 0;
  for (size_t workers : config.workers_per_node) {
    for (size_t nodes : config.node_counts) {
      const bool churn = churn_requested && nodes > 1;
      const std::string tag =
          str::format("%zu nodes x %zu workers%s", nodes, workers, churn ? " (churn)" : "");
      auto fleet = make_fleet(nodes, workers);
      replay(*fleet, churn);

      const FleetStats fs = fleet->stats();
      report.sessions_handed_off += fs.sessions_handed_off;
      if (fs.packets_seen != stream.size()) {
        report.mismatches.push_back(
            str::format("%s: dispatcher saw %llu of %zu packets", tag.c_str(),
                        static_cast<unsigned long long>(fs.packets_seen), stream.size()));
      }
      // Fleet accounting identity: every packet offered is filtered, held
      // as an incomplete fragment, or seen by exactly one node's front-end
      // (which in turn enforces its own seen == dropped + shard-seen).
      uint64_t node_seen = fs.retired_engine_seen, node_dropped = fs.retired_engine_dropped;
      for (size_t i = 0; i < fleet->size(); ++i) {
        const core::ShardedEngineStats ns = fleet->node_at(i).engine().stats();
        node_seen += ns.packets_seen;
        node_dropped += ns.packets_dropped;
      }
      const uint64_t held = fleet->router().stats().fragments_held;
      if (fs.packets_seen != fs.packets_filtered + held + node_seen) {
        report.mismatches.push_back(str::format(
            "%s: accounting identity broken: seen=%llu filtered=%llu held=%llu "
            "node-seen=%llu",
            tag.c_str(), static_cast<unsigned long long>(fs.packets_seen),
            static_cast<unsigned long long>(fs.packets_filtered),
            static_cast<unsigned long long>(held),
            static_cast<unsigned long long>(node_seen)));
      }

      // Loss (gossip frames or ring drops) legitimately trades alerts for
      // counted drops; the strict comparisons only apply to lossless runs.
      const uint64_t gossip_dropped = fleet->node_stats().gossip_records_dropped;
      if (config.gossip_loss > 0 || fs.frames_lost != 0 || gossip_dropped != 0 ||
          node_dropped != 0)
        continue;

      compare_alerts(baseline_alerts, alert_multiset(fleet->merged_alerts()), tag,
                     report.mismatches);
      if (config.verdict_mode) {
        compare_verdicts(baseline_verdicts, verdict_multiset(fleet->merged_verdicts()), tag,
                         report.mismatches);
      }
      compare_metrics(baseline_metrics, fleet->merged_metrics(), tag, report.mismatches);
    }
  }
  return report;
}

}  // namespace scidive::fleet
