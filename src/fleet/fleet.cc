#include "fleet/fleet.h"

#include <algorithm>

#include "pkt/ipv4.h"

namespace scidive::fleet {

namespace {

/// Engine-synthesized session ids (shared anonymous buckets, flow-hash
/// fallbacks): their slot is not derivable from the id, and every node
/// synthesizes its own — they never hand off (counted as skipped).
bool is_synthetic_session(const core::SessionId& session) {
  static constexpr std::string_view kPrefixes[] = {
      "flow:", "sip-anon", "acc-anon", "h225-anon", "ras-anon", "ras-reg:", "unclassified"};
  for (std::string_view prefix : kPrefixes) {
    if (session.starts_with(prefix)) return true;
  }
  return false;
}

void accumulate(FleetNodeStats& out, const FleetNodeStats& s) {
  out.events_shared += s.events_shared;
  out.events_received += s.events_received;
  out.frames_received += s.frames_received;
  out.parse_errors_sep2 += s.parse_errors_sep2;
  out.parse_errors_sep1 += s.parse_errors_sep1;
  out.legacy_frames += s.legacy_frames;
  out.unknown_records += s.unknown_records;
  out.verdicts_shared += s.verdicts_shared;
  out.verdicts_adopted += s.verdicts_adopted;
  out.vouches_sent += s.vouches_sent;
  out.vouches_received += s.vouches_received;
  out.counters_shared += s.counters_shared;
  out.counters_merged += s.counters_merged;
  out.handoffs_announced += s.handoffs_announced;
  out.handoffs_heard += s.handoffs_heard;
  out.claims_held += s.claims_held;
  out.claims_confirmed += s.claims_confirmed;
  out.claims_flagged += s.claims_flagged;
  out.claims_skipped_peer_down += s.claims_skipped_peer_down;
  out.gossip_records_dropped += s.gossip_records_dropped;
  out.gossip_frames_built += s.gossip_frames_built;
  out.gossip_bytes_built += s.gossip_bytes_built;
}

void add_node_tagged(obs::Snapshot& out, const obs::Snapshot& snap, const std::string& name) {
  for (const obs::Sample& sample : snap.samples()) {
    obs::Sample tagged = sample;
    auto pos = std::lower_bound(
        tagged.labels.begin(), tagged.labels.end(), std::string_view("node"),
        [](const auto& label, std::string_view key) { return label.first < key; });
    tagged.labels.insert(pos, {"node", name});
    out.add(std::move(tagged));
  }
}

core::ShardRouterConfig dispatcher_router_config(const FleetConfig& config) {
  core::ShardRouterConfig rc;
  rc.num_shards = config.num_slots == 0 ? 1 : config.num_slots;
  rc.route_invite_by_caller = config.node.engine.route_invite_by_caller;
  // Every principal-routed call-id gets an override so churn handoff can
  // recover its slot from the session id alone.
  rc.pin_principal_call_ids = true;
  return rc;
}

}  // namespace

Fleet::Fleet(FleetConfig config, std::vector<std::string> node_names)
    : config_(std::move(config)),
      ring_(config_.num_slots == 0 ? 1 : config_.num_slots),
      directory_(ring_.num_slots()),
      router_(dispatcher_router_config(config_), &directory_),
      rng_(config_.loss_seed) {
  config_.num_slots = ring_.num_slots();
  for (const std::string& name : node_names) ring_.add_node(name);
  for (const std::string& name : node_names) {
    if (ring_.contains(name)) nodes_.push_back(make_node(name));
  }
  for (auto& a : nodes_) {
    for (auto& b : nodes_) {
      if (a != b) a->add_peer(b->name());
    }
  }
  rebuild_slot_cache();
}

std::unique_ptr<FleetNode> Fleet::make_node(const std::string& name) {
  FleetNodeConfig nc = config_.node;
  nc.name = name;
  auto node = std::make_unique<FleetNode>(std::move(nc));
  node->set_owner_check(
      [this, name](std::string_view key) { return ring_.owner_of_key(key) == name; });
  return node;
}

void Fleet::rebuild_slot_cache() {
  slot_node_.assign(ring_.num_slots(), nullptr);
  for (size_t slot = 0; slot < ring_.num_slots(); ++slot) {
    const std::string_view owner = ring_.owner_of_slot(slot);
    for (auto& node : nodes_) {
      if (node->name() == owner) {
        slot_node_[slot] = node.get();
        break;
      }
    }
  }
}

FleetNode* Fleet::find(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

FleetNode* Fleet::node(const std::string& name) { return find(name); }

void Fleet::on_packet(const pkt::Packet& packet) {
  ++stats_.packets_seen;
  if (packet.timestamp > last_time_) last_time_ = packet.timestamp;
  if (!config_.home_addresses.empty()) {
    auto ip = pkt::parse_ipv4(packet.data);
    const bool ours = ip.ok() && (config_.home_addresses.contains(ip.value().header.src) ||
                                  config_.home_addresses.contains(ip.value().header.dst));
    if (!ours) {
      ++stats_.packets_filtered;
      return;
    }
  }
  auto routed = router_.route(packet);
  if (!routed) {
    ++stats_.fragments_held;
    return;
  }
  FleetNode* owner = slot_node_[routed->shard % slot_node_.size()];
  if (owner == nullptr) return;  // no members
  if (routed->reassembled) {
    owner->on_packet_to_slot(routed->shard, std::move(*routed->reassembled));
  } else {
    pkt::Packet copy = packet;
    owner->on_packet_to_slot(routed->shard, std::move(copy));
  }
  if (config_.pump_every_packets > 0 && ++packets_since_pump_ >= config_.pump_every_packets) {
    packets_since_pump_ = 0;
    pump_now();
  }
}

uint64_t Fleet::run(capture::PacketSource& source) {
  pkt::Packet packet;
  uint64_t fed = 0;
  while (source.next(&packet)) {
    on_packet(packet);
    ++fed;
  }
  flush();
  return fed;
}

void Fleet::pump_now() {
  for (auto& node : nodes_) node->pump(last_time_);
  deliver_frames(last_time_);
}

void Fleet::flush() {
  const SimTime now = last_time_;
  deliver_hellos(now);
  // Gossip to fixpoint: each round pumps every member (draining engine
  // outputs and applying what the previous round delivered) then delivers
  // the frames that produced. Bounded — records are not re-gossiped on
  // receipt, so the fleet quiesces once queues stop refilling.
  for (int round = 0; round < 64; ++round) {
    for (auto& node : nodes_) node->pump(now);
    if (deliver_frames(now) == 0) break;
  }
  // Settle: advance past every held claim's deadline so vouch judgments
  // land, then drain anything the judgments produced.
  const SimTime settle = now + config_.node.verify_delay + config_.node.match_window + 1;
  for (auto& node : nodes_) node->pump(settle);
  deliver_frames(settle);
  for (auto& node : nodes_) node->pump(settle);
}

size_t Fleet::deliver_frames(SimTime now) {
  size_t delivered = 0;
  for (int spin = 0; spin < 1024; ++spin) {
    bool any = false;
    for (auto& node : nodes_) {
      for (auto& [to, frame] : node->take_frames()) {
        any = true;
        deliver(to, frame, now);
        ++delivered;
      }
    }
    if (!any) break;
  }
  return delivered;
}

void Fleet::deliver_hellos(SimTime now) {
  for (auto& node : nodes_) {
    for (const auto& [to, frame] : node->hello_frames()) deliver(to, frame, now);
  }
}

void Fleet::deliver(const std::string& to, const Bytes& frame, SimTime now) {
  if (config_.gossip_loss > 0 && rng_.chance(config_.gossip_loss)) {
    ++stats_.frames_lost;
    return;
  }
  if (FleetNode* target = find(to)) {
    ++stats_.frames_delivered;
    target->on_datagram(frame, now);
  }
}

size_t Fleet::slot_of_session(const core::SessionId& session) const {
  const uint64_t hash = core::ShardDirectory::key_hash(session);
  if (auto pinned = directory_.override_shard(hash)) return *pinned % ring_.num_slots();
  return core::ShardRouter::shard_of_hash(hash, ring_.num_slots());
}

void Fleet::relocate_moved_sessions() {
  struct Move {
    FleetNode* source;
    core::SessionId session;
    size_t slot;
  };
  std::vector<Move> moves;
  for (auto& source : nodes_) {
    for (size_t sh = 0; sh < source->engine().num_shards(); ++sh) {
      for (const core::SessionId& sid : source->engine().shard(sh).trails().sessions()) {
        if (is_synthetic_session(sid)) {
          ++stats_.handoff_skipped_synthetic;
          continue;
        }
        const size_t slot = slot_of_session(sid);
        if (ring_.owner_of_slot(slot) == source->name()) continue;
        moves.push_back({source.get(), sid, slot});
      }
    }
  }
  for (Move& move : moves) {
    FleetNode* target = slot_node_[move.slot];
    if (target == nullptr || target == move.source) continue;
    auto transfer = move.source->engine().extract_session(move.session);
    if (!transfer.valid) {
      ++stats_.handoff_skipped_invalid;
      continue;
    }
    if (!target->engine().install_session(std::move(transfer), move.slot)) {
      ++stats_.handoff_skipped_invalid;
      continue;
    }
    ++stats_.sessions_handed_off;
    move.source->announce_handoff({move.session, target->name(), move.slot});
  }
  deliver_frames(last_time_);
}

bool Fleet::add_node(const std::string& name) {
  if (name.empty() || find(name) != nullptr) return false;
  // Quiesce the incumbents so the moved slots' sessions are extractable.
  for (auto& node : nodes_) node->pump(last_time_);
  deliver_frames(last_time_);
  if (!ring_.add_node(name)) return false;
  auto joined = make_node(name);
  for (auto& node : nodes_) {
    node->add_peer(name);
    joined->add_peer(node->name());
  }
  nodes_.push_back(std::move(joined));
  rebuild_slot_cache();
  relocate_moved_sessions();
  return true;
}

void Fleet::retire_node(FleetNode& node) {
  // Quiesce so the merged views are safe to read; the front-end already
  // counted anything still queued, so this changes no packet accounting.
  node.engine().flush();
  for (core::Alert& alert : node.engine().merged_alerts())
    retired_alerts_.push_back(std::move(alert));
  for (core::Verdict& verdict : node.engine().merged_verdicts())
    retired_verdicts_.push_back(std::move(verdict));
  const obs::Snapshot snap = node.metrics_snapshot();
  retired_metrics_.merge(snap);
  add_node_tagged(retired_rollup_, snap, node.name());
  accumulate(retired_node_stats_, node.stats());
  const core::ShardedEngineStats es = node.engine().stats();
  stats_.retired_engine_seen += es.packets_seen;
  stats_.retired_engine_dropped += es.packets_dropped;
}

bool Fleet::remove_node(const std::string& name) {
  FleetNode* leaving = find(name);
  if (leaving == nullptr || nodes_.size() <= 1) return false;
  // Graceful leave: drain the leaver's gossip, reassign its slots, hand
  // its sessions to the new owners, then unwire it.
  for (auto& node : nodes_) node->pump(last_time_);
  deliver_frames(last_time_);
  ring_.remove_node(name);
  rebuild_slot_cache();
  relocate_moved_sessions();
  deliver_frames(last_time_);
  for (auto& node : nodes_) {
    if (node.get() != leaving) node->remove_peer(name);
  }
  retire_node(*leaving);
  std::erase_if(nodes_, [&](const auto& node) { return node.get() == leaving; });
  rebuild_slot_cache();
  return true;
}

bool Fleet::crash_node(const std::string& name) {
  FleetNode* crashed = find(name);
  if (crashed == nullptr || nodes_.size() <= 1) return false;
  // No handoff, no drain: the node's sessions and queued gossip are lost.
  // Its slots re-own deterministically; peers fail open on its users once
  // peer_liveness_window elapses without a heartbeat.
  ring_.remove_node(name);
  for (auto& node : nodes_) {
    if (node.get() != crashed) node->remove_peer(name);
  }
  // Alerts it had already raised reached the operator's sink before the
  // crash; only its session state and queued gossip are lost.
  retire_node(*crashed);
  std::erase_if(nodes_, [&](const auto& node) { return node.get() == crashed; });
  rebuild_slot_cache();
  return true;
}

std::vector<core::Alert> Fleet::merged_alerts() const {
  std::vector<core::Alert> out = retired_alerts_;
  for (const auto& node : nodes_) {
    auto alerts = node->engine().merged_alerts();
    out.insert(out.end(), std::make_move_iterator(alerts.begin()),
               std::make_move_iterator(alerts.end()));
  }
  return out;
}

std::vector<core::Verdict> Fleet::merged_verdicts() const {
  std::vector<core::Verdict> out = retired_verdicts_;
  for (const auto& node : nodes_) {
    auto verdicts = node->engine().merged_verdicts();
    out.insert(out.end(), std::make_move_iterator(verdicts.begin()),
               std::make_move_iterator(verdicts.end()));
  }
  return out;
}

FleetNodeStats Fleet::node_stats() const {
  FleetNodeStats out = retired_node_stats_;
  for (const auto& node : nodes_) accumulate(out, node->stats());
  return out;
}

obs::Snapshot Fleet::metrics_rollup() {
  obs::Snapshot out;
  out.merge(retired_rollup_);
  for (auto& node : nodes_) add_node_tagged(out, node->metrics_snapshot(), node->name());
  return out;
}

obs::Snapshot Fleet::merged_metrics() {
  obs::Snapshot out;
  out.merge(retired_metrics_);
  for (auto& node : nodes_) out.merge(node->metrics_snapshot());
  return out;
}

}  // namespace scidive::fleet
