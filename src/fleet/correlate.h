// Cross-node correlation (§4.2.2 generalized fleet-wide).
//
// FleetCorrelator aggregates attack evidence that is individually
// sub-threshold on every node: a REGISTER flood or digest-guessing run
// spread across N capture points looks like N quiet trickles until the
// per-node partial counters are merged. Each node keeps cumulative
// per-window partials keyed by SOURCE ADDRESS (not AOR — principal routing
// already concentrates one AOR's traffic on one node; what genuinely
// splits across nodes is one source hammering many identities) and gossips
// each advance. Partials merge with max(), which is idempotent under
// re-delivery and reordering, and only the ring owner of a key raises the
// alert — exactly once per (kind, key, window) fleet-wide.
//
// VouchStore holds host-based ground truth received from peers (the
// coop fake-IM vouch generalized to BYE/re-INVITE): "this client really
// performed the keyed action around time t".
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fleet/sep_wire.h"
#include "scidive/alert.h"
#include "scidive/event.h"

namespace scidive::fleet {

struct CorrelatorConfig {
  /// Fleet-wide REGISTERs from one source within one window.
  uint64_t register_flood_threshold = 20;
  SimDuration register_flood_window = sec(10);
  /// Fleet-wide auth failures from one source within one window.
  uint64_t digest_guess_threshold = 8;
  SimDuration digest_guess_window = sec(30);
  /// Windows older than this many window-lengths behind the latest
  /// activity are pruned (bounds memory; late partials for a pruned window
  /// are ignored, which at worst suppresses — never duplicates — an alert).
  size_t retain_windows = 8;
};

struct CorrelatorStats {
  uint64_t partials_updated = 0;  // local events that advanced a counter
  uint64_t partials_merged = 0;   // remote partials absorbed
  uint64_t alerts_raised = 0;
  uint64_t windows_pruned = 0;
};

inline constexpr const char* kFleetRegisterFloodRule = "fleet-register-flood";
inline constexpr const char* kFleetDigestGuessRule = "fleet-digest-guess";

class FleetCorrelator {
 public:
  explicit FleetCorrelator(std::string self_node, CorrelatorConfig config = {});

  /// Feed one locally generated engine event. When it advances a fleet
  /// counter, the updated partial (this node's cumulative count for the
  /// window) is returned for gossiping.
  std::optional<SepCounter> on_local_event(const core::Event& event);

  /// Merge a peer's partial. max() semantics: cumulative counts make
  /// duplicate and out-of-order delivery harmless.
  void on_remote_counter(std::string_view from_node, const SepCounter& counter);

  /// Threshold pass. `is_owner(key)` decides whether this node is the
  /// deterministic coordinator for a key (the fleet ring's owner); only
  /// the owner alerts, once per (kind, key, window).
  std::vector<core::Alert> evaluate(const std::function<bool(std::string_view)>& is_owner);

  const CorrelatorStats& stats() const { return stats_; }

 private:
  // (kind, key, window_start) — std::map for deterministic iteration.
  using WindowKey = std::tuple<uint8_t, std::string, SimTime>;

  SimDuration window_of(CounterKind kind) const;
  uint64_t threshold_of(CounterKind kind) const;
  void prune(CounterKind kind, SimTime latest_window);

  std::string self_;
  CorrelatorConfig config_;
  std::map<WindowKey, std::map<std::string, uint64_t, std::less<>>> partials_;
  std::set<WindowKey> alerted_;
  SimTime latest_window_[2] = {0, 0};  // per kind, for pruning
  CorrelatorStats stats_;
};

/// Peer-vouched ground truth, pruned by age.
class VouchStore {
 public:
  explicit VouchStore(SimDuration match_window, size_t max_entries = 4096)
      : match_window_(match_window), max_entries_(max_entries == 0 ? 1 : max_entries) {}

  void add(const SepVouch& vouch);
  /// Did any peer vouch this (kind, key) within match_window of `around`?
  bool vouched(VouchKind kind, std::string_view key, SimTime around) const;
  size_t size() const { return vouches_.size(); }

 private:
  SimDuration match_window_;
  size_t max_entries_;
  std::deque<SepVouch> vouches_;
};

}  // namespace scidive::fleet
