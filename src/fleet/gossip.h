// Per-peer gossip egress: a bounded queue of SEP records batched into
// SEP-v2 frames. The paper's §6 concern — "a challenge is to design the
// appropriate protocol that does not overwhelm the system with control
// messages" — is answered structurally: records are batched (amortizing the
// frame header), timestamps delta-encode, bodies run-compress, and the
// queue is bounded with counted drops instead of unbounded growth when a
// peer (or the network) cannot keep up.
#pragma once

#include <deque>
#include <string>

#include "common/bytes.h"
#include "fleet/sep_wire.h"

namespace scidive::fleet {

struct GossipConfig {
  /// Per-peer record bound. Overflow drops the NEW record (the queued
  /// backlog is older and feeds time-ordered correlation).
  size_t max_queue_records = 4096;
  /// Records per emitted frame — keeps frames inside one UDP datagram.
  size_t max_batch_records = 256;
  bool compress = true;
};

struct GossipStats {
  uint64_t records_enqueued = 0;
  uint64_t records_dropped = 0;  // bounded-queue overflow
  uint64_t frames_built = 0;
  uint64_t bytes_built = 0;
};

/// One peer's outgoing queue. Single-threaded by design (owned by the fleet
/// node's control plane, which runs between engine flushes).
class GossipQueue {
 public:
  GossipQueue(std::string node, uint64_t epoch, GossipConfig config);

  /// Queue one record for this peer. False (and counted) when full.
  bool offer(SepRecord record);

  bool empty() const { return queue_.empty(); }
  size_t depth() const { return queue_.size(); }

  /// Drain up to max_batch_records into one encoded frame. Empty when
  /// nothing is queued.
  Bytes take_frame();

  const GossipStats& stats() const { return stats_; }

 private:
  GossipConfig config_;
  SepEncoder encoder_;
  std::deque<SepRecord> queue_;
  GossipStats stats_;
};

/// A standalone liveness heartbeat frame (single kHello record).
Bytes encode_hello(const std::string& node, uint64_t epoch);

}  // namespace scidive::fleet
