// Fleet differential oracle. The fleet's contract extends the sharded
// engine's: distributing session ownership across N nodes changes *where*
// state lives and *which* control messages flow, never *what* is detected.
// For any packet stream, the union (rule, session) alert multiset of an
// N-node fleet — at any workers-per-node — must equal a 1-node fleet's,
// including runs where a node joins or leaves mid-replay (handoff
// preserves trail/event/rule state). Lossy gossip runs relax the strict
// comparisons: the lost frames are counted, never hidden.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace scidive::fleet {

struct FleetDifferentialConfig {
  std::vector<size_t> node_counts = {2, 4};
  std::vector<size_t> workers_per_node = {1, 4};
  size_t num_slots = kDefaultSlots;
  /// Per-node engine configuration. time_stages is forced off.
  core::EngineConfig engine;
  /// Optional ruleset override, applied to every shard of every node.
  std::function<std::vector<core::RulePtr>()> make_rules;
  /// Also require identical (rule, session, action) verdict multisets.
  /// Implies route_invite_by_caller (principal-keyed prevention state).
  /// Use EnforcementMode::kPassive: inline drops change detection inputs
  /// across topologies by design.
  bool verdict_mode = false;
  /// Seeded gossip-frame loss; > 0 skips the strict multiset/metric
  /// comparisons (counted drops are the contract there).
  double gossip_loss = 0.0;
  uint64_t loss_seed = 1;
  size_t pump_every_packets = 512;
  /// Churn mode: when join_at > 0, node "joiner" joins after that many
  /// packets of each multi-node run; when leave_at > join_at, the fleet's
  /// first seed node then leaves gracefully — both with session handoff.
  size_t join_at = 0;
  size_t leave_at = 0;
};

struct FleetDifferentialReport {
  size_t packets = 0;
  size_t baseline_alerts = 0;
  size_t baseline_verdicts = 0;
  uint64_t sessions_handed_off = 0;  // summed over churn runs
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string to_string() const;
};

/// Replay `stream` through a 1-node/1-worker baseline fleet and one fleet
/// per (node count x workers) combination, and compare:
///   - the union (rule, session) alert multiset (lossless runs);
///   - the union verdict multiset (verdict_mode, lossless runs);
///   - the fleet accounting identity seen == filtered + held + sum of
///     node-engine seen (always);
///   - the detection metric families summed across nodes (lossless,
///     non-churn runs; fleet/gossip control-plane families are
///     topology-dependent by design and excluded).
FleetDifferentialReport run_fleet_differential(const std::vector<pkt::Packet>& stream,
                                               const FleetDifferentialConfig& config = {});

}  // namespace scidive::fleet
