// SEP version 2: the fleet's binary event-exchange wire format, replacing
// the tab-separated SEP1 text lines (kept as a one-release compat path at
// the bottom of this header; see decode_frame_any and parse_event).
//
// A frame is one UDP datagram:
//
//   magic   "SEP2"                 (4 bytes)
//   version u8 = 2                 (unknown versions are rejected)
//   flags   u8                     (bit0: body is run-compressed)
//   name    u8 len + bytes         (sender node name, 1..64 bytes)
//   epoch   varint                 (sender's node epoch; bumps on restart)
//   count   varint                 (record count, <= kMaxRecordsPerFrame)
//   body    count records, possibly compressed as one block:
//     type  u8
//     len   varint                 (payload length; unknown types are
//                                   skipped over it — forward compatible)
//     payload                      (len bytes)
//
// Event records delta-encode their timestamps against the previous event
// record in the frame (zigzag varint), so a batch of near-simultaneous
// events costs one or two bytes of time each. Compression is a simple
// self-describing run-length scheme (see rle_compress) applied to the whole
// body when it actually shrinks it.
//
// The decoder is strict: every length is bounds-checked, string and record
// caps are enforced, trailing bytes are an error, and any failure returns a
// Result<T> diagnostic — never an exception, never a partial frame. Peers
// are other machines; their traffic is untrusted input.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "scidive/event.h"
#include "scidive/verdict.h"

namespace scidive::fleet {

constexpr uint16_t kFleetPort = 6000;  // SEP-v2 gossip (SEP1 kept 5999)
constexpr uint8_t kSepVersion = 2;

// Decoder hard limits. A frame violating any of them is malformed.
constexpr size_t kMaxNodeNameBytes = 64;
constexpr size_t kMaxRecordsPerFrame = 4096;
constexpr size_t kMaxRecordBytes = 64 * 1024;
constexpr size_t kMaxStringBytes = 4096;
constexpr size_t kMaxBodyBytes = 1024 * 1024;  // post-decompression cap

enum class SepRecordType : uint8_t {
  kEvent = 1,     // a shared engine event
  kVerdict = 2,   // verdict/graylist propagation (screen everywhere)
  kCounter = 3,   // per-node partial counter for fleet-wide aggregation
  kVouch = 4,     // host-truth vouching (IM / BYE / re-INVITE really sent)
  kHandoff = 5,   // session ownership transfer announcement
  kHello = 6,     // liveness heartbeat (empty payload)
};

enum class CounterKind : uint8_t {
  kRegisterFlood = 1,  // REGISTERs per source address, fleet-wide
  kDigestGuess = 2,    // auth failures per source address, fleet-wide
};

enum class VouchKind : uint8_t {
  kIm = 1,        // key = sender AOR
  kBye = 2,       // key = call-id
  kReinvite = 3,  // key = call-id
};

/// Per-node partial counter: "this node has seen `count` hits for `key` in
/// the tumbling window starting at `window_start`". Counts are cumulative
/// within the window, so re-delivery and reordering merge with max().
struct SepCounter {
  CounterKind kind = CounterKind::kRegisterFlood;
  std::string key;
  SimTime window_start = 0;
  uint64_t count = 0;

  bool operator==(const SepCounter&) const = default;
};

/// Host-based ground truth: the co-located client really performed the
/// keyed action around `time` (generalizes the coop fake-IM vouch to calls).
struct SepVouch {
  VouchKind kind = VouchKind::kIm;
  std::string key;
  SimTime time = 0;

  bool operator==(const SepVouch&) const = default;
};

/// Ownership-transfer announcement. The session state itself rides the
/// in-process SessionTransfer machinery (ScidiveEngine::extract_session /
/// install_session); this record is the wire-visible half peers use to
/// update their view of who owns what.
struct SepHandoff {
  std::string session;
  std::string to_node;
  uint64_t slot = 0;

  bool operator==(const SepHandoff&) const = default;
};

struct SepVerdict {
  std::string rule;
  core::VerdictAction action = core::VerdictAction::kPass;
  std::string session;
  std::string aor;
  pkt::Endpoint endpoint;
  SimTime time = 0;

  bool operator==(const SepVerdict&) const = default;
};

using SepRecord =
    std::variant<core::Event, SepVerdict, SepCounter, SepVouch, SepHandoff>;

struct SepFrame {
  std::string node;     // sender
  uint64_t epoch = 0;   // sender's incarnation
  std::vector<SepRecord> records;
  /// Records whose type byte this build does not know, skipped over their
  /// length prefix (forward compatibility; counted, never fatal).
  uint64_t unknown_skipped = 0;
  /// True when the frame was decoded from the deprecated SEP1 text format
  /// (decode_frame_any compat path).
  bool legacy_sep1 = false;
};

/// Batches records into one frame. Records are appended in call order and
/// decoded in the same order.
class SepEncoder {
 public:
  SepEncoder(std::string node, uint64_t epoch);

  void add_event(const core::Event& event);
  void add_verdict(const SepVerdict& verdict);
  void add_counter(const SepCounter& counter);
  void add_vouch(const SepVouch& vouch);
  void add_handoff(const SepHandoff& handoff);
  void add_hello();

  size_t record_count() const { return record_count_; }
  size_t body_size() const { return body_.size(); }

  /// Finish the frame. With `compress`, the body is run-compressed when
  /// that actually shrinks it (flag bit0 signals which). The encoder is
  /// reset and may be reused for the next frame.
  Bytes finish(bool compress = true);

 private:
  void record(SepRecordType type, const Bytes& payload);

  std::string node_;
  uint64_t epoch_ = 0;
  BufWriter body_;
  size_t record_count_ = 0;
  SimTime last_event_time_ = 0;  // delta base for event timestamps
};

/// Strict SEP-v2 decode. All-or-nothing: on any error the frame is
/// discarded (no partial application).
Result<SepFrame> decode_frame(std::span<const uint8_t> datagram);

/// Compat decode: SEP-v2 frames via decode_frame, deprecated SEP1 text
/// lines (parse_event below) as a single-event frame with legacy_sep1
/// set. One-release grace period — SEP1 emission is already gone.
Result<SepFrame> decode_frame_any(std::span<const uint8_t> datagram);

/// Self-describing run-length coding used for frame bodies. Token stream:
/// a control byte c < 0x80 copies c+1 literal bytes; c >= 0x80 repeats the
/// following byte c-0x80+4 times (runs of 4..131). decompress enforces
/// `max_out` and rejects truncated token streams.
Bytes rle_compress(std::span<const uint8_t> in);
Result<Bytes> rle_decompress(std::span<const uint8_t> in, size_t max_out);

/// Unsigned LEB128-style varints plus zigzag for signed values — exposed
/// for tests and the fuzz target.
void put_varint(BufWriter& w, uint64_t v);
Result<uint64_t> get_varint(BufReader& r);
void put_zigzag(BufWriter& w, int64_t v);
Result<int64_t> get_zigzag(BufReader& r);

// ---------------------------------------------------------------------------
// DEPRECATED SEP1 text compat. The original exchange format was one
// tab-separated line per event:
//
//   SEP1 \t <node> \t <type> \t <session> \t <time_usec> \t <aor>
//        \t <addr:port> \t <value> \t <detail...>
//
// SEP-v2 frames supersede it; these helpers remain for the one-release
// compat window (decode_frame_any still accepts SEP1 datagrams) and for the
// pre-fleet CooperativeIds pair deployment, which still speaks SEP1
// point-to-point. New code should use SepEncoder/decode_frame.

/// An event as received from a peer IDS, with provenance.
struct RemoteEvent {
  std::string from_node;  // sender's node name
  core::Event event;
  SimTime received_at = 0;
};

/// Serialize an event as a SEP1 line for the wire.
std::string serialize_event(std::string_view node_name, const core::Event& event);

/// Parse a SEP1 line. Rejects unknown versions and malformed fields — peers
/// are other machines and their traffic is untrusted input.
Result<RemoteEvent> parse_event(std::string_view line);

/// Stable numeric ids for EventType on the wire, shared by SEP1 lines and
/// SEP-v2 event records (do not reorder).
int event_type_wire_id(core::EventType type);
Result<core::EventType> event_type_from_wire_id(int id);

constexpr uint16_t kSepPort = 5999;

/// Hard ceiling on an accepted SEP1 line. Anything longer is an attack or a
/// framing bug, not an event — rejected outright rather than partially read.
constexpr size_t kMaxSepLineBytes = 2048;

}  // namespace scidive::fleet
