#include "fleet/sep_wire.h"

#include "common/strings.h"

namespace scidive::fleet {

namespace {

constexpr uint8_t kMagic[4] = {'S', 'E', 'P', '2'};
constexpr uint8_t kFlagCompressed = 0x01;
constexpr size_t kMaxVarintBytes = 10;

/// EventType <-> wire id table shared by SEP1 lines and SEP-v2 event
/// records. Append only; ids are protocol state.
constexpr struct {
  core::EventType type;
  int id;
} kWireIds[] = {
    {core::EventType::kSipInviteSeen, 1},
    {core::EventType::kSipReinviteSeen, 2},
    {core::EventType::kSipSessionEstablished, 3},
    {core::EventType::kSipByeSeen, 4},
    {core::EventType::kSipMalformed, 5},
    {core::EventType::kSip4xxSeen, 6},
    {core::EventType::kSipRegisterSeen, 7},
    {core::EventType::kSipAuthChallenge, 8},
    {core::EventType::kSipAuthFailure, 9},
    {core::EventType::kImMessageSeen, 10},
    {core::EventType::kRtpStreamStarted, 11},
    {core::EventType::kRtpSeqJump, 12},
    {core::EventType::kRtpUnexpectedSource, 13},
    {core::EventType::kRtpAfterBye, 14},
    {core::EventType::kRtpAfterReinvite, 15},
    {core::EventType::kRtpJitter, 16},
    {core::EventType::kNonRtpOnMediaPort, 17},
    {core::EventType::kAccStartSeen, 18},
    {core::EventType::kAccUnmatched, 19},
    {core::EventType::kAccBilledPartyAbsent, 20},
    {core::EventType::kImMessageSent, 21},
    {core::EventType::kRtpPacketSeen, 22},
    {core::EventType::kRtcpByeSeen, 23},
    {core::EventType::kRtpAfterRtcpBye, 24},
};

Result<std::string> get_string(BufReader& r) {
  auto len = get_varint(r);
  if (!len) return len.error();
  if (len.value() > kMaxStringBytes) return Error{Errc::kMalformed, "string too long"};
  auto bytes = r.bytes(static_cast<size_t>(len.value()));
  if (!bytes) return bytes.error();
  return std::string(reinterpret_cast<const char*>(bytes.value().data()),
                     bytes.value().size());
}

void put_string(BufWriter& w, std::string_view s) {
  // Encoder-side truncation keeps every frame decodable; detail strings are
  // diagnostics, not protocol state.
  if (s.size() > kMaxStringBytes) s = s.substr(0, kMaxStringBytes);
  put_varint(w, s.size());
  w.str(s);
}

void put_endpoint(BufWriter& w, const pkt::Endpoint& ep) {
  w.u32(ep.addr.value());
  w.u16(ep.port);
}

Result<pkt::Endpoint> get_endpoint(BufReader& r) {
  auto addr = r.u32();
  if (!addr) return addr.error();
  auto port = r.u16();
  if (!port) return port.error();
  return pkt::Endpoint{pkt::Ipv4Address(addr.value()), port.value()};
}

Result<core::Event> decode_event(BufReader& r, SimTime& last_time) {
  auto type_id = get_varint(r);
  if (!type_id) return type_id.error();
  auto type = event_type_from_wire_id(static_cast<int>(type_id.value()));
  if (!type) return type.error();
  core::Event out;
  out.type = type.value();
  auto delta = get_zigzag(r);
  if (!delta) return delta.error();
  // Wrapping arithmetic: a hostile frame can place consecutive event times
  // at opposite ends of the int64 range, and signed overflow would be UB.
  out.time = static_cast<SimTime>(static_cast<uint64_t>(last_time) +
                                  static_cast<uint64_t>(delta.value()));
  last_time = out.time;
  auto session = get_string(r);
  if (!session) return session.error();
  out.session = std::move(session.value());
  auto aor = get_string(r);
  if (!aor) return aor.error();
  out.aor = std::move(aor.value());
  auto ep = get_endpoint(r);
  if (!ep) return ep.error();
  out.endpoint = ep.value();
  auto value = get_zigzag(r);
  if (!value) return value.error();
  out.value = value.value();
  auto detail = get_string(r);
  if (!detail) return detail.error();
  out.detail = std::move(detail.value());
  return out;
}

Result<SepVerdict> decode_verdict(BufReader& r) {
  SepVerdict out;
  auto action = r.u8();
  if (!action) return action.error();
  if (action.value() >= core::kVerdictActionCount)
    return Error{Errc::kMalformed, "unknown verdict action"};
  out.action = static_cast<core::VerdictAction>(action.value());
  auto rule = get_string(r);
  if (!rule) return rule.error();
  out.rule = std::move(rule.value());
  auto session = get_string(r);
  if (!session) return session.error();
  out.session = std::move(session.value());
  auto aor = get_string(r);
  if (!aor) return aor.error();
  out.aor = std::move(aor.value());
  auto ep = get_endpoint(r);
  if (!ep) return ep.error();
  out.endpoint = ep.value();
  auto time = get_zigzag(r);
  if (!time) return time.error();
  out.time = time.value();
  return out;
}

Result<SepCounter> decode_counter(BufReader& r) {
  SepCounter out;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (kind.value() < 1 || kind.value() > 2)
    return Error{Errc::kMalformed, "unknown counter kind"};
  out.kind = static_cast<CounterKind>(kind.value());
  auto key = get_string(r);
  if (!key) return key.error();
  out.key = std::move(key.value());
  auto window = get_zigzag(r);
  if (!window) return window.error();
  out.window_start = window.value();
  auto count = get_varint(r);
  if (!count) return count.error();
  out.count = count.value();
  return out;
}

Result<SepVouch> decode_vouch(BufReader& r) {
  SepVouch out;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (kind.value() < 1 || kind.value() > 3)
    return Error{Errc::kMalformed, "unknown vouch kind"};
  out.kind = static_cast<VouchKind>(kind.value());
  auto key = get_string(r);
  if (!key) return key.error();
  out.key = std::move(key.value());
  auto time = get_zigzag(r);
  if (!time) return time.error();
  out.time = time.value();
  return out;
}

Result<SepHandoff> decode_handoff(BufReader& r) {
  SepHandoff out;
  auto session = get_string(r);
  if (!session) return session.error();
  out.session = std::move(session.value());
  auto to_node = get_string(r);
  if (!to_node) return to_node.error();
  out.to_node = std::move(to_node.value());
  auto slot = get_varint(r);
  if (!slot) return slot.error();
  out.slot = slot.value();
  return out;
}

Result<SepFrame> decode_body(std::span<const uint8_t> body, uint64_t count,
                             SepFrame frame) {
  BufReader r(body);
  SimTime last_event_time = 0;
  frame.records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    auto type = r.u8();
    if (!type) return type.error();
    auto len = get_varint(r);
    if (!len) return len.error();
    if (len.value() > kMaxRecordBytes) return Error{Errc::kMalformed, "record too long"};
    auto payload = r.bytes(static_cast<size_t>(len.value()));
    if (!payload) return payload.error();
    BufReader pr(payload.value());
    switch (static_cast<SepRecordType>(type.value())) {
      case SepRecordType::kEvent: {
        auto rec = decode_event(pr, last_event_time);
        if (!rec) return rec.error();
        frame.records.emplace_back(std::move(rec.value()));
        break;
      }
      case SepRecordType::kVerdict: {
        auto rec = decode_verdict(pr);
        if (!rec) return rec.error();
        frame.records.emplace_back(std::move(rec.value()));
        break;
      }
      case SepRecordType::kCounter: {
        auto rec = decode_counter(pr);
        if (!rec) return rec.error();
        frame.records.emplace_back(std::move(rec.value()));
        break;
      }
      case SepRecordType::kVouch: {
        auto rec = decode_vouch(pr);
        if (!rec) return rec.error();
        frame.records.emplace_back(std::move(rec.value()));
        break;
      }
      case SepRecordType::kHandoff: {
        auto rec = decode_handoff(pr);
        if (!rec) return rec.error();
        frame.records.emplace_back(std::move(rec.value()));
        break;
      }
      case SepRecordType::kHello:
        // Liveness only; the header already carries node + epoch.
        break;
      default:
        // Forward compatibility: a newer peer may batch record types this
        // build does not know. The length prefix lets us skip them without
        // understanding them — counted, never fatal.
        ++frame.unknown_skipped;
        break;
    }
    // Known record types must consume their payload exactly; slack would
    // mean the encoder and decoder disagree about the format.
    if (static_cast<SepRecordType>(type.value()) <= SepRecordType::kHello &&
        type.value() >= 1 && pr.remaining() != 0) {
      return Error{Errc::kMalformed, "record payload has trailing bytes"};
    }
  }
  if (r.remaining() != 0) return Error{Errc::kMalformed, "frame body has trailing bytes"};
  return frame;
}

}  // namespace

void put_varint(BufWriter& w, uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<uint8_t>(v));
}

Result<uint64_t> get_varint(BufReader& r) {
  uint64_t v = 0;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    auto b = r.u8();
    if (!b) return b.error();
    if (i == 9 && (b.value() & 0xfe) != 0)
      return Error{Errc::kMalformed, "varint overflows 64 bits"};
    v |= static_cast<uint64_t>(b.value() & 0x7f) << (7 * i);
    if ((b.value() & 0x80) == 0) return v;
  }
  return Error{Errc::kMalformed, "varint too long"};
}

void put_zigzag(BufWriter& w, int64_t v) {
  put_varint(w, (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

Result<int64_t> get_zigzag(BufReader& r) {
  auto v = get_varint(r);
  if (!v) return v.error();
  const uint64_t u = v.value();
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Bytes rle_compress(std::span<const uint8_t> in) {
  Bytes out;
  out.reserve(in.size());
  size_t i = 0;
  while (i < in.size()) {
    // Measure the run at i.
    size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 131) ++run;
    if (run >= 4) {
      out.push_back(static_cast<uint8_t>(0x80 + run - 4));
      out.push_back(in[i]);
      i += run;
      continue;
    }
    // Literal stretch: up to 128 bytes, stopping before the next run of 4+.
    size_t lit_start = i;
    size_t lit = 0;
    while (i < in.size() && lit < 128) {
      size_t ahead = 1;
      while (i + ahead < in.size() && in[i + ahead] == in[i] && ahead < 4) ++ahead;
      if (ahead >= 4) break;
      i += 1;
      lit += 1;
    }
    out.push_back(static_cast<uint8_t>(lit - 1));
    out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(lit_start),
               in.begin() + static_cast<ptrdiff_t>(lit_start + lit));
  }
  return out;
}

Result<Bytes> rle_decompress(std::span<const uint8_t> in, size_t max_out) {
  Bytes out;
  BufReader r(in);
  while (!r.empty()) {
    auto c = r.u8();
    if (!c) return c.error();
    if (c.value() < 0x80) {
      const size_t n = static_cast<size_t>(c.value()) + 1;
      auto lit = r.bytes(n);
      if (!lit) return lit.error();
      if (out.size() + n > max_out)
        return Error{Errc::kMalformed, "decompressed body exceeds cap"};
      out.insert(out.end(), lit.value().begin(), lit.value().end());
    } else {
      const size_t n = static_cast<size_t>(c.value()) - 0x80 + 4;
      auto b = r.u8();
      if (!b) return b.error();
      if (out.size() + n > max_out)
        return Error{Errc::kMalformed, "decompressed body exceeds cap"};
      out.insert(out.end(), n, b.value());
    }
  }
  return out;
}

SepEncoder::SepEncoder(std::string node, uint64_t epoch)
    : node_(std::move(node)), epoch_(epoch) {
  if (node_.size() > kMaxNodeNameBytes) node_.resize(kMaxNodeNameBytes);
}

void SepEncoder::record(SepRecordType type, const Bytes& payload) {
  body_.u8(static_cast<uint8_t>(type));
  put_varint(body_, payload.size());
  body_.bytes(payload);
  ++record_count_;
}

void SepEncoder::add_event(const core::Event& event) {
  BufWriter p;
  put_varint(p, static_cast<uint64_t>(event_type_wire_id(event.type)));
  // Wrapping delta (see decode_event): re-encoding a decoded frame must not
  // overflow even when the times span the int64 range.
  put_zigzag(p, static_cast<int64_t>(static_cast<uint64_t>(event.time) -
                                     static_cast<uint64_t>(last_event_time_)));
  last_event_time_ = event.time;
  put_string(p, event.session);
  put_string(p, event.aor);
  put_endpoint(p, event.endpoint);
  put_zigzag(p, event.value);
  put_string(p, event.detail);
  record(SepRecordType::kEvent, std::move(p).take());
}

void SepEncoder::add_verdict(const SepVerdict& verdict) {
  BufWriter p;
  p.u8(static_cast<uint8_t>(verdict.action));
  put_string(p, verdict.rule);
  put_string(p, verdict.session);
  put_string(p, verdict.aor);
  put_endpoint(p, verdict.endpoint);
  put_zigzag(p, verdict.time);
  record(SepRecordType::kVerdict, std::move(p).take());
}

void SepEncoder::add_counter(const SepCounter& counter) {
  BufWriter p;
  p.u8(static_cast<uint8_t>(counter.kind));
  put_string(p, counter.key);
  put_zigzag(p, counter.window_start);
  put_varint(p, counter.count);
  record(SepRecordType::kCounter, std::move(p).take());
}

void SepEncoder::add_vouch(const SepVouch& vouch) {
  BufWriter p;
  p.u8(static_cast<uint8_t>(vouch.kind));
  put_string(p, vouch.key);
  put_zigzag(p, vouch.time);
  record(SepRecordType::kVouch, std::move(p).take());
}

void SepEncoder::add_handoff(const SepHandoff& handoff) {
  BufWriter p;
  put_string(p, handoff.session);
  put_string(p, handoff.to_node);
  put_varint(p, handoff.slot);
  record(SepRecordType::kHandoff, std::move(p).take());
}

void SepEncoder::add_hello() { record(SepRecordType::kHello, Bytes{}); }

Bytes SepEncoder::finish(bool compress) {
  BufWriter frame(16 + node_.size() + body_.size());
  frame.bytes(std::span<const uint8_t>(kMagic, 4));
  frame.u8(kSepVersion);

  Bytes body = std::move(body_).take();
  uint8_t flags = 0;
  if (compress) {
    Bytes packed = rle_compress(body);
    if (packed.size() < body.size()) {
      body = std::move(packed);
      flags |= kFlagCompressed;
    }
  }
  frame.u8(flags);
  frame.u8(static_cast<uint8_t>(node_.size()));
  frame.str(node_);
  put_varint(frame, epoch_);
  put_varint(frame, record_count_);
  frame.bytes(body);

  body_ = BufWriter();
  record_count_ = 0;
  last_event_time_ = 0;
  return std::move(frame).take();
}

Result<SepFrame> decode_frame(std::span<const uint8_t> datagram) {
  BufReader r(datagram);
  auto magic = r.bytes(4);
  if (!magic) return Error{Errc::kTruncated, "frame shorter than magic"};
  if (!std::equal(magic.value().begin(), magic.value().end(), kMagic))
    return Error{Errc::kUnsupported, "not a SEP2 frame"};
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kSepVersion)
    return Error{Errc::kUnsupported, "unknown SEP version"};
  auto flags = r.u8();
  if (!flags) return flags.error();
  if ((flags.value() & ~kFlagCompressed) != 0)
    return Error{Errc::kMalformed, "unknown frame flags"};
  auto name_len = r.u8();
  if (!name_len) return name_len.error();
  if (name_len.value() == 0 || name_len.value() > kMaxNodeNameBytes)
    return Error{Errc::kMalformed, "bad node name length"};
  auto name = r.bytes(name_len.value());
  if (!name) return name.error();
  SepFrame frame;
  frame.node.assign(reinterpret_cast<const char*>(name.value().data()),
                    name.value().size());
  auto epoch = get_varint(r);
  if (!epoch) return epoch.error();
  frame.epoch = epoch.value();
  auto count = get_varint(r);
  if (!count) return count.error();
  if (count.value() > kMaxRecordsPerFrame)
    return Error{Errc::kMalformed, "too many records in frame"};

  if (flags.value() & kFlagCompressed) {
    auto body = rle_decompress(r.rest(), kMaxBodyBytes);
    if (!body) return body.error();
    return decode_body(body.value(), count.value(), std::move(frame));
  }
  if (r.remaining() > kMaxBodyBytes) return Error{Errc::kMalformed, "body too large"};
  return decode_body(r.rest(), count.value(), std::move(frame));
}

Result<SepFrame> decode_frame_any(std::span<const uint8_t> datagram) {
  if (datagram.size() >= 4 && std::equal(datagram.begin(), datagram.begin() + 4, kMagic))
    return decode_frame(datagram);
  // Deprecated SEP1 text compat: one event per datagram. Removed after one
  // release; new deployments never emit it.
  std::string_view text(reinterpret_cast<const char*>(datagram.data()), datagram.size());
  auto legacy = parse_event(text);
  if (!legacy) return legacy.error();
  SepFrame frame;
  frame.node = std::move(legacy.value().from_node);
  frame.epoch = 0;
  frame.legacy_sep1 = true;
  frame.records.emplace_back(std::move(legacy.value().event));
  return frame;
}

int event_type_wire_id(core::EventType type) {
  for (const auto& entry : kWireIds) {
    if (entry.type == type) return entry.id;
  }
  return 0;
}

Result<core::EventType> event_type_from_wire_id(int id) {
  for (const auto& entry : kWireIds) {
    if (entry.id == id) return entry.type;
  }
  return Error{Errc::kUnsupported, "unknown event wire id"};
}

std::string serialize_event(std::string_view node_name, const core::Event& event) {
  std::string detail = event.detail;
  for (char& c : detail) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return str::format("SEP1\t%.*s\t%d\t%s\t%lld\t%s\t%s\t%lld\t%s",
                     static_cast<int>(node_name.size()), node_name.data(),
                     event_type_wire_id(event.type), event.session.c_str(),
                     static_cast<long long>(event.time), event.aor.c_str(),
                     event.endpoint.to_string().c_str(), static_cast<long long>(event.value),
                     detail.c_str());
}

Result<RemoteEvent> parse_event(std::string_view line) {
  if (line.size() > kMaxSepLineBytes)
    return Error{Errc::kMalformed, "SEP line exceeds size cap"};
  // Strip line endings only — a full trim() would eat the trailing tab of
  // an empty detail field and shift the field count.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.remove_suffix(1);
  auto fields = str::split(line, '\t');
  // Exactly nine: serialize_event() sanitizes tabs out of the detail field,
  // so extra separators mean a peer speaking something else — reject rather
  // than guess at field boundaries.
  if (fields.size() != 9) return Error{Errc::kMalformed, "SEP line needs 9 fields"};
  if (fields[0] != "SEP1") return Error{Errc::kUnsupported, "not SEP1"};

  RemoteEvent out;
  out.from_node = std::string(fields[1]);
  if (out.from_node.empty()) return Error{Errc::kMalformed, "empty node name"};

  auto type_id = str::parse_u32(fields[2]);
  if (!type_id) return Error{Errc::kMalformed, "bad event type id"};
  auto type = event_type_from_wire_id(static_cast<int>(*type_id));
  if (!type) return type.error();
  out.event.type = type.value();

  out.event.session = std::string(fields[3]);
  auto time = str::parse_u64(fields[4]);
  if (!time) return Error{Errc::kMalformed, "bad time"};
  out.event.time = static_cast<SimTime>(*time);
  out.event.aor = std::string(fields[5]);

  // addr:port
  auto colon = str::split_once(fields[6], ':');
  if (!colon) return Error{Errc::kMalformed, "bad endpoint"};
  auto addr = pkt::Ipv4Address::parse(colon->first);
  auto port = str::parse_u16(colon->second);
  if (!addr || !port) return Error{Errc::kMalformed, "bad endpoint addr/port"};
  out.event.endpoint = pkt::Endpoint{*addr, *port};

  auto value = str::parse_u64(fields[7]);
  if (!value) {
    // Negative values (e.g. backward seq jumps) serialize with '-'.
    if (!fields[7].empty() && fields[7][0] == '-') {
      auto magnitude = str::parse_u64(fields[7].substr(1));
      if (!magnitude) return Error{Errc::kMalformed, "bad value"};
      out.event.value = -static_cast<int64_t>(*magnitude);
    } else {
      return Error{Errc::kMalformed, "bad value"};
    }
  } else {
    out.event.value = static_cast<int64_t>(*value);
  }

  out.event.detail = std::string(fields[8]);
  return out;
}

}  // namespace scidive::fleet
