#include "fleet/correlate.h"

#include "common/strings.h"

namespace scidive::fleet {

FleetCorrelator::FleetCorrelator(std::string self_node, CorrelatorConfig config)
    : self_(std::move(self_node)), config_(config) {
  if (config_.register_flood_window <= 0) config_.register_flood_window = sec(10);
  if (config_.digest_guess_window <= 0) config_.digest_guess_window = sec(30);
  if (config_.retain_windows == 0) config_.retain_windows = 1;
}

SimDuration FleetCorrelator::window_of(CounterKind kind) const {
  return kind == CounterKind::kRegisterFlood ? config_.register_flood_window
                                             : config_.digest_guess_window;
}

uint64_t FleetCorrelator::threshold_of(CounterKind kind) const {
  return kind == CounterKind::kRegisterFlood ? config_.register_flood_threshold
                                             : config_.digest_guess_threshold;
}

std::optional<SepCounter> FleetCorrelator::on_local_event(const core::Event& event) {
  CounterKind kind;
  switch (event.type) {
    case core::EventType::kSipRegisterSeen: kind = CounterKind::kRegisterFlood; break;
    case core::EventType::kSipAuthFailure: kind = CounterKind::kDigestGuess; break;
    default: return std::nullopt;
  }
  if (event.endpoint.addr.value() == 0) return std::nullopt;
  const SimDuration window = window_of(kind);
  const SimTime window_start = event.time >= 0 ? event.time - event.time % window : 0;
  WindowKey wk{static_cast<uint8_t>(kind), event.endpoint.addr.to_string(), window_start};
  const uint64_t count = ++partials_[wk][self_];
  ++stats_.partials_updated;
  prune(kind, window_start);
  return SepCounter{kind, std::get<1>(wk), window_start, count};
}

void FleetCorrelator::on_remote_counter(std::string_view from_node, const SepCounter& counter) {
  if (counter.kind != CounterKind::kRegisterFlood && counter.kind != CounterKind::kDigestGuess)
    return;
  WindowKey wk{static_cast<uint8_t>(counter.kind), counter.key, counter.window_start};
  auto& per_node = partials_[wk];
  auto it = per_node.find(from_node);
  if (it == per_node.end()) {
    per_node.emplace(std::string(from_node), counter.count);
  } else if (counter.count > it->second) {
    it->second = counter.count;
  }
  ++stats_.partials_merged;
  prune(counter.kind, counter.window_start);
}

std::vector<core::Alert> FleetCorrelator::evaluate(
    const std::function<bool(std::string_view)>& is_owner) {
  std::vector<core::Alert> out;
  for (const auto& [wk, per_node] : partials_) {
    if (alerted_.contains(wk)) continue;
    const auto& [kind_raw, key, window_start] = wk;
    const CounterKind kind = static_cast<CounterKind>(kind_raw);
    if (!is_owner(key)) continue;
    uint64_t total = 0;
    for (const auto& [node, count] : per_node) total += count;
    if (total < threshold_of(kind)) continue;
    alerted_.insert(wk);
    ++stats_.alerts_raised;
    core::Alert alert;
    alert.rule = kind == CounterKind::kRegisterFlood ? kFleetRegisterFloodRule
                                                    : kFleetDigestGuessRule;
    alert.severity = core::Severity::kCritical;
    alert.session = str::format("fleet:%s@%lld", key.c_str(),
                                static_cast<long long>(window_start));
    alert.time = window_start;
    alert.message = str::format(
        "%llu %s from %s across %zu node(s) within one window (threshold %llu)",
        static_cast<unsigned long long>(total),
        kind == CounterKind::kRegisterFlood ? "REGISTERs" : "auth failures", key.c_str(),
        per_node.size(), static_cast<unsigned long long>(threshold_of(kind)));
    out.push_back(std::move(alert));
  }
  return out;
}

void FleetCorrelator::prune(CounterKind kind, SimTime seen_window) {
  SimTime& latest = latest_window_[kind == CounterKind::kRegisterFlood ? 0 : 1];
  if (seen_window > latest) latest = seen_window;
  const SimDuration horizon =
      window_of(kind) * static_cast<SimDuration>(config_.retain_windows);
  const SimTime cutoff = latest - horizon;
  if (cutoff <= 0) return;
  for (auto it = partials_.begin(); it != partials_.end();) {
    const auto& [kind_raw, key, window_start] = it->first;
    if (kind_raw == static_cast<uint8_t>(kind) && window_start < cutoff) {
      alerted_.erase(it->first);
      it = partials_.erase(it);
      ++stats_.windows_pruned;
    } else {
      ++it;
    }
  }
}

void VouchStore::add(const SepVouch& vouch) {
  vouches_.push_back(vouch);
  while (vouches_.size() > max_entries_) vouches_.pop_front();
}

bool VouchStore::vouched(VouchKind kind, std::string_view key, SimTime around) const {
  for (const SepVouch& v : vouches_) {
    if (v.kind != kind || v.key != key) continue;
    const SimDuration delta = v.time >= around ? v.time - around : around - v.time;
    if (delta <= match_window_) return true;
  }
  return false;
}

}  // namespace scidive::fleet
