#include "fleet/ring.h"

#include <algorithm>

#include "common/flat_map.h"
#include "scidive/shard_directory.h"
#include "scidive/shard_router.h"

namespace scidive::fleet {

namespace {

/// Rendezvous weight of (node, slot). Node hash folded with the slot index
/// through the same mix the FlatMap layer uses — cheap, and any bias would
/// show up directly in the balance test.
uint64_t weight(uint64_t node_hash, size_t slot) {
  return flat_mix64(node_hash ^ (0x9e3779b97f4a7c15ULL * (slot + 1)));
}

}  // namespace

FleetRing::FleetRing(size_t num_slots) : slot_owner_(num_slots == 0 ? 1 : num_slots) {}

bool FleetRing::contains(std::string_view name) const {
  auto sym = names_.find(name);
  if (!sym) return false;
  return std::find(members_.begin(), members_.end(), *sym) != members_.end();
}

bool FleetRing::add_node(std::string_view name) {
  if (name.empty() || name.size() > 64 || contains(name)) return false;
  members_.push_back(names_.intern(name));
  rebuild();
  return true;
}

bool FleetRing::remove_node(std::string_view name) {
  auto sym = names_.find(name);
  if (!sym) return false;
  auto it = std::find(members_.begin(), members_.end(), *sym);
  if (it == members_.end()) return false;
  members_.erase(it);
  rebuild();
  return true;
}

std::vector<std::string> FleetRing::members() const {
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (Symbol sym : members_) out.emplace_back(names_.name(sym));
  return out;
}

void FleetRing::rebuild() {
  // Canonical member order: by name, so the table is identical no matter
  // what order nodes were added in.
  std::sort(members_.begin(), members_.end(), [&](Symbol a, Symbol b) {
    return names_.name(a) < names_.name(b);
  });
  std::vector<uint64_t> hashes(members_.size());
  for (size_t i = 0; i < members_.size(); ++i)
    hashes[i] = core::ShardDirectory::key_hash(names_.name(members_[i]));
  for (size_t slot = 0; slot < slot_owner_.size(); ++slot) {
    if (members_.empty()) {
      slot_owner_[slot] = std::nullopt;
      continue;
    }
    size_t best = 0;
    uint64_t best_weight = weight(hashes[0], slot);
    for (size_t i = 1; i < members_.size(); ++i) {
      const uint64_t w = weight(hashes[i], slot);
      // Name order breaks exact weight ties deterministically (already the
      // iteration order, so strictly-greater suffices).
      if (w > best_weight) {
        best = i;
        best_weight = w;
      }
    }
    slot_owner_[slot] = members_[best];
  }
}

size_t FleetRing::slot_of_hash(uint64_t key_hash) const {
  // Must agree with the dispatcher's ShardRouter over num_slots shards —
  // the router decides where packets go, the ring decides who owns slots.
  return core::ShardRouter::shard_of_hash(key_hash, slot_owner_.size());
}

size_t FleetRing::slot_of_key(std::string_view key) const {
  return core::ShardRouter::shard_of(key, slot_owner_.size());
}

std::string_view FleetRing::owner_of_slot(size_t slot) const {
  const auto& owner = slot_owner_[slot % slot_owner_.size()];
  if (!owner) return {};
  return names_.name(*owner);
}

std::string_view FleetRing::owner_of_key(std::string_view key) const {
  return owner_of_slot(slot_of_key(key));
}

std::vector<size_t> FleetRing::slots_of(std::string_view name) const {
  std::vector<size_t> out;
  auto sym = names_.find(name);
  if (!sym) return out;
  for (size_t slot = 0; slot < slot_owner_.size(); ++slot) {
    if (slot_owner_[slot] == *sym) out.push_back(slot);
  }
  return out;
}

std::vector<size_t> FleetRing::moved_slots(const FleetRing& before, const FleetRing& after) {
  std::vector<size_t> out;
  const size_t n = std::min(before.num_slots(), after.num_slots());
  for (size_t slot = 0; slot < n; ++slot) {
    if (before.owner_of_slot(slot) != after.owner_of_slot(slot)) out.push_back(slot);
  }
  return out;
}

}  // namespace scidive::fleet
