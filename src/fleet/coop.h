// Cooperative detection — the architecture extension the paper sketches in
// §4.2.2 and §6: "If the attacker is able to spoof its IP address, then
// this rule will not work... This motivates a more ambitious architecture
// like deploying IDS on both client ends" and "the two IDSs could exchange
// event objects ... to enhance the overall detection accuracy".
//
// A CooperativeIds wraps a local ScidiveEngine with:
//   * a SEP endpoint (UDP) that shares selected local events with peers and
//     ingests theirs;
//   * host-based ground truth: the co-located user agent reports IMs it
//     really sent (kImMessageSent), which this node vouches to peers;
//   * the cooperative fake-IM rule: an incoming IM claiming a peer-homed
//     user is held for `verify_delay`; if the user's own IDS never vouched
//     a matching send, the message is flagged — EVEN when the source IP was
//     spoofed perfectly, the case the single-point rule provably misses.
//
// SEP is unauthenticated here, as 2004-era control channels were; a
// production deployment would run it over an authenticated channel
// (documented limitation, mirrors the paper's own trust assumptions).
#pragma once

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "fleet/sep_wire.h"
#include "scidive/engine.h"
#include "voip/user_agent.h"

namespace scidive::fleet {

struct CoopConfig {
  std::string node_name;        // e.g. "ids-a"
  uint16_t sep_port = kSepPort;
  /// Event types worth the control-channel bandwidth ("a challenge is to
  /// design the appropriate protocol that does not overwhelm the system
  /// with control messages", §6).
  std::set<core::EventType> shared_types = {core::EventType::kImMessageSent,
                                            core::EventType::kRtpAfterBye,
                                            core::EventType::kRtpAfterReinvite};
  /// How long to wait for a peer's vouching before judging an IM forged.
  SimDuration verify_delay = msec(300);
  /// Local/remote event times closer than this are "the same" message.
  SimDuration match_window = sec(1);
  size_t remote_buffer_max = 4096;
  /// Fail-open: when no peer has been heard from within this window, skip
  /// IM verification rather than flag every message (a dead peer IDS must
  /// not turn all of a user's genuine IMs into alarms). Set to 0 to always
  /// verify (fail-closed).
  SimDuration peer_liveness_window = sec(30);
};

/// By-value view of the cooperative control plane. The authoritative state
/// lives in obs::MetricsRegistry instruments on the wrapped engine (the
/// scidive_fleet_* families), so coop health rides the same Prometheus/JSON
/// exposition as everything else; this struct is the test-friendly read.
struct CoopStats {
  uint64_t events_shared = 0;
  uint64_t events_received = 0;
  uint64_t parse_errors = 0;
  uint64_t verifications = 0;        // IMs held for peer confirmation
  uint64_t confirmed_legit = 0;      // vouched by the sender's IDS
  uint64_t flagged_forged = 0;
  uint64_t skipped_peer_down = 0;    // fail-open: no live peer to ask
};

class CooperativeIds {
 public:
  CooperativeIds(netsim::Host& host, core::EngineConfig engine_config,
                 CoopConfig coop_config);

  /// Another SCIDIVE node to exchange events with.
  void add_peer(pkt::Endpoint peer_sep_endpoint);

  /// This node vouches for a co-located client: its genuine outgoing IMs
  /// become kImMessageSent events shared with peers.
  void attach_local_agent(voip::UserAgent& agent);

  /// Declare that `aor` is homed at a peer node (so incoming IMs claiming
  /// it are verified cooperatively).
  void add_peer_user(const std::string& aor);

  core::ScidiveEngine& engine() { return engine_; }
  const core::ScidiveEngine& engine() const { return engine_; }
  netsim::PacketTap tap() { return engine_.tap(); }
  const core::AlertSink& alerts() const { return engine_.alerts(); }

  const std::deque<RemoteEvent>& remote_events() const { return remote_events_; }
  CoopStats coop_stats() const;

  static constexpr const char* kCoopFakeImRule = "coop-fake-im";

 private:
  void on_local_event(const core::Event& event);
  void on_sep_datagram(pkt::Endpoint from, std::span<const uint8_t> payload, SimTime now);
  void share(const core::Event& event);
  void verify_im(core::Event im_event);
  bool peer_vouched(const std::string& aor, SimTime around) const;

  netsim::Host& host_;
  CoopConfig config_;
  core::ScidiveEngine engine_;
  std::vector<pkt::Endpoint> peers_;
  std::set<std::string> peer_users_;
  std::deque<RemoteEvent> remote_events_;
  SimTime last_peer_heard_ = -1;

  // Registered once at construction so the families appear (zero-valued) in
  // the exposition even before the first datagram.
  obs::Counter& events_shared_;
  obs::Counter& events_received_;
  obs::Counter& parse_errors_;
  obs::Counter& claims_held_;
  obs::Counter& claims_confirmed_;
  obs::Counter& claims_flagged_;
  obs::Counter& claims_skipped_;
};

}  // namespace scidive::fleet
