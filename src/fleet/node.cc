#include "fleet/node.h"

#include <algorithm>

#include "common/strings.h"

namespace scidive::fleet {

FleetNode::FleetNode(FleetNodeConfig config)
    : config_(std::move(config)),
      engine_([this] {
        core::ShardedEngineConfig ec = config_.engine;
        ec.engine.home_addresses.clear();  // the fleet dispatcher filters once
        return ec;
      }()),
      correlator_(config_.name, config_.correlator),
      vouches_(config_.match_window) {
  event_buffers_.resize(engine_.num_shards());
  verdict_cursors_.assign(engine_.num_shards(), 0);
  for (size_t i = 0; i < engine_.num_shards(); ++i) {
    auto* buffer = &event_buffers_[i];
    engine_.shard(i).set_event_callback(
        [buffer](const core::Event& event) { buffer->push_back(event); });
  }
}

void FleetNode::add_peer(const std::string& name) {
  if (name == config_.name || name.empty()) return;
  if (std::find(peer_names_.begin(), peer_names_.end(), name) != peer_names_.end()) return;
  peer_names_.push_back(name);
  peer_queues_.push_back(
      std::make_unique<GossipQueue>(config_.name, config_.epoch, config_.gossip));
}

void FleetNode::remove_peer(const std::string& name) {
  for (size_t i = 0; i < peer_names_.size(); ++i) {
    if (peer_names_[i] != name) continue;
    // Fold the departing queue's accounting into the node totals so the
    // monotone gossip counters never regress.
    const GossipStats& gs = peer_queues_[i]->stats();
    stats_.gossip_records_dropped += gs.records_dropped;
    stats_.gossip_frames_built += gs.frames_built;
    stats_.gossip_bytes_built += gs.bytes_built;
    peer_names_.erase(peer_names_.begin() + static_cast<ptrdiff_t>(i));
    peer_queues_.erase(peer_queues_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

std::vector<std::string> FleetNode::peers() const { return peer_names_; }

void FleetNode::add_peer_user(const std::string& aor) { peer_users_.insert(aor); }

void FleetNode::attach_local_agent(voip::UserAgent& agent) {
  const std::string aor = agent.aor();
  agent.on_im_sent = [this, &agent, aor](const std::string&, const std::string&) {
    SepVouch vouch{VouchKind::kIm, aor, agent.host().now()};
    ++stats_.vouches_sent;
    vouches_.add(vouch);
    broadcast(SepRecord{vouch});
  };
  agent.on_bye_sent = [this, &agent](const std::string& call_id) {
    SepVouch vouch{VouchKind::kBye, call_id, agent.host().now()};
    ++stats_.vouches_sent;
    vouches_.add(vouch);
    broadcast(SepRecord{vouch});
  };
  agent.on_reinvite_sent = [this, &agent](const std::string& call_id) {
    SepVouch vouch{VouchKind::kReinvite, call_id, agent.host().now()};
    ++stats_.vouches_sent;
    vouches_.add(vouch);
    broadcast(SepRecord{vouch});
  };
}

void FleetNode::broadcast(const SepRecord& record) {
  for (auto& queue : peer_queues_) queue->offer(record);
}

void FleetNode::on_datagram(std::span<const uint8_t> payload, SimTime now) {
  auto frame = decode_frame_any(payload);
  if (!frame.ok()) {
    // Attribute the failure to the format family the bytes claimed.
    const bool claimed_sep2 = payload.size() >= 4 && payload[0] == 'S' && payload[1] == 'E' &&
                              payload[2] == 'P' && payload[3] == '2';
    if (claimed_sep2) {
      ++stats_.parse_errors_sep2;
    } else {
      ++stats_.parse_errors_sep1;
    }
    return;
  }
  SepFrame& f = frame.value();
  if (f.node == config_.name) return;  // own reflection
  ++stats_.frames_received;
  stats_.unknown_records += f.unknown_skipped;
  if (f.legacy_sep1) ++stats_.legacy_frames;
  peer_heard_[f.node] = now;
  if (now > last_peer_heard_) last_peer_heard_ = now;
  for (SepRecord& rec : f.records) {
    if (remote_records_.size() >= config_.remote_buffer_max) remote_records_.pop_front();
    remote_records_.push_back({f.node, rec});
    inbox_.emplace_back(f.node, std::move(rec));
  }
}

void FleetNode::pump(SimTime now) {
  engine_.flush();
  on_engine_outputs(now);
  apply_inbox(now);
  judge_held(now);
  const auto is_owner = is_owner_ ? is_owner_
                                  : std::function<bool(std::string_view)>(
                                        [](std::string_view) { return true; });
  for (core::Alert& alert : correlator_.evaluate(is_owner))
    engine_.shard(0).alerts().raise(std::move(alert));
}

void FleetNode::on_engine_outputs(SimTime) {
  // Latest partial per correlation window: a burst of REGISTERs advances
  // one cumulative counter many times, but only the newest value needs the
  // wire (§6's control-message economy; max() merge makes it lossless).
  std::map<std::tuple<uint8_t, std::string, SimTime>, SepCounter> latest_partials;
  for (auto& buffer : event_buffers_) {
    for (core::Event& event : buffer) {
      if (config_.shared_types.contains(event.type)) {
        ++stats_.events_shared;
        broadcast(SepRecord{event});
      }
      if (auto partial = correlator_.on_local_event(event)) {
        latest_partials[{static_cast<uint8_t>(partial->kind), partial->key,
                         partial->window_start}] = *partial;
      }
      if (!event.aor.empty() && peer_users_.contains(event.aor)) {
        switch (event.type) {
          case core::EventType::kImMessageSeen:
            hold_claim(VouchKind::kIm, event.aor, event);
            break;
          case core::EventType::kSipByeSeen:
            hold_claim(VouchKind::kBye, event.session, event);
            break;
          case core::EventType::kSipReinviteSeen:
            hold_claim(VouchKind::kReinvite, event.session, event);
            break;
          default:
            break;
        }
      }
    }
    buffer.clear();
  }
  for (auto& [key, partial] : latest_partials) {
    ++stats_.counters_shared;
    broadcast(SepRecord{partial});
  }
  // Newly raised local verdicts propagate so a principal blocked here is
  // screened on every peer.
  for (size_t i = 0; i < engine_.num_shards(); ++i) {
    const auto& verdicts = engine_.shard(i).verdicts().verdicts();
    for (size_t c = verdict_cursors_[i]; c < verdicts.size(); ++c) {
      const core::Verdict& v = verdicts[c];
      if (v.action == core::VerdictAction::kPass) continue;
      ++stats_.verdicts_shared;
      broadcast(SepRecord{SepVerdict{v.rule, v.action, v.session, v.aor, v.endpoint, v.time}});
    }
    verdict_cursors_[i] = verdicts.size();
  }
}

void FleetNode::apply_inbox(SimTime) {
  for (auto& [from, rec] : inbox_) {
    std::visit(
        [&, this](auto& r) {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, core::Event>) {
            ++stats_.events_received;
          } else if constexpr (std::is_same_v<T, SepVerdict>) {
            ++stats_.verdicts_adopted;
            core::Verdict v;
            v.rule = r.rule;
            v.action = r.action;
            v.session = r.session;
            v.time = r.time;
            v.aor = r.aor;
            v.endpoint = r.endpoint;
            v.message = "adopted from fleet peer " + from;
            engine_.adopt_verdict(v);
          } else if constexpr (std::is_same_v<T, SepCounter>) {
            ++stats_.counters_merged;
            correlator_.on_remote_counter(from, r);
          } else if constexpr (std::is_same_v<T, SepVouch>) {
            ++stats_.vouches_received;
            vouches_.add(r);
          } else {
            ++stats_.handoffs_heard;
          }
        },
        rec);
  }
  inbox_.clear();
}

void FleetNode::hold_claim(VouchKind kind, std::string key, const core::Event& event) {
  ++stats_.claims_held;
  held_.push_back({kind, std::move(key), event, event.time + config_.verify_delay});
}

bool FleetNode::peer_live(SimTime now) const {
  if (config_.peer_liveness_window <= 0) return true;  // fail-closed
  return last_peer_heard_ >= 0 && now - last_peer_heard_ <= config_.peer_liveness_window;
}

void FleetNode::judge_held(SimTime now) {
  // Deadlines are not monotone across shards, so scan instead of popping.
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->deadline > now) {
      ++it;
      continue;
    }
    if (vouches_.vouched(it->kind, it->key, it->event.time)) {
      ++stats_.claims_confirmed;
    } else if (!peer_live(now)) {
      ++stats_.claims_skipped_peer_down;  // fail-open
    } else {
      ++stats_.claims_flagged;
      core::Alert alert;
      alert.rule = it->kind == VouchKind::kIm      ? kFleetFakeImRule
                   : it->kind == VouchKind::kBye   ? kFleetSpoofedByeRule
                                                   : kFleetSpoofedReinviteRule;
      alert.severity = core::Severity::kCritical;
      alert.session = it->event.session;
      alert.time = now;
      alert.message = str::format(
          "%s claiming %s: no host vouch within %s of the claim (source %s)",
          it->kind == VouchKind::kIm ? "IM" : it->kind == VouchKind::kBye ? "BYE" : "re-INVITE",
          it->event.aor.c_str(), format_time(config_.verify_delay).c_str(),
          it->event.endpoint.to_string().c_str());
      engine_.shard(0).alerts().raise(std::move(alert));
    }
    it = held_.erase(it);
  }
}

std::vector<std::pair<std::string, Bytes>> FleetNode::take_frames() {
  std::vector<std::pair<std::string, Bytes>> out;
  for (size_t i = 0; i < peer_queues_.size(); ++i) {
    if (peer_queues_[i]->empty()) continue;
    out.emplace_back(peer_names_[i], peer_queues_[i]->take_frame());
  }
  return out;
}

bool FleetNode::gossip_pending() const {
  for (const auto& queue : peer_queues_) {
    if (!queue->empty()) return true;
  }
  return false;
}

std::vector<std::pair<std::string, Bytes>> FleetNode::hello_frames() const {
  std::vector<std::pair<std::string, Bytes>> out;
  for (const std::string& name : peer_names_)
    out.emplace_back(name, encode_hello(config_.name, config_.epoch));
  return out;
}

FleetNodeStats FleetNode::stats() const {
  FleetNodeStats out = stats_;
  for (const auto& queue : peer_queues_) {
    const GossipStats& gs = queue->stats();
    out.gossip_records_dropped += gs.records_dropped;
    out.gossip_frames_built += gs.frames_built;
    out.gossip_bytes_built += gs.bytes_built;
  }
  return out;
}

void FleetNode::sync_metrics() {
  obs::MetricsRegistry& reg = engine_.frontend_metrics();
  const FleetNodeStats s = stats();
  reg.counter("scidive_fleet_events_shared_total", "Engine events gossiped to fleet peers")
      .sync(s.events_shared);
  reg.counter("scidive_fleet_events_received_total", "Peer engine events heard over SEP")
      .sync(s.events_received);
  reg.counter("scidive_fleet_frames_received_total", "SEP frames accepted from peers")
      .sync(s.frames_received);
  reg.counter("scidive_fleet_parse_errors_total", "Undecodable SEP datagrams by format",
              {{"format", "sep1"}})
      .sync(s.parse_errors_sep1);
  reg.counter("scidive_fleet_parse_errors_total", "Undecodable SEP datagrams by format",
              {{"format", "sep2"}})
      .sync(s.parse_errors_sep2);
  reg.counter("scidive_fleet_legacy_frames_total",
              "Frames decoded via the deprecated SEP1 compat path")
      .sync(s.legacy_frames);
  reg.counter("scidive_fleet_unknown_records_total",
              "Record types skipped for forward compatibility")
      .sync(s.unknown_records);
  reg.counter("scidive_fleet_verdicts_shared_total", "Local non-pass verdicts gossiped")
      .sync(s.verdicts_shared);
  reg.counter("scidive_fleet_verdicts_adopted_total", "Peer verdicts applied locally")
      .sync(s.verdicts_adopted);
  reg.counter("scidive_fleet_vouches_total", "Host-truth vouch records by direction",
              {{"dir", "sent"}})
      .sync(s.vouches_sent);
  reg.counter("scidive_fleet_vouches_total", "Host-truth vouch records by direction",
              {{"dir", "received"}})
      .sync(s.vouches_received);
  reg.counter("scidive_fleet_counters_shared_total", "Correlator partials gossiped")
      .sync(s.counters_shared);
  reg.counter("scidive_fleet_counters_merged_total", "Peer correlator partials merged")
      .sync(s.counters_merged);
  reg.counter("scidive_fleet_claims_total", "Vouch-held claims by outcome",
              {{"outcome", "confirmed"}})
      .sync(s.claims_confirmed);
  reg.counter("scidive_fleet_claims_total", "Vouch-held claims by outcome",
              {{"outcome", "flagged"}})
      .sync(s.claims_flagged);
  reg.counter("scidive_fleet_claims_total", "Vouch-held claims by outcome",
              {{"outcome", "skipped_peer_down"}})
      .sync(s.claims_skipped_peer_down);
  reg.counter("scidive_fleet_gossip_drops_total",
              "Records dropped at full per-peer gossip queues")
      .sync(s.gossip_records_dropped);
  reg.counter("scidive_fleet_gossip_frames_total", "SEP frames built for peers")
      .sync(s.gossip_frames_built);
  reg.counter("scidive_fleet_gossip_bytes_total", "SEP frame bytes built for peers")
      .sync(s.gossip_bytes_built);
  int64_t depth = 0;
  for (const auto& queue : peer_queues_) depth += static_cast<int64_t>(queue->depth());
  reg.gauge("scidive_fleet_gossip_queue_depth", "Records queued for gossip across peer queues")
      .set(depth);
}

obs::Snapshot FleetNode::metrics_snapshot() {
  sync_metrics();
  return engine_.metrics_snapshot();
}

}  // namespace scidive::fleet
