// AlertLedger — an append-only audit record of every alert the rule engine
// raised, capturing what the sink's compact Alert does not: the triggering
// event (type, detail, numeric payload, endpoint), the trail the evidence
// lives in, and both timestamps (simulation time for reproducibility, wall
// time for correlating with operational logs). Post-hoc audit of a detection
// — "why did this fire, against which session state, when" — reads the
// ledger instead of re-running the scenario.
//
// Bounded like every other long-run structure in the IDS: beyond `capacity`
// the newest records are dropped and counted (the earliest evidence is the
// valuable part of an audit trail, so the head is kept, not the tail).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scidive/alert.h"
#include "scidive/event.h"

namespace scidive::obs {

struct AlertRecord {
  core::Alert alert;                 // rule, severity, session, sim time, message
  core::EventType cause_type;        // the event that triggered the rule
  std::string cause_detail;
  int64_t cause_value = 0;
  pkt::Endpoint cause_endpoint;
  core::TrailKey trail;              // where the triggering evidence lives
  SimTime sim_time = 0;              // == alert.time; kept explicit for audits
  int64_t wall_unix_usec = 0;        // wall clock at record time
};

class AlertLedger {
 public:
  explicit AlertLedger(size_t capacity = 65536) : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(const core::Alert& alert, const core::Event& cause);

  const std::vector<AlertRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

  /// JSON array of records (audit export; bench JSON idiom).
  std::string to_json() const;

  void clear() {
    records_.clear();
    total_recorded_ = 0;
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<AlertRecord> records_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace scidive::obs
