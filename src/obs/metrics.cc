#include "obs/metrics.h"

#include <algorithm>
#include <tuple>

namespace scidive::obs {

namespace {

/// Canonical ordering: family name first, then label set — the order the
/// serializers emit and the golden tests depend on.
bool sample_less(const Sample& a, const Sample& b) {
  return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
}

bool same_series(const Sample& a, const Sample& b) {
  return a.name == b.name && a.labels == b.labels;
}

void append_label_set(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (char c : value) {  // Prometheus escaping for label values
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
}

/// Label set with one extra pair appended (histogram `le` series).
void append_label_set_with(std::string& out, const Labels& labels, const std::string& extra_key,
                           const std::string& extra_value) {
  Labels extended = labels;
  extended.emplace_back(extra_key, extra_value);
  append_label_set(out, extended);
}

std::string_view kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "untyped";
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<uint64_t> latency_ns_bounds() {
  // Sub-microsecond buckets resolve the media fast path, the long tail
  // catches signaling (full SIP parse) and reassembly outliers.
  return {100,    250,    500,     1'000,   2'500,     5'000,      10'000,
          25'000, 50'000, 100'000, 250'000, 1'000'000, 10'000'000};
}

void Snapshot::add(Sample sample) {
  samples_.push_back(std::move(sample));
  sort();
}

void Snapshot::sort() { std::stable_sort(samples_.begin(), samples_.end(), sample_less); }

void Snapshot::merge(const Snapshot& other) {
  for (const Sample& theirs : other.samples_) {
    auto it = std::find_if(samples_.begin(), samples_.end(),
                           [&](const Sample& s) { return same_series(s, theirs); });
    if (it == samples_.end()) {
      samples_.push_back(theirs);
      continue;
    }
    Sample& ours = *it;
    ours.counter += theirs.counter;
    ours.gauge += theirs.gauge;
    ours.sum += theirs.sum;
    ours.count += theirs.count;
    if (ours.buckets.size() == theirs.buckets.size()) {
      for (size_t i = 0; i < ours.buckets.size(); ++i) ours.buckets[i] += theirs.buckets[i];
    }
  }
  sort();
}

Snapshot Snapshot::diff(const Snapshot& base) const {
  Snapshot out;
  out.samples_ = samples_;
  for (Sample& sample : out.samples_) {
    const Sample* before = base.find(sample.name, sample.labels);
    if (!before) continue;
    sample.counter -= std::min(sample.counter, before->counter);
    sample.sum -= std::min(sample.sum, before->sum);
    sample.count -= std::min(sample.count, before->count);
    if (sample.buckets.size() == before->buckets.size()) {
      for (size_t i = 0; i < sample.buckets.size(); ++i)
        sample.buckets[i] -= std::min(sample.buckets[i], before->buckets[i]);
    }
    // Gauges keep the current level: a delta of levels is not a level.
  }
  out.sort();
  return out;
}

const Sample* Snapshot::find(std::string_view name, const Labels& labels) const {
  for (const Sample& sample : samples_) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

uint64_t Snapshot::counter_value(std::string_view name, const Labels& labels) const {
  const Sample* sample = find(name, labels);
  return sample ? sample->counter : 0;
}

int64_t Snapshot::gauge_value(std::string_view name, const Labels& labels) const {
  const Sample* sample = find(name, labels);
  return sample ? sample->gauge : 0;
}

Counter& MetricsRegistry::counter(std::string name, std::string help, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (auto& cell : counters_) {
    if (cell.name == name && cell.labels == labels) return cell.instrument;
  }
  counters_.push_back({std::move(name), std::move(help), std::move(labels), Counter{}});
  return counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string name, std::string help, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (auto& cell : gauges_) {
    if (cell.name == name && cell.labels == labels) return cell.instrument;
  }
  gauges_.push_back({std::move(name), std::move(help), std::move(labels), Gauge{}});
  return gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string name, std::string help,
                                      std::vector<uint64_t> bounds, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (auto& cell : histograms_) {
    if (cell.name == name && cell.labels == labels) return cell.instrument;
  }
  histograms_.push_back(
      {std::move(name), std::move(help), std::move(labels), Histogram{std::move(bounds)}});
  return histograms_.back().instrument;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  for (const auto& cell : counters_) {
    Sample s;
    s.name = cell.name;
    s.help = cell.help;
    s.kind = InstrumentKind::kCounter;
    s.labels = cell.labels;
    s.counter = cell.instrument.value();
    out.add(std::move(s));
  }
  for (const auto& cell : gauges_) {
    Sample s;
    s.name = cell.name;
    s.help = cell.help;
    s.kind = InstrumentKind::kGauge;
    s.labels = cell.labels;
    s.gauge = cell.instrument.value();
    out.add(std::move(s));
  }
  for (const auto& cell : histograms_) {
    Sample s;
    s.name = cell.name;
    s.help = cell.help;
    s.kind = InstrumentKind::kHistogram;
    s.labels = cell.labels;
    s.bounds = cell.instrument.bounds();
    s.buckets = cell.instrument.bucket_counts();
    s.sum = cell.instrument.sum();
    s.count = cell.instrument.count();
    out.add(std::move(s));
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::string_view last_family;
  for (const Sample& sample : snapshot.samples()) {
    if (sample.name != last_family) {
      last_family = sample.name;
      out += "# HELP " + sample.name + " " + sample.help + "\n";
      out += "# TYPE " + sample.name + " " + std::string(kind_name(sample.kind)) + "\n";
    }
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        out += sample.name;
        append_label_set(out, sample.labels);
        out += ' ';
        out += std::to_string(sample.counter);
        out += '\n';
        break;
      case InstrumentKind::kGauge:
        out += sample.name;
        append_label_set(out, sample.labels);
        out += ' ';
        out += std::to_string(sample.gauge);
        out += '\n';
        break;
      case InstrumentKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          cumulative += sample.buckets[i];
          out += sample.name + "_bucket";
          append_label_set_with(out, sample.labels, "le",
                                i < sample.bounds.size() ? std::to_string(sample.bounds[i])
                                                         : "+Inf");
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += sample.name + "_sum";
        append_label_set(out, sample.labels);
        out += ' ' + std::to_string(sample.sum) + '\n';
        out += sample.name + "_count";
        append_label_set(out, sample.labels);
        out += ' ' + std::to_string(sample.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [\n";
  bool first = true;
  for (const Sample& sample : snapshot.samples()) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_json_escaped(out, sample.name);
    out += "\", \"type\": \"" + std::string(kind_name(sample.kind)) + "\"";
    if (!sample.labels.empty()) {
      out += ", \"labels\": {";
      bool first_label = true;
      for (const auto& [key, value] : sample.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += '"';
        append_json_escaped(out, key);
        out += "\": \"";
        append_json_escaped(out, value);
        out += '"';
      }
      out += '}';
    }
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        out += ", \"value\": " + std::to_string(sample.counter);
        break;
      case InstrumentKind::kGauge:
        out += ", \"value\": " + std::to_string(sample.gauge);
        break;
      case InstrumentKind::kHistogram: {
        out += ", \"buckets\": [";
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          if (i) out += ", ";
          out += "{\"le\": ";
          out += i < sample.bounds.size() ? std::to_string(sample.bounds[i]) : "\"+Inf\"";
          out += ", \"count\": " + std::to_string(sample.buckets[i]) + "}";
        }
        out += "], \"sum\": " + std::to_string(sample.sum);
        out += ", \"count\": " + std::to_string(sample.count);
        break;
      }
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace scidive::obs
