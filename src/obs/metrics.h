// Observability primitives for the IDS: a MetricsRegistry holding Counter,
// Gauge and fixed-bucket Histogram instruments, plus deterministic Snapshots
// and two exposition formats (Prometheus text, JSON).
//
// Designed for the engine's hot path: an instrument is interned ONCE at
// construction (name/help/label strings are allocated then, never again) and
// recording is a plain uint64_t cell update — no locks, no maps, no string
// building, no heap allocation. Thread model matches the engines': one
// registry per shard, touched only by that shard's worker; cross-shard views
// are built by snapshotting each registry after flush() and merging the
// snapshots (counters and histogram cells sum; gauges sum, so per-shard
// occupancies aggregate to fleet totals).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scidive::obs {

/// Sorted-by-key (key, value) pairs; kept tiny (0–2 labels in practice).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  /// Rebase to an externally maintained total. Used only by the snapshot
  /// path to mirror component-kept stats (DistillerStats etc.) into the
  /// registry without double bookkeeping on the hot path; the mirrored
  /// source is itself monotone, so exposition stays counter-correct.
  void sync(uint64_t total) { value_ = total; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level (ring occupancy, active sessions, ...).
class Gauge {
 public:
  void set(int64_t v) { value_ = v; }
  /// Raise-only set — high-water-mark gauges never regress within a run.
  void set_max(int64_t v) {
    if (v > value_) value_ = v;
  }
  void inc(int64_t n = 1) { value_ += n; }
  void dec(int64_t n = 1) { value_ -= n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Fixed-bucket histogram. Bucket upper bounds are set at construction
/// (sorted, inclusive, Prometheus `le` semantics); one implicit +Inf bucket
/// catches the tail. observe() is a bounded linear scan over ≤ ~16 bounds
/// plus two adds — allocation-free by construction.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void observe(uint64_t v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
    ++count_;
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

/// Default bucket bounds for per-stage pipeline latencies, in nanoseconds.
std::vector<uint64_t> latency_ns_bounds();

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's state at snapshot time. Plain data: snapshots are value
/// types that survive their registry and are safe to ship across threads.
struct Sample {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  Labels labels;
  uint64_t counter = 0;               // kCounter
  int64_t gauge = 0;                  // kGauge
  std::vector<uint64_t> bounds;       // kHistogram: upper bounds
  std::vector<uint64_t> buckets;      // kHistogram: per-bucket counts (+Inf last)
  uint64_t sum = 0;                   // kHistogram
  uint64_t count = 0;                 // kHistogram
};

/// A deterministic, canonically ordered view of a registry (or a merge of
/// several). Ordering is (name, labels) lexicographic, so two snapshots of
/// identical state serialize to identical bytes — the property the golden
/// tests pin.
class Snapshot {
 public:
  void add(Sample sample);

  const std::vector<Sample>& samples() const { return samples_; }

  /// Sum `other` into this snapshot. Instruments are matched by
  /// (name, labels); counters, histogram cells and gauges all add (a gauge
  /// here is a per-shard level, so the merged value is the fleet total).
  /// Unmatched instruments are appended.
  void merge(const Snapshot& other);

  /// This-minus-base for counters and histograms; gauges keep this
  /// snapshot's value (a level has no meaningful delta). Instruments absent
  /// from `base` pass through unchanged. The deterministic way to assert
  /// "what did this scenario add" in tests.
  Snapshot diff(const Snapshot& base) const;

  const Sample* find(std::string_view name, const Labels& labels = {}) const;
  /// Convenience: counter value or 0 when absent.
  uint64_t counter_value(std::string_view name, const Labels& labels = {}) const;
  /// Convenience: gauge value or 0 when absent.
  int64_t gauge_value(std::string_view name, const Labels& labels = {}) const;

 private:
  void sort();
  std::vector<Sample> samples_;
};

/// Owns instruments and their metadata. Registration happens at component
/// construction (strings interned once, duplicate registrations return the
/// existing cell); the returned references stay valid for the registry's
/// lifetime (deque storage, no reallocation of cells).
class MetricsRegistry {
 public:
  Counter& counter(std::string name, std::string help, Labels labels = {});
  Gauge& gauge(std::string name, std::string help, Labels labels = {});
  Histogram& histogram(std::string name, std::string help, std::vector<uint64_t> bounds,
                       Labels labels = {});

  Snapshot snapshot() const;
  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <typename T>
  struct Cell {
    std::string name;
    std::string help;
    Labels labels;
    T instrument;
  };

  std::deque<Cell<Counter>> counters_;
  std::deque<Cell<Gauge>> gauges_;
  std::deque<Cell<Histogram>> histograms_;
};

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE per
/// family, histogram as cumulative _bucket{le=...}/_sum/_count series.
std::string to_prometheus(const Snapshot& snapshot);

/// JSON snapshot (same idiom as the bench emitters: hand-built, stable key
/// order, integers only — no float formatting surprises across platforms).
std::string to_json(const Snapshot& snapshot);

}  // namespace scidive::obs
