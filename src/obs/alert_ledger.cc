// Compiled into scidive_core (see src/scidive/CMakeLists.txt): the ledger
// renders core vocabulary (event_type_name, protocol_name) that the generic
// scidive_obs metrics library deliberately knows nothing about.
#include "obs/alert_ledger.h"

#include <chrono>

#include "common/strings.h"

namespace scidive::obs {

namespace {

/// The protocol plane a given event type is evidence from — the trail an
/// auditor should open first when reviewing the alert.
core::Protocol event_protocol(core::EventType type) {
  using core::EventType;
  using core::Protocol;
  switch (type) {
    case EventType::kSipInviteSeen:
    case EventType::kSipReinviteSeen:
    case EventType::kSipSessionEstablished:
    case EventType::kSipByeSeen:
    case EventType::kSipMalformed:
    case EventType::kSip4xxSeen:
    case EventType::kSipRegisterSeen:
    case EventType::kSipAuthChallenge:
    case EventType::kSipAuthFailure:
    case EventType::kImMessageSeen:
    case EventType::kImMessageSent:
      return Protocol::kSip;
    case EventType::kRtcpByeSeen:
      return Protocol::kRtcp;
    case EventType::kAccStartSeen:
    case EventType::kAccUnmatched:
    case EventType::kAccBilledPartyAbsent:
      return Protocol::kAcc;
    default:
      return Protocol::kRtp;  // the media events, incl. kNonRtpOnMediaPort
  }
}

}  // namespace

void AlertLedger::record(const core::Alert& alert, const core::Event& cause) {
  ++total_recorded_;
  if (records_.size() >= capacity_) {
    ++dropped_;  // head is kept: the earliest evidence anchors an audit
    return;
  }
  AlertRecord rec;
  rec.alert = alert;
  rec.cause_type = cause.type;
  rec.cause_detail = cause.detail;
  rec.cause_value = cause.value;
  rec.cause_endpoint = cause.endpoint;
  rec.trail = core::TrailKey{cause.session, event_protocol(cause.type)};
  rec.sim_time = alert.time;
  rec.wall_unix_usec =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  records_.push_back(std::move(rec));
}

std::string AlertLedger::to_json() const {
  std::string out = "{\n  \"total_recorded\": " + std::to_string(total_recorded_) +
                    ",\n  \"dropped\": " + std::to_string(dropped_) + ",\n  \"alerts\": [\n";
  bool first = true;
  for (const AlertRecord& rec : records_) {
    if (!first) out += ",\n";
    first = false;
    out += str::format(
        "    {\"rule\": \"%s\", \"severity\": \"%s\", \"session\": \"%s\", "
        "\"sim_time_usec\": %lld, \"wall_unix_usec\": %lld, \"trail\": \"%s\", "
        "\"cause\": {\"event\": \"%s\", \"value\": %lld, \"endpoint\": \"%s\", "
        "\"detail\": \"%s\"}, \"message\": \"%s\"}",
        rec.alert.rule.c_str(), core::severity_name(rec.alert.severity).data(),
        rec.alert.session.c_str(), static_cast<long long>(rec.sim_time),
        static_cast<long long>(rec.wall_unix_usec), rec.trail.to_string().c_str(),
        std::string(core::event_type_name(rec.cause_type)).c_str(),
        static_cast<long long>(rec.cause_value), rec.cause_endpoint.to_string().c_str(),
        rec.cause_detail.c_str(), rec.alert.message.c_str());
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace scidive::obs
